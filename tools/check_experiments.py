#!/usr/bin/env python3
"""Drift gate for EXPERIMENTS.md's regeneration instructions.

EXPERIMENTS.md cites one ``benchmarks/bench_*.py`` entry point per
table; this tool audits those citations against the actual files and
maintains a generated "how to regenerate" footer per table:

* every cited benchmark file must exist;
* every section citing benchmarks must carry a footer block (between
  ``<!-- regen:begin -->`` / ``<!-- regen:end -->`` markers) with the
  correct command for each cited file — **pytest-style** benches (the
  ones ``pytest benchmarks/`` collects) get a ``python -m pytest``
  line, **script-style** benches (``bench_scale.py``) get a plain
  ``python`` line, because the blanket pytest invocation silently
  skips them.

``--write`` rewrites the footers in place; without it the tool exits 1
on any drift (CI's ``analyze`` job and tests/test_doc_gates.py run the
check mode).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]
EXPERIMENTS = REPO / "EXPERIMENTS.md"
BENCH_DIR = REPO / "benchmarks"

BEGIN = "<!-- regen:begin -->"
END = "<!-- regen:end -->"

_CITE = re.compile(r"(?:benchmarks/)?\b(bench_\w+\.py)")
_SECTION = re.compile(r"^## ", re.MULTILINE)


def bench_style(path: pathlib.Path) -> str:
    """``pytest`` if the file defines test functions, else ``script``."""
    text = path.read_text(encoding="utf-8")
    return "pytest" if re.search(r"^def test_", text, re.MULTILINE) else "script"


def regen_command(name: str) -> str:
    """The regeneration command line for one benchmark file."""
    path = BENCH_DIR / name
    if bench_style(path) == "pytest":
        return f"PYTHONPATH=src python -m pytest benchmarks/{name} -s"
    return f"PYTHONPATH=src python benchmarks/{name}"


def footer_block(cited: list[str]) -> str:
    """The expected generated footer for a section's cited files."""
    lines = [BEGIN]
    for name in cited:
        style = bench_style(BENCH_DIR / name)
        suffix = (
            ""
            if style == "pytest"
            else " *(script-style: not collected by `pytest benchmarks/`)*"
        )
        lines.append(f"> Regenerate: `{regen_command(name)}`{suffix}")
    lines.append(END)
    return "\n".join(lines)


def split_sections(text: str) -> list[tuple[int, int]]:
    """(start, end) offsets of every ``## `` section in the document."""
    starts = [match.start() for match in _SECTION.finditer(text)]
    return [
        (start, starts[i + 1] if i + 1 < len(starts) else len(text))
        for i, start in enumerate(starts)
    ]


def cited_in(section: str) -> list[str]:
    """Benchmark files cited in a section, in first-mention order."""
    seen: list[str] = []
    for match in _CITE.finditer(section):
        if match.group(1) not in seen:
            seen.append(match.group(1))
    return seen


def _strip_footer(section: str) -> str:
    """The section with any existing footer block removed."""
    start = section.find(BEGIN)
    if start == -1:
        return section
    end = section.find(END, start)
    if end == -1:
        return section[:start].rstrip() + "\n"
    return (section[:start] + section[end + len(END) :].lstrip("\n")).rstrip() + "\n"


def process(write: bool) -> int:
    """Audit (and with ``write``, update) the regeneration footers."""
    text = EXPERIMENTS.read_text(encoding="utf-8")
    findings: list[str] = []

    for name in cited_in(text):
        if not (BENCH_DIR / name).exists():
            findings.append(f"EXPERIMENTS.md cites missing file benchmarks/{name}")
    if findings:
        for finding in findings:
            print(f"EXPERIMENTS: {finding}")
        return 1

    rebuilt: list[str] = []
    sections = split_sections(text)
    rebuilt.append(text[: sections[0][0]] if sections else text)
    for start, end in sections:
        section = text[start:end]
        cited = cited_in(section)
        if not cited:
            rebuilt.append(section)
            continue
        body = _strip_footer(section)
        expected = footer_block(cited)
        updated = body.rstrip() + "\n\n" + expected + "\n\n"
        if updated != section:
            title = section.splitlines()[0][3:]
            findings.append(f"section {title!r}: regeneration footer out of date")
        rebuilt.append(updated)

    new_text = "".join(rebuilt)
    if not new_text.endswith("\n"):
        new_text += "\n"

    if write:
        EXPERIMENTS.write_text(new_text, encoding="utf-8")
        print(f"EXPERIMENTS.md footers rewritten ({len(findings)} updated)")
        return 0
    for finding in findings:
        print(f"EXPERIMENTS: {finding} (run tools/check_experiments.py --write)")
    if not findings:
        cited = cited_in(text)
        print(f"experiments doc clean: {len(cited)} cited benchmarks, footers current")
    return 1 if findings else 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry: check by default, ``--write`` to update in place."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write", action="store_true", help="rewrite footers in place"
    )
    args = parser.parse_args(argv)
    return process(write=args.write)


if __name__ == "__main__":
    sys.exit(main())
