"""Relative-link checker for the repo's markdown docs.

Scans ``README.md`` and ``docs/*.md`` for markdown links, resolves every
relative target against the linking file's directory, and reports targets
that do not exist on disk.  External links (http/https/mailto) and
pure-anchor links are skipped; a ``#fragment`` on a relative link is
stripped before the existence check.

Used two ways: the ``chaos-smoke`` CI job runs it as a script (exit 1 on
broken links), and ``tests/test_docs_links.py`` imports it so the tier-1
suite catches doc rot locally.
"""

from __future__ import annotations

import pathlib
import re
import sys

#: Inline markdown links: [text](target).  Good enough for this repo's
#: docs — no reference-style links, no angle-bracket autolinks to files.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def doc_files(root: pathlib.Path) -> list[pathlib.Path]:
    """README.md plus every markdown file under docs/, sorted."""
    files = []
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    files.extend(sorted((root / "docs").glob("*.md")))
    return files


def links_in(text: str) -> list[str]:
    return LINK_RE.findall(text)


def broken_links(root: pathlib.Path) -> list[str]:
    """``"<file>: <target>"`` for every relative link that resolves nowhere."""
    findings: list[str] = []
    for doc in doc_files(root):
        for target in links_in(doc.read_text()):
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                findings.append(f"{doc.relative_to(root)}: {target}")
    return findings


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = pathlib.Path(argv[0]) if argv else pathlib.Path.cwd()
    findings = broken_links(root)
    for finding in findings:
        print(f"BROKEN LINK: {finding}")
    if not findings:
        print(f"doc links OK ({len(doc_files(root))} files checked)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
