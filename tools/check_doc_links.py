"""Relative-link and doc-reachability checker for the repo's markdown docs.

Three gates in one pass:

1. **Broken links** — scans ``README.md`` and ``docs/*.md`` for markdown
   links, resolves every relative target against the linking file's
   directory, and reports targets that do not exist on disk.  External
   links (http/https/mailto) and pure-anchor links are skipped; a
   ``#fragment`` on a relative link is stripped before the existence
   check.
2. **Reachability** — every ``docs/*.md`` must be reachable from
   ``README.md`` by following relative links (the README's "Document
   map" promises this), so no page can silently fall out of the
   navigation graph.
3. **Analytics instruments** — every literal ``analytics.*`` instrument
   registered under ``src/`` must appear in ``docs/OBSERVABILITY.md``.
   The general instrument gate is ``tools/check_metric_docs.py``; this
   narrow regex check keeps the analytics family honest even when that
   heavier gate is skipped.

Used two ways: the ``analyze`` CI job runs it as a script (exit 1 on
findings), and ``tests/test_docs_links.py`` imports it so the tier-1
suite catches doc rot locally.
"""

from __future__ import annotations

import pathlib
import re
import sys

#: Inline markdown links: [text](target).  Good enough for this repo's
#: docs — no reference-style links, no angle-bracket autolinks to files.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")

#: Literal registry-factory calls registering an analytics.* instrument.
ANALYTICS_INSTRUMENT_RE = re.compile(
    r"\b(?:counter|gauge|histogram|timer)\(\s*\"(analytics\.[a-z0-9_.]+)\""
)


def doc_files(root: pathlib.Path) -> list[pathlib.Path]:
    """README.md plus every markdown file under docs/, sorted."""
    files = []
    readme = root / "README.md"
    if readme.exists():
        files.append(readme)
    files.extend(sorted((root / "docs").glob("*.md")))
    return files


def links_in(text: str) -> list[str]:
    return LINK_RE.findall(text)


def _relative_md_targets(doc: pathlib.Path) -> list[pathlib.Path]:
    """Existing .md files ``doc`` links to, resolved."""
    targets = []
    for target in links_in(doc.read_text()):
        if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part or not path_part.endswith(".md"):
            continue
        resolved = (doc.parent / path_part).resolve()
        if resolved.exists():
            targets.append(resolved)
    return targets


def broken_links(root: pathlib.Path) -> list[str]:
    """``"<file>: <target>"`` for every relative link that resolves nowhere."""
    findings: list[str] = []
    for doc in doc_files(root):
        for target in links_in(doc.read_text()):
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                findings.append(f"{doc.relative_to(root)}: {target}")
    return findings


def unreachable_docs(root: pathlib.Path) -> list[str]:
    """docs/*.md files no chain of links from README.md arrives at."""
    readme = root / "README.md"
    if not readme.exists():
        return []
    reachable = {readme.resolve()}
    frontier = [readme]
    while frontier:
        doc = frontier.pop()
        for target in _relative_md_targets(doc):
            if target not in reachable:
                reachable.add(target)
                frontier.append(target)
    return [
        str(doc.relative_to(root))
        for doc in sorted((root / "docs").glob("*.md"))
        if doc.resolve() not in reachable
    ]


def undocumented_analytics_instruments(root: pathlib.Path) -> list[str]:
    """Literal ``analytics.*`` instruments missing from OBSERVABILITY.md."""
    doc = root / "docs" / "OBSERVABILITY.md"
    if not doc.exists():
        return []
    doc_text = doc.read_text()
    names: set[str] = set()
    for source in sorted((root / "src").rglob("*.py")):
        names.update(ANALYTICS_INSTRUMENT_RE.findall(source.read_text()))
    return [f"`{name}`" for name in sorted(names) if f"`{name}`" not in doc_text]


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = pathlib.Path(argv[0]) if argv else pathlib.Path.cwd()
    failed = False
    for finding in broken_links(root):
        print(f"BROKEN LINK: {finding}")
        failed = True
    for finding in unreachable_docs(root):
        print(f"UNREACHABLE FROM README: {finding}")
        failed = True
    for finding in undocumented_analytics_instruments(root):
        print(
            f"UNDOCUMENTED ANALYTICS INSTRUMENT: {finding} is registered "
            "in src/ but missing from docs/OBSERVABILITY.md"
        )
        failed = True
    if not failed:
        print(
            f"doc links OK ({len(doc_files(root))} files checked, "
            "all docs reachable from README, analytics instruments documented)"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
