#!/usr/bin/env python3
"""Instrument-name drift gate: src/repro vs docs/OBSERVABILITY.md.

Every instrument the code registers must be documented, and every
instrument the documentation lists must still exist in the code — in
both directions, so docs/OBSERVABILITY.md stays the trustworthy index
perf work (docs/PERFORMANCE.md) relies on.

Code side: AST scan of ``src/repro`` for calls to the registry factories
(``counter`` / ``gauge`` / ``histogram`` / ``timer``) on a registry-like
receiver — the same heuristic the OBS01 domain-lint rule uses.  String
literals yield exact names; f-strings yield their literal
``<family>.<...>.`` prefix (e.g. ``crypto.ms.``).

Docs side: backticked tokens in docs/OBSERVABILITY.md whose first
segment is a known instrument family.  Placeholder segments in angle
brackets (``crypto.ms.<op>``) match any code name or f-string prefix
under the literal part before the placeholder.

Exit status 0 when both directions are clean; 1 with a finding list
otherwise (CI's ``analyze`` job runs this).
"""

from __future__ import annotations

import ast
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"
DOC = REPO / "docs" / "OBSERVABILITY.md"

INSTRUMENT_FACTORIES = {"counter", "gauge", "histogram", "timer"}

#: First name segments that denote instruments (mirrors OBS01's family
#: list; docs tokens outside these families are not instrument names).
KNOWN_FAMILIES = {
    "analysis",
    "auth",
    "broker",
    "codec",
    "crypto",
    "faults",
    "frame",
    "tdn",
    "trace",
    "tracker",
    "transport",
}

#: Backticked dotted tokens in the doc that share a family prefix but are
#: journal/monitor event names (``Monitor.increment``), not registry
#: instruments.
NON_INSTRUMENT_DOC_TOKENS = {
    "trace.suppressed_no_subscriber",
    "trace.sessions_created",
    "trace.sessions_superseded",
}

_DOC_TOKEN_RE = re.compile(r"`([a-z][a-z0-9_]*(?:\.[a-z0-9_<>\-]+)+)`")


def _receiver_is_registry(receiver: ast.expr) -> bool:
    tail = (
        receiver.id
        if isinstance(receiver, ast.Name)
        else receiver.attr if isinstance(receiver, ast.Attribute) else ""
    ).lower()
    return "metric" in tail or "registr" in tail


def _module_string_constants(tree: ast.Module) -> dict[str, str]:
    """Module-level ``NAME = "literal"`` assignments (instrument aliases)."""
    constants: dict[str, str] = {}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            constants[node.targets[0].id] = node.value.value
    return constants


def collect_code_names() -> tuple[set[str], set[str]]:
    """(exact instrument names, f-string literal prefixes) in src/repro."""
    names: set[str] = set()
    prefixes: set[str] = set()
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        constants = _module_string_constants(tree)
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in INSTRUMENT_FACTORIES
                and node.args
                and _receiver_is_registry(node.func.value)
            ):
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                names.add(arg.value)
            elif isinstance(arg, ast.Name) and arg.id in constants:
                names.add(constants[arg.id])
            elif isinstance(arg, ast.JoinedStr) and arg.values:
                first = arg.values[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    prefixes.add(first.value)
    return names, prefixes


def collect_doc_names() -> tuple[set[str], set[str]]:
    """(exact documented names, placeholder prefixes) in OBSERVABILITY.md."""
    exact: set[str] = set()
    placeholder_prefixes: set[str] = set()
    for token in _DOC_TOKEN_RE.findall(DOC.read_text(encoding="utf-8")):
        if token.split(".", 1)[0] not in KNOWN_FAMILIES:
            continue
        if token in NON_INSTRUMENT_DOC_TOKENS:
            continue
        if "<" in token:
            placeholder_prefixes.add(token.split("<", 1)[0])
        else:
            exact.add(token)
    return exact, placeholder_prefixes


def main() -> int:
    code_names, code_prefixes = collect_code_names()
    doc_names, doc_prefixes = collect_doc_names()
    findings: list[str] = []

    def documented(name: str) -> bool:
        if name in doc_names:
            return True
        return any(name.startswith(prefix) for prefix in doc_prefixes)

    for name in sorted(code_names):
        if not documented(name):
            findings.append(
                f"undocumented instrument: {name!r} is registered in code "
                "but missing from docs/OBSERVABILITY.md"
            )
    for prefix in sorted(code_prefixes):
        if not (
            prefix in doc_prefixes
            or any(name.startswith(prefix) for name in doc_names)
        ):
            findings.append(
                f"undocumented instrument prefix: f-string names under "
                f"{prefix!r} have no entry in docs/OBSERVABILITY.md"
            )

    def exists_in_code(name: str) -> bool:
        if name in code_names:
            return True
        return any(name.startswith(prefix) for prefix in code_prefixes)

    for name in sorted(doc_names):
        if not exists_in_code(name):
            findings.append(
                f"stale documentation: {name!r} appears in "
                "docs/OBSERVABILITY.md but no code registers it"
            )
    for prefix in sorted(doc_prefixes):
        if not (
            prefix in code_prefixes
            or any(name.startswith(prefix) for name in code_names)
        ):
            findings.append(
                f"stale documentation: placeholder family {prefix!r}* has "
                "no matching instrument in code"
            )

    for finding in findings:
        print(f"METRIC-DOCS: {finding}")
    if not findings:
        print(
            f"metric docs clean: {len(code_names)} literal instruments, "
            f"{len(code_prefixes)} dynamic prefixes, "
            f"{len(doc_names)} documented names"
        )
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
