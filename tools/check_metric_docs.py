#!/usr/bin/env python3
"""Instrument-name drift gate: src/repro vs docs/OBSERVABILITY.md.

Thin wrapper over the shared extraction in
``repro.analysis.rules.observability`` — the same functions the OBS02
analysis rule runs — so this gate and ``repro analyze`` can never
disagree about what counts as an instrument.

Checks both directions: every instrument the code registers must be
documented (OBS02's direction, with source locations when run via
``repro analyze``), and every documented instrument must still exist in
the code (the staleness direction only this tool covers, since stale doc
lines have no code anchor).

Exit status 0 when both directions are clean; 1 with a finding list
otherwise (CI's ``analyze`` job runs this).
"""

from __future__ import annotations

import ast
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"
DOC = REPO / "docs" / "OBSERVABILITY.md"

sys.path.insert(0, str(REPO / "src"))

from repro.analysis.rules.observability import (  # noqa: E402
    collect_code_names_from_trees,
    doc_instrument_names,
    instrument_drift,
)


def collect_code_names() -> tuple[set[str], set[str]]:
    """(exact instrument names, f-string literal prefixes) in src/repro."""
    trees = (
        ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for path in sorted(SRC.rglob("*.py"))
    )
    return collect_code_names_from_trees(trees)


def collect_doc_names() -> tuple[set[str], set[str]]:
    """(exact documented names, placeholder prefixes) in OBSERVABILITY.md."""
    return doc_instrument_names(DOC.read_text(encoding="utf-8"))


def main() -> int:
    code_names, code_prefixes = collect_code_names()
    doc_names, doc_prefixes = collect_doc_names()
    findings = instrument_drift(code_names, code_prefixes, doc_names, doc_prefixes)
    for finding in findings:
        print(f"METRIC-DOCS: {finding}")
    if not findings:
        print(
            f"metric docs clean: {len(code_names)} literal instruments, "
            f"{len(code_prefixes)} dynamic prefixes, "
            f"{len(doc_names)} documented names"
        )
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
