#!/usr/bin/env python3
"""Docstring-coverage gate for the packages perf work leans on.

Every *public* module, class, function and method in the covered
packages must carry a docstring: these are the modules docs/API.md and
docs/PERFORMANCE.md send readers into, so an undocumented public surface
there is a doc bug, not a style nit.

Public means: name without a leading underscore, reachable from a module
whose own path has no underscore-private segment.  Dunder methods other
than ``__init__`` are exempt (their contracts are the language's);
``__init__`` is exempt too when its class is documented — the class
docstring is where constructor semantics live in this codebase.

Exit status 0 when covered packages are fully documented; 1 with a
finding list otherwise (CI's ``analyze`` job runs this).
"""

from __future__ import annotations

import ast
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"

#: Packages under src/repro the gate covers.
COVERED = ("analytics", "auth", "bench", "campaigns", "faults", "messaging", "obs")


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _check_functions(
    parent: ast.AST, path: pathlib.Path, findings: list[str], prefix: str = ""
) -> None:
    for node in ast.iter_child_nodes(parent):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not _is_public(node.name):
                continue
            if ast.get_docstring(node) is None:
                findings.append(
                    f"{path.relative_to(REPO)}:{node.lineno}: public "
                    f"function {prefix}{node.name}() has no docstring"
                )
        elif isinstance(node, ast.ClassDef):
            if not _is_public(node.name):
                continue
            if ast.get_docstring(node) is None:
                findings.append(
                    f"{path.relative_to(REPO)}:{node.lineno}: public "
                    f"class {node.name} has no docstring"
                )
            _check_functions(node, path, findings, prefix=f"{node.name}.")


def main() -> int:
    findings: list[str] = []
    total = 0
    for package in COVERED:
        for path in sorted((SRC / package).rglob("*.py")):
            total += 1
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            if ast.get_docstring(tree) is None:
                findings.append(
                    f"{path.relative_to(REPO)}:1: module has no docstring"
                )
            _check_functions(tree, path, findings)
    for finding in findings:
        print(f"DOCSTRINGS: {finding}")
    if not findings:
        packages = ", ".join(f"repro.{p}" for p in COVERED)
        print(f"docstrings clean: {total} modules across {packages}")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
