"""Discovery queries and discovery restrictions.

The trace-topic descriptor is ``Availability/Traces/<Entity-ID>`` so that
trackers can construct discovery queries from the Entity-ID alone (section
3.1); the tracker-side query has the form ``/Liveness/<Entity-ID>``
(section 3.4).  Discovery restrictions specify who is authorized to
discover a topic; unauthorized requests are silently ignored by the TDN.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.certificates import Certificate, CertificateAuthority
from repro.errors import CertificateError, DiscoveryError
from repro.util.identifiers import EntityId


def trace_descriptor(entity_id: EntityId | str) -> str:
    """The canonical trace-topic descriptor for an entity."""
    eid = entity_id.name if isinstance(entity_id, EntityId) else entity_id
    return f"Availability/Traces/{eid}"


@dataclass(frozen=True, slots=True)
class DiscoveryQuery:
    """A parsed discovery query.

    Accepted spellings (the paper's discovery scheme "provides support
    for a variety of query formats", section 2.2):

    * ``/Liveness/<Entity-ID>``   (the tracker query of section 3.4)
    * ``Availability/Traces/<Entity-ID>``  (the raw descriptor)

    The entity-id segment may contain shell-style wildcards (``*``, ``?``,
    ``[...]``), turning the query into a pattern that matches many
    descriptors — e.g. ``/Liveness/compute-*``.
    """

    descriptor: str

    @classmethod
    def parse(cls, text: str) -> "DiscoveryQuery":
        stripped = text[1:] if text.startswith("/") else text
        parts = stripped.split("/")
        if len(parts) == 2 and parts[0] == "Liveness" and parts[1]:
            return cls(descriptor=trace_descriptor(parts[1]))
        if len(parts) == 3 and parts[:2] == ["Availability", "Traces"] and parts[2]:
            return cls(descriptor=stripped)
        raise DiscoveryError(f"unsupported discovery query {text!r}")

    @classmethod
    def for_entity(cls, entity_id: EntityId | str) -> "DiscoveryQuery":
        return cls(descriptor=trace_descriptor(entity_id))

    @classmethod
    def for_pattern(cls, entity_pattern: str) -> "DiscoveryQuery":
        """A wildcard query over entity ids, e.g. ``compute-*``."""
        if "/" in entity_pattern:
            raise DiscoveryError(f"pattern may not contain '/': {entity_pattern!r}")
        return cls(descriptor=f"Availability/Traces/{entity_pattern}")

    @property
    def entity_id(self) -> str:
        return self.descriptor.rsplit("/", 1)[-1]

    @property
    def is_pattern(self) -> bool:
        """True if the entity-id segment contains wildcards."""
        return any(c in self.entity_id for c in "*?[")

    def matches(self, descriptor: str) -> bool:
        """Does a concrete descriptor satisfy this (possibly wildcard) query?"""
        import fnmatch

        return fnmatch.fnmatchcase(descriptor, self.descriptor)


@dataclass(frozen=True, slots=True)
class DiscoveryRestrictions:
    """Who may discover a topic.

    ``allowed_subjects`` of ``None`` admits any requester presenting a
    certificate that verifies against the trust anchor; an explicit
    frozenset admits only those certificate subjects.  ``denied_subjects``
    always lose, even if listed as allowed (deny wins ties).
    """

    allowed_subjects: frozenset[str] | None = None
    denied_subjects: frozenset[str] = field(default_factory=frozenset)

    @classmethod
    def open_to_authenticated(cls) -> "DiscoveryRestrictions":
        """Any requester with valid credentials may discover."""
        return cls(allowed_subjects=None)

    @classmethod
    def allow_only(cls, *subjects: str) -> "DiscoveryRestrictions":
        return cls(allowed_subjects=frozenset(subjects))

    def permits(
        self,
        credentials: Certificate | None,
        trust_anchor: CertificateAuthority,
        now_ms: float,
    ) -> bool:
        """True iff the presented credentials satisfy the restrictions.

        Never raises: the TDN's contract is to *silently ignore*
        unauthorized discovery requests (section 3.1).
        """
        if credentials is None:
            return False
        try:
            trust_anchor.verify(credentials, now_ms=now_ms)
        except CertificateError:
            return False
        if credentials.subject in self.denied_subjects:
            return False
        if self.allowed_subjects is None:
            return True
        return credentials.subject in self.allowed_subjects

    def to_dict(self) -> dict:
        return {
            "allowed_subjects": (
                None if self.allowed_subjects is None else sorted(self.allowed_subjects)
            ),
            "denied_subjects": sorted(self.denied_subjects),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DiscoveryRestrictions":
        allowed = data.get("allowed_subjects")
        return cls(
            allowed_subjects=None if allowed is None else frozenset(allowed),
            denied_subjects=frozenset(data.get("denied_subjects", ())),
        )
