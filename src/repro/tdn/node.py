"""TDN nodes and the replicated TDN cluster.

"Since a given topic advertisement will be stored at multiple TDN nodes,
this scheme sustains the loss of TDN nodes due to failures or downtimes"
(section 2.2).  The cluster shares one UUID generator stream so topic
uniqueness holds across nodes, replicates every advertisement to all live
peers, and routes discovery around failed nodes.
"""

from __future__ import annotations

from typing import Generator

from repro.crypto.certificates import CertificateAuthority
from repro.crypto.costmodel import CryptoOp
from repro.crypto.keys import KeyPair
from repro.crypto.signing import SignedEnvelope, sign_payload, verify_payload
from repro.errors import (
    CertificateError,
    DiscoveryError,
    RegistrationError,
    SignatureError,
)
from repro.sim.engine import Event, Simulator
from repro.sim.machine import Machine
from repro.sim.monitor import Monitor
from repro.tdn.advertisement import (
    TopicAdvertisement,
    TopicCreationRequest,
    TopicLifetime,
)
from repro.tdn.cache import MISS, DiscoveryCache
from repro.tdn.query import DiscoveryQuery
from repro.tdn.registry import AdvertisementStore
from repro.util.identifiers import UUIDGenerator


def _cache_horizon_ms(
    advertisements: list[TopicAdvertisement], credentials
) -> float:
    """Earliest instant a cached positive answer could stop being true.

    The answer holds while every returned advertisement is still alive and
    the requester's certificate has not expired; any store mutation is
    handled separately via the store version.
    """
    horizon = min(ad.lifetime.expires_ms for ad in advertisements)
    if credentials is not None:
        horizon = min(horizon, credentials.not_after_ms)
    return horizon


class TDNNode:
    """One Topic Discovery Node."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        machine: Machine,
        trust_anchor: CertificateAuthority,
        uuid_generator: UUIDGenerator,
        monitor: Monitor | None = None,
        service_delay_ms: float = 3.0,
        query_cache: bool = True,
    ) -> None:
        self.sim = sim
        self.name = name
        self.machine = machine
        self.trust_anchor = trust_anchor
        self.monitor = monitor or Monitor()
        self.service_delay_ms = service_delay_ms
        self._uuids = uuid_generator
        self._keys = KeyPair.generate(machine.rng)
        self.certificate = trust_anchor.issue(name, self._keys.public)
        self.store = AdvertisementStore()
        #: Positive-answer discovery cache (docs/PERFORMANCE.md); ``None``
        #: when disabled reproduces the always-scan query path exactly.
        self.query_cache = DiscoveryCache() if query_cache else None
        self.failed = False
        self._peers: list["TDNNode"] = []
        self.replication_delay_ms = 2.0

    def set_peers(self, peers: list["TDNNode"]) -> None:
        self._peers = [p for p in peers if p is not self]

    # ------------------------------------------------------------ failure model

    def fail(self) -> None:
        """Take this node down; it drops all requests until recovery."""
        self.failed = True

    def recover(self) -> None:
        """Bring the node back; its query cache restarts cold."""
        self.failed = False
        if self.query_cache is not None:
            self.query_cache.clear()

    # ------------------------------------------------------------ topic creation

    def create_topic(
        self, request: TopicCreationRequest, signature: SignedEnvelope
    ) -> Generator[Event, None, TopicAdvertisement]:
        """Mint a trace topic for a verified creation request.

        Process body.  Verifies the requester's credentials against the
        trust anchor and the request signature against the credential's
        public key; on success generates the UUID *at the TDN* (so no
        entity can claim another's topic), signs the advertisement, stores
        it, and replicates to live peers.
        """
        if self.failed:
            raise DiscoveryError(f"TDN {self.name!r} is down")
        yield self.sim.timeout(self.service_delay_ms)
        now = self.machine.now()

        try:
            self.trust_anchor.verify(request.credentials, now_ms=now)
        except CertificateError as exc:
            raise RegistrationError(f"bad credentials: {exc}") from exc
        yield from self.machine.charge(CryptoOp.CERT_VERIFY)

        if signature.payload != request.signing_payload():
            raise RegistrationError("signature covers a different request")
        try:
            verify_payload(signature, request.credentials.public_key)
        except SignatureError as exc:
            raise RegistrationError(f"request signature invalid: {exc}") from exc
        yield from self.machine.charge(CryptoOp.TRACE_VERIFY)

        trace_topic = self._uuids.next()
        lifetime = TopicLifetime(created_ms=now, duration_ms=request.lifetime_ms)
        fields = {
            "trace_topic": trace_topic.hex,
            "descriptor": request.descriptor,
            "owner_subject": request.credentials.subject,
            "owner_n": request.credentials.public_key.n,
            "owner_e": request.credentials.public_key.e,
            "restrictions": request.restrictions.to_dict(),
            "lifetime": lifetime.to_dict(),
            "issuing_tdn": self.name,
        }
        envelope = sign_payload(fields, self._keys.private)
        yield from self.machine.charge(CryptoOp.TRACE_SIGN)
        advertisement = TopicAdvertisement(
            trace_topic=trace_topic,
            descriptor=request.descriptor,
            owner_subject=request.credentials.subject,
            owner_public_key=request.credentials.public_key,
            restrictions=request.restrictions,
            lifetime=lifetime,
            issuing_tdn=self.name,
            signature=envelope,
        )
        self.store.put(advertisement)
        self._replicate(advertisement)
        self.monitor.increment("tdn.topics_created")
        self.monitor.metrics.counter("tdn.advertisements.created").inc()
        self.monitor.metrics.gauge("tdn.advertisements.stored").set(
            float(len(self.store))
        )
        return advertisement

    def renew_topic(
        self,
        advertisement: TopicAdvertisement,
        signature: SignedEnvelope,
        additional_lifetime_ms: float,
    ) -> Generator[Event, None, TopicAdvertisement]:
        """Extend a topic's lifetime before it expires.

        Only the topic owner can renew: the request signature must verify
        against the advertisement's owner key, and the advertisement must
        still be live.  Returns the re-signed advertisement, which also
        replaces the stored copy cluster-wide.
        """
        if self.failed:
            raise DiscoveryError(f"TDN {self.name!r} is down")
        if additional_lifetime_ms <= 0:
            raise RegistrationError("renewal must extend the lifetime")
        yield self.sim.timeout(self.service_delay_ms)
        now = self.machine.now()

        stored = self.store.get(advertisement.trace_topic, now)
        if stored is None:
            raise RegistrationError("topic unknown or already expired")

        expected_payload = {
            "renew": stored.trace_topic.hex,
            "additional_lifetime_ms": additional_lifetime_ms,
        }
        if signature.payload != expected_payload:
            raise RegistrationError("renewal signature covers different fields")
        yield from self.machine.charge(CryptoOp.TRACE_VERIFY)
        try:
            verify_payload(signature, stored.owner_public_key)
        except SignatureError as exc:
            raise RegistrationError(f"renewal not signed by owner: {exc}") from exc

        lifetime = TopicLifetime(
            created_ms=stored.lifetime.created_ms,
            duration_ms=stored.lifetime.duration_ms + additional_lifetime_ms,
        )
        fields = dict(stored.signed_fields())
        fields["lifetime"] = lifetime.to_dict()
        fields["issuing_tdn"] = self.name
        envelope = sign_payload(fields, self._keys.private)
        yield from self.machine.charge(CryptoOp.TRACE_SIGN)
        renewed = TopicAdvertisement(
            trace_topic=stored.trace_topic,
            descriptor=stored.descriptor,
            owner_subject=stored.owner_subject,
            owner_public_key=stored.owner_public_key,
            restrictions=stored.restrictions,
            lifetime=lifetime,
            issuing_tdn=self.name,
            signature=envelope,
        )
        self.store.put(renewed)
        self._replicate(renewed)
        self.monitor.increment("tdn.topics_renewed")
        return renewed

    def _replicate(self, advertisement: TopicAdvertisement) -> None:
        for peer in self._peers:
            if peer.failed:
                continue
            self.sim.call_later(
                self.replication_delay_ms,
                lambda p=peer: p.store.put(advertisement),
            )
            self.monitor.increment("tdn.replications")

    # ---------------------------------------------------------------- discovery

    def discover(
        self, query: DiscoveryQuery, credentials
    ) -> Generator[Event, None, TopicAdvertisement | None]:
        """Answer a discovery query, or return None.

        Unauthorized requests get *no response* — the paper's TDN simply
        ignores them, so the requester cannot distinguish "not authorized"
        from "no such topic".

        A cached positive answer (same query, same certificate, store
        untouched, nothing expired) skips the store scan and per-candidate
        certificate verifications; the service delay is still paid.
        """
        if self.failed:
            raise DiscoveryError(f"TDN {self.name!r} is down")
        metrics = self.monitor.metrics
        metrics.counter("tdn.queries").inc()
        with metrics.timer("tdn.query.latency_ms", self.sim.clock):
            yield self.sim.timeout(self.service_delay_ms)
            now = self.machine.now()
            self.monitor.increment("tdn.discovery_requests")

            cache = self.query_cache
            key: tuple | None = None
            if cache is not None:
                key = DiscoveryCache.key("one", query.descriptor, credentials)
                cached = cache.lookup(key, self.store.version, now)
                if cached is not MISS:
                    metrics.counter("tdn.query.cache.hit").inc()
                    self.monitor.increment("tdn.discovery_answered")
                    metrics.counter("tdn.queries.answered").inc()
                    return cached
                metrics.counter("tdn.query.cache.miss").inc()

            candidates = self.store.find_matching(query, now)
            for advertisement in candidates:
                yield from self.machine.charge(CryptoOp.CERT_VERIFY)
                if advertisement.restrictions.permits(
                    credentials, self.trust_anchor, now
                ):
                    self.monitor.increment("tdn.discovery_answered")
                    metrics.counter("tdn.queries.answered").inc()
                    if cache is not None:
                        cache.store(
                            key,
                            self.store.version,
                            _cache_horizon_ms([advertisement], credentials),
                            advertisement,
                        )
                    return advertisement
            self.monitor.increment("tdn.discovery_ignored")
            metrics.counter("tdn.queries.ignored").inc()
            return None

    def discover_all(
        self, query: DiscoveryQuery, credentials
    ) -> Generator[Event, None, list[TopicAdvertisement]]:
        """Answer a (possibly wildcard) query with every permitted topic.

        Topics whose restrictions the requester does not satisfy are
        silently omitted — the requester cannot tell filtered from
        nonexistent, preserving the single-topic semantics.
        """
        if self.failed:
            raise DiscoveryError(f"TDN {self.name!r} is down")
        metrics = self.monitor.metrics
        metrics.counter("tdn.queries").inc()
        with metrics.timer("tdn.query.latency_ms", self.sim.clock):
            yield self.sim.timeout(self.service_delay_ms)
            now = self.machine.now()
            self.monitor.increment("tdn.discovery_requests")

            cache = self.query_cache
            key: tuple | None = None
            if cache is not None:
                key = DiscoveryCache.key("all", query.descriptor, credentials)
                cached = cache.lookup(key, self.store.version, now)
                if cached is not MISS:
                    metrics.counter("tdn.query.cache.hit").inc()
                    self.monitor.increment("tdn.discovery_answered")
                    metrics.counter("tdn.queries.answered").inc()
                    return list(cached)
                metrics.counter("tdn.query.cache.miss").inc()

            permitted: list[TopicAdvertisement] = []
            seen_descriptors: set[str] = set()
            for advertisement in self.store.find_matching(query, now):
                if advertisement.descriptor in seen_descriptors:
                    continue  # newest advertisement per descriptor wins
                yield from self.machine.charge(CryptoOp.CERT_VERIFY)
                if advertisement.restrictions.permits(
                    credentials, self.trust_anchor, now
                ):
                    permitted.append(advertisement)
                    seen_descriptors.add(advertisement.descriptor)
            if permitted:
                self.monitor.increment("tdn.discovery_answered")
                metrics.counter("tdn.queries.answered").inc()
                if cache is not None:
                    cache.store(
                        key,
                        self.store.version,
                        _cache_horizon_ms(permitted, credentials),
                        tuple(permitted),
                    )
            else:
                self.monitor.increment("tdn.discovery_ignored")
                metrics.counter("tdn.queries.ignored").inc()
            return permitted

    def verify_advertisement(self, advertisement: TopicAdvertisement) -> bool:
        """Validate a presented advertisement's TDN signature and fields."""
        if advertisement.signature.payload != advertisement.signed_fields():
            return False
        try:
            verify_payload(advertisement.signature, self._keys.public)
        except SignatureError:
            return False
        return True


class TDNCluster:
    """The replicated set of TDN nodes."""

    def __init__(
        self,
        sim: Simulator,
        trust_anchor: CertificateAuthority,
        machines: list[Machine],
        monitor: Monitor | None = None,
        uuid_seed: int = 0,
        query_cache: bool = True,
    ) -> None:
        if not machines:
            raise DiscoveryError("a TDN cluster needs at least one node")
        self.sim = sim
        self.monitor = monitor or Monitor()
        generator = UUIDGenerator(uuid_seed)
        self.nodes = [
            TDNNode(
                sim=sim,
                name=f"tdn-{i}",
                machine=machine,
                trust_anchor=trust_anchor,
                uuid_generator=generator,
                monitor=self.monitor,
                query_cache=query_cache,
            )
            for i, machine in enumerate(machines)
        ]
        for node in self.nodes:
            node.set_peers(self.nodes)

    def node(self, name: str) -> TDNNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise DiscoveryError(f"no TDN named {name!r}")

    def live_nodes(self) -> list[TDNNode]:
        return [n for n in self.nodes if not n.failed]

    def create_topic(
        self, request: TopicCreationRequest, signature: SignedEnvelope
    ) -> Generator[Event, None, TopicAdvertisement]:
        """Create at the first live node (clients fail over automatically)."""
        for node in self.nodes:
            if not node.failed:
                result = yield from node.create_topic(request, signature)
                return result
        raise DiscoveryError("all TDN nodes are down")

    def discover(
        self, query: DiscoveryQuery, credentials
    ) -> Generator[Event, None, TopicAdvertisement | None]:
        """Discover via the first live node."""
        for node in self.nodes:
            if not node.failed:
                result = yield from node.discover(query, credentials)
                return result
        raise DiscoveryError("all TDN nodes are down")

    def discover_all(
        self, query: DiscoveryQuery, credentials
    ) -> Generator[Event, None, list[TopicAdvertisement]]:
        """Wildcard discovery via the first live node."""
        for node in self.nodes:
            if not node.failed:
                result = yield from node.discover_all(query, credentials)
                return result
        raise DiscoveryError("all TDN nodes are down")

    def renew_topic(
        self,
        advertisement: TopicAdvertisement,
        signature: SignedEnvelope,
        additional_lifetime_ms: float,
    ) -> Generator[Event, None, TopicAdvertisement]:
        """Renew via the first live node."""
        for node in self.nodes:
            if not node.failed:
                result = yield from node.renew_topic(
                    advertisement, signature, additional_lifetime_ms
                )
                return result
        raise DiscoveryError("all TDN nodes are down")
