"""Topic creation requests and signed topic advertisements (section 3.1).

A topic creation request carries four components: the entity's credentials,
the topic descriptor, the discovery restrictions, and the topic lifetime.
The TDN responds with a signed advertisement binding the freshly minted
UUID trace topic to those components — the provenance record every later
step of the protocol leans on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.certificates import Certificate
from repro.crypto.rsa import RSAPublicKey
from repro.crypto.signing import SignedEnvelope
from repro.errors import DiscoveryError
from repro.tdn.query import DiscoveryRestrictions
from repro.util.identifiers import EntityId, RequestId, UUID128


@dataclass(frozen=True, slots=True)
class TopicLifetime:
    """Validity window of a trace topic."""

    created_ms: float
    duration_ms: float

    @property
    def expires_ms(self) -> float:
        return self.created_ms + self.duration_ms

    def alive_at(self, now_ms: float) -> bool:
        return self.created_ms <= now_ms <= self.expires_ms

    def to_dict(self) -> dict:
        return {"created_ms": self.created_ms, "duration_ms": self.duration_ms}

    @classmethod
    def from_dict(cls, data: dict) -> "TopicLifetime":
        return cls(float(data["created_ms"]), float(data["duration_ms"]))


@dataclass(frozen=True, slots=True)
class TopicCreationRequest:
    """What an entity sends the TDN to create its trace topic."""

    credentials: Certificate
    descriptor: str
    restrictions: DiscoveryRestrictions
    lifetime_ms: float
    request_id: RequestId

    def signing_payload(self) -> dict:
        """The canonical dict the entity signs."""
        return {
            "subject": self.credentials.subject,
            "credential_fingerprint": self.credentials.fingerprint(),
            "descriptor": self.descriptor,
            "restrictions": self.restrictions.to_dict(),
            "lifetime_ms": self.lifetime_ms,
            "request_id": self.request_id.value,
        }


@dataclass(frozen=True, slots=True)
class TopicAdvertisement:
    """The TDN-signed provenance record of a trace topic."""

    trace_topic: UUID128
    descriptor: str
    owner_subject: str
    owner_public_key: RSAPublicKey
    restrictions: DiscoveryRestrictions
    lifetime: TopicLifetime
    issuing_tdn: str
    signature: SignedEnvelope  # signed by the issuing TDN's key

    @property
    def entity_id(self) -> EntityId:
        """The Entity-ID embedded in the descriptor."""
        prefix = "Availability/Traces/"
        if not self.descriptor.startswith(prefix):
            raise DiscoveryError(
                f"descriptor {self.descriptor!r} is not a trace descriptor"
            )
        return EntityId(self.descriptor[len(prefix):])

    def signed_fields(self) -> dict:
        """The canonical dict the TDN signs (and verifiers re-derive)."""
        return {
            "trace_topic": self.trace_topic.hex,
            "descriptor": self.descriptor,
            "owner_subject": self.owner_subject,
            "owner_n": self.owner_public_key.n,
            "owner_e": self.owner_public_key.e,
            "restrictions": self.restrictions.to_dict(),
            "lifetime": self.lifetime.to_dict(),
            "issuing_tdn": self.issuing_tdn,
        }

    def to_dict(self) -> dict:
        """Wire rendering (embedded in registration messages)."""
        return {
            "fields": self.signed_fields(),
            "signature": self.signature.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TopicAdvertisement":
        fields = data["fields"]
        return cls(
            trace_topic=UUID128.from_hex(fields["trace_topic"]),
            descriptor=str(fields["descriptor"]),
            owner_subject=str(fields["owner_subject"]),
            owner_public_key=RSAPublicKey(int(fields["owner_n"]), int(fields["owner_e"])),
            restrictions=DiscoveryRestrictions.from_dict(fields["restrictions"]),
            lifetime=TopicLifetime.from_dict(fields["lifetime"]),
            issuing_tdn=str(fields["issuing_tdn"]),
            signature=SignedEnvelope.from_dict(data["signature"]),
        )
