"""Topic Discovery Nodes (section 2.2 and 3.1).

TDNs mint trace topics (128-bit UUIDs generated *at the TDN* so no entity
can claim another's topic), produce cryptographically signed topic
advertisements establishing provenance, replicate advertisements across the
TDN cluster for failure tolerance, and answer discovery queries only for
requesters whose credentials satisfy the creator's discovery restrictions.
"""

from repro.tdn.advertisement import TopicAdvertisement, TopicCreationRequest, TopicLifetime
from repro.tdn.query import DiscoveryRestrictions, DiscoveryQuery
from repro.tdn.registry import AdvertisementStore
from repro.tdn.node import TDNNode, TDNCluster

__all__ = [
    "TopicAdvertisement",
    "TopicCreationRequest",
    "TopicLifetime",
    "DiscoveryRestrictions",
    "DiscoveryQuery",
    "AdvertisementStore",
    "TDNNode",
    "TDNCluster",
]
