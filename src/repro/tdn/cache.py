"""Discovery-result cache for TDN nodes.

Trackers re-discover the same descriptors with the same credentials every
time they (re)subscribe, and each answer costs the TDN a store scan plus
one ``CERT_VERIFY`` charge per candidate advertisement (section 3.1's
authorization check).  A :class:`DiscoveryCache` in front of the query path
short-circuits the repeat work while preserving the protocol's observable
behaviour:

* **Invalidation on advertisement change** — every entry records the
  :class:`~repro.tdn.registry.AdvertisementStore` version at fill time;
  any ``put``/``remove`` (including lazy expiry reaping) bumps the version
  and silently invalidates all cached answers.
* **Time-bounded validity** — an entry expires at the earliest of the
  returned advertisements' lifetime ends and the requesting certificate's
  ``not_after_ms``; simulated time is monotonic, so a permit verified at
  fill time cannot have lapsed before then.
* **Positive answers only** — empty/ignored results are never cached, so
  the "silently ignore unauthorized requests" contract keeps consulting
  the live store (an entity that just gained authorization is never
  masked by a stale negative).

The *service delay* of a query is still paid on a hit — the requester
still makes a network round trip; only the store scan and the per-candidate
certificate verifications are saved.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

DEFAULT_DISCOVERY_CACHE_CAPACITY = 256

#: Sentinel distinguishing "no cached entry" from a cached empty answer
#: (the latter is never stored, but the lookup contract stays explicit).
MISS = object()


class DiscoveryCache:
    """Bounded LRU of positive discovery answers keyed by (query, cert)."""

    def __init__(self, capacity: int = DEFAULT_DISCOVERY_CACHE_CAPACITY) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[tuple, tuple[int, float, Any]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key(kind: str, descriptor: str, credentials: Any) -> tuple:
        """Cache key for one query: the flavour, target, and requester.

        ``credentials`` is the presented :class:`Certificate` (or ``None``
        — permitted only by unrestricted topics, still keyable).  Subject
        plus serial pins the exact certificate, so a re-issued credential
        never aliases onto its predecessor's cached answer.
        """
        if credentials is None:
            return (kind, descriptor, None)
        return (kind, descriptor, credentials.subject, credentials.serial)

    def lookup(self, key: tuple, store_version: int, now_ms: float) -> Any:
        """Cached answer, or :data:`MISS`.

        A hit requires the store to be untouched since fill time and the
        entry's validity horizon to still be ahead of ``now_ms``.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return MISS
        version, valid_until_ms, result = entry
        if version != store_version or now_ms > valid_until_ms:
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            return MISS
        self._entries.move_to_end(key)
        self.hits += 1
        return result

    def store(
        self, key: tuple, store_version: int, valid_until_ms: float, result: Any
    ) -> None:
        """Remember a positive answer until the store changes or it expires."""
        self._entries[key] = (store_version, valid_until_ms, result)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (e.g. when a TDN node recovers from failure)."""
        self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Counter snapshot for reports and tests."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
        }
