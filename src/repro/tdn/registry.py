"""The advertisement store replicated at each TDN."""

from __future__ import annotations

from repro.tdn.advertisement import TopicAdvertisement
from repro.util.identifiers import UUID128


class AdvertisementStore:
    """Per-TDN storage of topic advertisements.

    Indexed both by trace topic UUID and by descriptor.  Expired
    advertisements (topic lifetime elapsed) are treated as absent and
    reaped lazily.

    Every mutation (``put``, ``remove`` — including lazy expiry reaping)
    bumps :attr:`version`; the discovery cache (:mod:`repro.tdn.cache`)
    records the version at fill time so any advertisement change silently
    invalidates cached query answers.
    """

    def __init__(self) -> None:
        self._by_topic: dict[UUID128, TopicAdvertisement] = {}
        self._by_descriptor: dict[str, list[UUID128]] = {}
        self._version = 0

    def __len__(self) -> int:
        return len(self._by_topic)

    @property
    def version(self) -> int:
        """Monotonic mutation counter (the cache-invalidation signal)."""
        return self._version

    def put(self, advertisement: TopicAdvertisement) -> None:
        topic = advertisement.trace_topic
        if topic in self._by_topic:
            # re-registration replaces (e.g. refreshed lifetime)
            self._remove_descriptor_index(self._by_topic[topic])
        self._by_topic[topic] = advertisement
        self._by_descriptor.setdefault(advertisement.descriptor, []).append(topic)
        self._version += 1

    def _remove_descriptor_index(self, advertisement: TopicAdvertisement) -> None:
        topics = self._by_descriptor.get(advertisement.descriptor)
        if topics and advertisement.trace_topic in topics:
            topics.remove(advertisement.trace_topic)
            if not topics:
                del self._by_descriptor[advertisement.descriptor]

    def remove(self, topic: UUID128) -> None:
        advertisement = self._by_topic.pop(topic, None)
        if advertisement is not None:
            self._remove_descriptor_index(advertisement)
            self._version += 1

    def get(self, topic: UUID128, now_ms: float) -> TopicAdvertisement | None:
        advertisement = self._by_topic.get(topic)
        if advertisement is None:
            return None
        if not advertisement.lifetime.alive_at(now_ms):
            self.remove(topic)
            return None
        return advertisement

    def find_by_descriptor(
        self, descriptor: str, now_ms: float
    ) -> list[TopicAdvertisement]:
        """All live advertisements whose descriptor matches exactly.

        Newest first (latest created), so a re-registered topic (after a
        compromise, section 5.2) shadows its predecessor.
        """
        results: list[TopicAdvertisement] = []
        for topic in list(self._by_descriptor.get(descriptor, ())):
            advertisement = self.get(topic, now_ms)
            if advertisement is not None:
                results.append(advertisement)
        results.sort(key=lambda ad: ad.lifetime.created_ms, reverse=True)
        return results

    def find_matching(self, query, now_ms: float) -> list[TopicAdvertisement]:
        """All live advertisements matching a (possibly wildcard) query.

        Exact queries use the descriptor index; pattern queries scan.
        Newest-first per descriptor, descriptors in sorted order.
        """
        if not query.is_pattern:
            return self.find_by_descriptor(query.descriptor, now_ms)
        results: list[TopicAdvertisement] = []
        for descriptor in sorted(self._by_descriptor):
            if query.matches(descriptor):
                results.extend(self.find_by_descriptor(descriptor, now_ms))
        return results

    def reap_expired(self, now_ms: float) -> int:
        """Drop all expired advertisements; returns how many were removed."""
        expired = [
            topic
            for topic, ad in self._by_topic.items()
            if not ad.lifetime.alive_at(now_ms)
        ]
        for topic in expired:
            self.remove(topic)
        return len(expired)

    def topics(self) -> list[UUID128]:
        return sorted(self._by_topic, key=lambda t: t.value)
