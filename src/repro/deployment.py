"""One-call wiring of a complete tracing deployment.

Assembles the full stack the paper describes: a certificate authority, a
replicated TDN cluster, a broker network with authorization guards
installed on every broker, a broker discovery service, and per-broker
:class:`~repro.tracing.broker_ops.TraceManager` instances.  Tests,
benchmarks and examples all build on this.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.auth.cache import DEFAULT_TOKEN_CACHE_CAPACITY, TokenVerificationCache
from repro.auth.credentials import EntityCredentials
from repro.auth.verification import TokenVerifier, TraceAuthorizationGuard
from repro.crypto.certificates import CertificateAuthority
from repro.crypto.costmodel import CryptoOp, OpCost
from repro.crypto.rsa import RSAPublicKey
from repro.errors import ConfigurationError
from repro.messaging.broker_network import BrokerNetwork
from repro.messaging.discovery import BrokerDiscoveryService
from repro.messaging.federation import FederationConfig
from repro.obs import EventJournal, MetricsRegistry
from repro.sim.engine import Simulator
from repro.sim.monitor import Monitor
from repro.tdn.node import TDNCluster
from repro.tdn.query import DiscoveryRestrictions
from repro.tracing.broker_ops import TraceManager
from repro.tracing.entity import TracedEntity
from repro.tracing.failure import AdaptivePingPolicy
from repro.tracing.interest import ALL_CATEGORIES, InterestCategory
from repro.tracing.tracker import Tracker
from repro.transport.base import TransportProfile
from repro.transport.tcp import TCP_CLUSTER
from repro.util.clock import NTPSkewModel
from repro.util.identifiers import EntityId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analytics import AnalyticsStore


@dataclass
class Deployment:
    """A fully wired simulated deployment."""

    sim: Simulator
    monitor: Monitor
    network: BrokerNetwork
    ca: CertificateAuthority
    tdn: TDNCluster
    discovery: BrokerDiscoveryService
    managers: dict[str, TraceManager]
    token_verifier: TokenVerifier
    default_profile: TransportProfile
    entities: dict[str, TracedEntity] = field(default_factory=dict)
    trackers: dict[str, Tracker] = field(default_factory=dict)
    #: per-broker verifiers backing each broker's publish guard; their
    #: verification caches are per-process state, cleared on restart
    broker_verifiers: dict[str, TokenVerifier] = field(default_factory=dict)
    #: optional persistent analytics store (``attach_analytics``)
    analytics: "AnalyticsStore | None" = field(default=None)

    # ------------------------------------------------------------- principals

    def add_traced_entity(
        self,
        entity_id: str,
        machine_name: str | None = None,
        restrictions: DiscoveryRestrictions | None = None,
        secured: bool = False,
        use_symmetric_channel: bool = False,
        monitor: Monitor | None = None,
    ) -> TracedEntity:
        """Create a traced entity with CA-issued credentials."""
        machine = self.network.machine(machine_name or f"machine-{entity_id}")
        credentials = EntityCredentials.issue(entity_id, self.ca, machine.rng)
        entity = TracedEntity(
            sim=self.sim,
            entity_id=EntityId(entity_id),
            network=self.network,
            machine=machine,
            credentials=credentials,
            tdn=self.tdn,
            monitor=monitor or self.monitor,
            restrictions=restrictions,
            secured=secured,
            use_symmetric_channel=use_symmetric_channel,
        )
        self.entities[entity_id] = entity
        return entity

    def add_tracker(
        self,
        tracker_id: str,
        machine_name: str | None = None,
        interests: frozenset[InterestCategory] = ALL_CATEGORIES,
        monitor: Monitor | None = None,
        proactive_interest: bool = True,
        verify_traces: bool = True,
    ) -> Tracker:
        """Create a tracker with CA-issued credentials."""
        machine = self.network.machine(machine_name or f"machine-{tracker_id}")
        credentials = EntityCredentials.issue(tracker_id, self.ca, machine.rng)
        tracker = Tracker(
            sim=self.sim,
            tracker_id=tracker_id,
            network=self.network,
            machine=machine,
            credentials=credentials,
            tdn=self.tdn,
            token_verifier=self.token_verifier,
            monitor=monitor or self.monitor,
            interests=interests,
            proactive_interest=proactive_interest,
            verify_traces=verify_traces,
        )
        self.trackers[tracker_id] = tracker
        if self.analytics is not None:
            from repro.analytics import TraceIngestor

            TraceIngestor(self.analytics, tracker)
        return tracker

    def manager_of(self, broker_id: str) -> TraceManager:
        return self.managers[broker_id]

    def restart_broker(self, broker_id: str, neighbors: Iterable[str] = ()) -> None:
        """Bring a failed broker back and reset its tracing incarnation.

        Restores the fabric adjacency (``BrokerNetwork.recover_broker``),
        clears the broker's per-session ping windows
        (``TraceManager.handle_broker_restart``) so pre-crash state cannot
        poison post-restart failure detection, and empties the broker's
        token-verification cache — a restarted broker process starts cold
        and must re-verify every token it sees.
        """
        self.network.recover_broker(broker_id, neighbors)
        manager = self.managers.get(broker_id)
        if manager is not None:
            manager.handle_broker_restart()
        verifier = self.broker_verifiers.get(broker_id)
        if verifier is not None and verifier.cache is not None:
            verifier.cache.clear()

    # ---------------------------------------------------------- observability

    @property
    def metrics(self) -> MetricsRegistry:
        """The deployment-wide instrument registry (repro.obs)."""
        return self.monitor.metrics

    @property
    def journal(self) -> EventJournal:
        """The deployment-wide structured event journal (repro.obs)."""
        return self.monitor.journal

    def snapshot(self) -> dict:
        """One JSON-serializable view of every instrument's current state.

        With an analytics store attached the snapshot grows an
        ``analytics`` block (backend, event count, kind inventory) so
        harness output records what the persistent log captured.
        """
        snapshot = self.monitor.metrics.snapshot()
        if self.analytics is not None:
            snapshot["analytics"] = self.analytics.summary()
        return snapshot

    def attach_analytics(
        self, store: "AnalyticsStore | None" = None
    ) -> "AnalyticsStore":
        """Attach a persistent analytics store fed by every tracker.

        Creates an in-memory :class:`~repro.analytics.AnalyticsStore`
        unless one is given, binds it to the deployment's metrics
        registry (so ``analytics.*`` instruments count ingestion), and
        hooks the trace feed on every current *and future* tracker.
        Appends draw no randomness and consume no virtual time, so an
        instrumented run stays bit-identical to a bare one.
        """
        from repro.analytics import AnalyticsStore, TraceIngestor

        if store is None:
            store = AnalyticsStore()
        store.bind_metrics(self.metrics)
        self.analytics = store
        for tracker in self.trackers.values():
            TraceIngestor(store, tracker)
        return store

    def finalize_analytics(self, **meta) -> "AnalyticsStore":
        """Copy the run's journal into the attached store and stamp meta.

        Call once after the simulation horizon: the journal copy
        preserves every evidence kind the audit gate checks, and
        ``now_ms`` (defaulting to the simulator clock) closes open
        availability intervals in later reports.
        """
        from repro.analytics import ingest_journal

        if self.analytics is None:
            raise ConfigurationError(
                "finalize_analytics() needs attach_analytics() first"
            )
        ingest_journal(self.analytics, self.journal)
        self.analytics.set_meta(now_ms=self.sim.now, **meta)
        return self.analytics


def tdn_public_keys(tdn: TDNCluster) -> dict[str, RSAPublicKey]:
    """The trusted TDN key map brokers and trackers verify against."""
    return {node.name: node._keys.public for node in tdn.nodes}


def build_deployment(
    broker_ids: Iterable[str] = ("b1", "b2"),
    topology: str = "chain",
    seed: int = 0,
    profile: TransportProfile = TCP_CLUSTER,
    tdn_node_count: int = 2,
    cost_calibration: Mapping[CryptoOp, OpCost] | None = None,
    cost_scale: float = 1.0,
    ntp_model: NTPSkewModel | None = None,
    ping_policy: AdaptivePingPolicy | None = None,
    gauge_interval_ms: float = 60_000.0,
    skew_tolerance_ms: float = 100.0,
    extra_links: Iterable[tuple[str, str]] = (),
    token_cache: bool = True,
    token_cache_capacity: int = DEFAULT_TOKEN_CACHE_CAPACITY,
    ping_coalescing: bool = True,
    codec: str | None = None,
    tdn_query_cache: bool = True,
    federation: FederationConfig | bool | None = None,
    per_direction_link_rng: bool = True,
) -> Deployment:
    """Build a complete deployment.

    ``topology`` is ``"chain"`` (the paper's Figure 1 line of brokers),
    ``"star"`` (first broker is the hub), or ``"none"`` (add links via
    ``extra_links`` only).

    ``token_cache``, ``ping_coalescing`` and ``tdn_query_cache`` toggle the
    hot-path optimizations of docs/PERFORMANCE.md (the token-verification
    LRU, batched pings to co-located entities, and the TDN discovery
    cache).  All default on; disabling them reproduces the
    pre-optimization wire behaviour bit-for-bit, which is what the legacy
    seed snapshots under ``benchmarks/results/*_legacy.json`` pin.

    ``codec`` names the wire codec every link sizes payloads with
    (``repro.wire``): an explicit argument wins, then the ``REPRO_CODEC``
    environment variable (the CI codec matrix), then the transport
    profile's own ``codec`` field, then ``json``.  Harnesses that compare
    against committed seed snapshots pin ``codec="json"`` explicitly.

    ``federation`` switches the broker fabric's control plane from
    verbatim per-pattern interest flooding to summarized interest
    exchange (:mod:`repro.messaging.federation`): pass ``True`` for the
    default :class:`FederationConfig` or a config instance to tune the
    hot-set / digest parameters.  Off by default — the committed seed
    scenarios pin the verbatim plane — and bit-identical to it anyway
    while every broker's pattern count stays within the hot-set limit.

    ``per_direction_link_rng`` controls duplex-link jitter derivation:
    each direction of a broker-to-broker link draws from its own named
    stream (the fixed behaviour), so traffic on one direction cannot
    perturb latencies on the other.  ``False`` restores the historical
    shared stream that the ``*_legacy.json`` seed snapshots pin.
    """
    from repro.wire.codec import CODEC_ENV_VAR, get_codec

    resolved_codec = codec
    if resolved_codec is None:
        # None (not "json") when the environment is silent, so a profile's
        # own codec field still applies as the next fallback tier.
        resolved_codec = os.environ.get(CODEC_ENV_VAR, "").strip() or None
    if resolved_codec is not None:
        get_codec(resolved_codec)  # fail fast on unknown names

    sim = Simulator()
    monitor = Monitor()
    network = BrokerNetwork(
        sim,
        seed=seed,
        monitor=monitor,
        default_profile=profile,
        cost_calibration=cost_calibration,
        cost_scale=cost_scale,
        ntp_model=ntp_model,
        codec=resolved_codec,
        federation=federation,
        per_direction_link_rng=per_direction_link_rng,
    )

    ids = list(broker_ids)
    for broker_id in ids:
        network.add_broker(broker_id)
    if topology == "chain":
        for left, right in zip(ids, ids[1:], strict=False):
            network.connect_brokers(left, right)
    elif topology == "star" and len(ids) > 1:
        for spoke in ids[1:]:
            network.connect_brokers(ids[0], spoke)
    elif topology not in ("chain", "star", "none"):
        raise ConfigurationError(f"unknown topology {topology!r}")
    for left, right in extra_links:
        network.connect_brokers(left, right)

    ca = CertificateAuthority("repro-root-ca", network.streams.stream("ca"))

    tdn_machines = [network.machine(f"machine-tdn-{i}") for i in range(tdn_node_count)]
    tdn = TDNCluster(
        sim, ca, tdn_machines, monitor=monitor,
        uuid_seed=network.streams.derive_seed("tdn-uuids"),
        query_cache=tdn_query_cache,
    )

    trusted_keys = tdn_public_keys(tdn)

    def _make_verifier() -> TokenVerifier:
        cache = (
            TokenVerificationCache(
                capacity=token_cache_capacity, metrics=monitor.metrics
            )
            if token_cache
            else None
        )
        return TokenVerifier(
            trusted_keys, skew_tolerance_ms=skew_tolerance_ms, cache=cache
        )

    # trackers share this verifier; each broker's guard gets its own so a
    # broker restart can cold-start that broker's cache independently
    verifier = _make_verifier()
    broker_verifiers: dict[str, TokenVerifier] = {}

    def _locate_client_host(client_id: str) -> str | None:
        try:
            return network.client(client_id).machine.name
        except KeyError:
            return None

    discovery = BrokerDiscoveryService(sim, monitor=monitor)
    managers: dict[str, TraceManager] = {}
    for broker_id in ids:
        broker = network.broker(broker_id)
        broker_verifiers[broker_id] = _make_verifier()
        broker.publish_guards.append(
            TraceAuthorizationGuard(broker_verifiers[broker_id])
        )
        discovery.register_broker(broker)
        managers[broker_id] = TraceManager(
            broker=broker,
            ca=ca,
            tdn_public_keys=trusted_keys,
            monitor=monitor,
            ping_policy=ping_policy,
            gauge_interval_ms=gauge_interval_ms,
            ping_coalescing=ping_coalescing,
            client_locator=_locate_client_host,
        )

    return Deployment(
        sim=sim,
        monitor=monitor,
        network=network,
        ca=ca,
        tdn=tdn,
        discovery=discovery,
        managers=managers,
        token_verifier=verifier,
        default_profile=profile,
        broker_verifiers=broker_verifiers,
    )
