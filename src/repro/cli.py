"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``info``
    Package, paper and experiment-index summary.
``quickstart``
    Run the minimal tracing scenario and print what the tracker saw.
``bench``
    Run one experiment family and print its paper-vs-measured table
    (``hops``, ``micro``, ``keydist``, ``trackers``, ``entities``,
    ``msgcount``, ``gossip``, ``adaptive``).
``demo``
    Run a scenario: ``failure`` (crash detection), ``secure``
    (confidential traces), ``availability`` (archive report).
``metrics``
    Run the quickstart scenario and print the full repro.obs metrics
    snapshot (text, or JSON with ``--json``).
``analyze``
    Run the repro.analysis domain linter over source trees (exit 1 on
    findings; ``--format json`` for the stable machine-readable report,
    ``--stats`` for per-rule counts via the metrics registry).
``faults``
    Run one chaos scenario from the repro.faults catalog and print its
    fault/recovery summary (``--json`` for the CI seed-snapshot form).
``campaign``
    Run a declarative parameter-sweep campaign (``campaign run --spec
    FILE``) or regenerate its report artifacts from a committed
    snapshot (``campaign report --snapshot FILE``); docs/CAMPAIGNS.md.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro import __version__


def _cmd_info(_args) -> int:
    from repro.crypto.costmodel import PAPER_CALIBRATION

    print(f"repro {__version__} — IPDPS 2007 availability-tracing reproduction")
    print("paper: Pallickara, Ekanayake, Fox — 'A Scalable Approach for the")
    print("       Secure and Authorized Tracking of the Availability of")
    print("       Entities in Distributed Systems'")
    print()
    print("experiments: hops (Table 3/Fig 2), micro (Table 3), keydist (Table 3),")
    print("             trackers (Fig 4), entities (Table 4), msgcount / gossip /")
    print("             adaptive (ablations)")
    print(f"calibrated crypto operations: {len(PAPER_CALIBRATION)}")
    print("docs: README.md, DESIGN.md, EXPERIMENTS.md")
    return 0


def _cmd_quickstart(args) -> int:
    from repro import build_deployment, TraceType

    dep = build_deployment(broker_ids=["b1", "b2", "b3"], seed=args.seed)
    entity = dep.add_traced_entity("demo-service")
    tracker = dep.add_tracker("demo-tracker")
    tracker.connect("b3")
    entity.start("b1")
    dep.sim.run(until=3_000)
    tracker.track("demo-service")
    dep.sim.run(until=float(args.duration) * 1000.0)

    latencies = tracker.latencies(TraceType.ALLS_WELL)
    print(f"traces received: {len(tracker.received)}")
    for kind in sorted({t.trace_type.value for t in tracker.received}):
        count = sum(1 for t in tracker.received if t.trace_type.value == kind)
        print(f"  {kind:<20s} x{count}")
    if latencies:
        print(f"mean heartbeat latency: {sum(latencies)/len(latencies):.2f} ms")
    return 0


def _cmd_metrics(args) -> int:
    """Run the quickstart scenario, then dump the metrics snapshot."""
    from repro import build_deployment

    if args.diff:
        import json as _json

        from repro.obs.diff import diff_snapshots, load_snapshot, render_diff

        before_path, after_path = args.diff
        diff = diff_snapshots(
            load_snapshot(before_path), load_snapshot(after_path)
        )
        if args.json:
            print(_json.dumps(diff, indent=2, sort_keys=True))
        else:
            print(render_diff(diff, only_changed=not args.all))
        return 0

    if args.routing_smoke:
        from repro.bench.routing_smoke import render_snapshot, run_routing_smoke

        snapshot = run_routing_smoke(
            seed=args.seed, duration_ms=float(args.duration) * 1000.0
        )
        print(render_snapshot(snapshot), end="")
        return 0

    if args.ping_heavy:
        import json as _json

        from repro.bench.hotpath import run_ping_heavy

        snapshot = run_ping_heavy(seed=args.seed, codec=args.codec)
        print(_json.dumps(snapshot, indent=2, sort_keys=True))
        return 0

    dep = build_deployment(broker_ids=["b1", "b2", "b3"], seed=args.seed)
    entity = dep.add_traced_entity("demo-service")
    tracker = dep.add_tracker("demo-tracker")
    tracker.connect("b3")
    entity.start("b1")
    dep.sim.run(until=3_000)
    tracker.track("demo-service")
    dep.sim.run(until=float(args.duration) * 1000.0)

    if args.json:
        print(dep.metrics.to_json())
    else:
        print(dep.metrics.render_text())
        if len(dep.journal):
            print()
            print(f"journal: {len(dep.journal)} events, "
                  f"kinds: {', '.join(dep.journal.kinds())}")
    return 0


def _cmd_analyze(args) -> int:
    """Run the domain linter; exit 0 clean, 1 on findings, 2 on bad usage.

    With ``--baseline`` the exit code ratchets instead: 0 as long as no
    ``(rule, path)`` finding count exceeds the committed baseline, 1 on
    any new finding.  ``--update-baseline`` rewrites the baseline file;
    ``--add-noqa`` suppresses findings in place; ``--sarif`` additionally
    emits a SARIF 2.1.0 report for code-scanning upload.
    """
    from repro.analysis import (
        analyze_paths,
        compare_to_baseline,
        format_findings_json,
        format_findings_text,
        format_sarif,
        load_baseline,
        record_stats,
        write_baseline,
    )
    from repro.analysis.autofix import add_noqa
    from repro.analysis.runner import select_checkers
    from repro.errors import ConfigurationError
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry() if args.stats else None
    try:
        if args.update_baseline and not args.baseline:
            raise ConfigurationError("--update-baseline requires --baseline FILE")
        checkers = select_checkers(args.rules)
        findings = analyze_paths(args.paths, checkers, registry=registry)
    except ConfigurationError as exc:
        print(f"repro analyze: {exc}", file=sys.stderr)
        return 2
    rules = [checker.rule for checker in checkers]

    if args.format == "json":
        print(format_findings_json(findings, rules))
    else:
        print(format_findings_text(findings))
    if args.sarif:
        report = format_sarif(findings, checkers)
        if args.sarif == "-":
            print(report)
        else:
            with open(args.sarif, "w", encoding="utf-8") as handle:
                handle.write(report + "\n")
    if args.stats:
        record_stats(findings, registry, rules)
        print()
        print(registry.render_text())

    if args.add_noqa:
        edits = add_noqa(findings)
        total = sum(edits.values())
        print(f"added noqa comments to {total} line(s) in {len(edits)} file(s)")
        return 0
    if args.update_baseline:
        write_baseline(findings, args.baseline)
        print(f"baseline written: {args.baseline}")
        return 0
    if args.baseline:
        try:
            accepted = load_baseline(args.baseline)
        except ConfigurationError as exc:
            print(f"repro analyze: {exc}", file=sys.stderr)
            return 2
        regressions, improvements = compare_to_baseline(findings, accepted)
        for line in improvements:
            print(f"baseline: {line}")
        for line in regressions:
            print(f"NEW FINDING vs baseline: {line}")
        return 1 if regressions else 0
    return 1 if findings else 0


def _cmd_faults(args) -> int:
    """Run one chaos scenario and print (or dump as JSON) its snapshot."""
    from repro.faults import render_snapshot, run_scenario

    duration_ms = None if args.duration is None else float(args.duration) * 1000.0
    snapshot = run_scenario(args.scenario, seed=args.seed, duration_ms=duration_ms)
    if args.json:
        print(render_snapshot(snapshot), end="")
        return 0

    counters = snapshot["counters"]
    print(f"chaos scenario: {snapshot['scenario']} "
          f"(seed {snapshot['seed']}, {snapshot['duration_ms']/1000:.0f}s virtual)")
    injected = {
        name.rsplit(".", 1)[-1]: count
        for name, count in counters.items()
        if name.startswith("faults.injected.") and count
    }
    print(f"faults injected: {injected or 'none'}")
    print(f"traces delivered: {counters['broker.msgs.delivered']} "
          f"(unroutable {counters['broker.msgs.unroutable']})")
    recovery = snapshot["recovery"]
    if recovery["count"]:
        print(f"recoveries: {recovery['count']} "
              f"(mean {recovery['mean_ms']:.0f} ms, max {recovery['max_ms']:.0f} ms "
              "detection -> re-registration)")
    else:
        print("recoveries: none measured")
    pending = counters["trace.recovery.detected"] - counters["trace.recovery.completed"]
    if pending:
        print(f"unrecovered entities at end of run: {pending}")
    return 0


def _cmd_campaign(args) -> int:
    """Run a campaign (or one point of it), or regenerate its report.

    ``campaign run`` executes the spec's full matrix and writes
    ``snapshot.json`` plus report artifacts under ``--out``; with
    ``--point I`` it runs exactly one matrix point and prints its
    result record as JSON (the subprocess-parallel child mode); with
    ``--compare SEED`` it exits 1 unless the live snapshot matches the
    committed seed byte-for-byte.  ``campaign report`` re-renders the
    report artifacts from an existing snapshot file.
    """
    import json as _json
    import pathlib

    from repro.campaigns import (
        compare_to_snapshot,
        expand,
        generate_report,
        load_spec,
        render_snapshot,
        run_campaign,
        run_point,
        unused_parameters,
    )
    from repro.errors import ReproError

    try:
        if args.action == "report":
            snapshot = _json.loads(
                pathlib.Path(args.snapshot).read_text(encoding="utf-8")
            )
            out_dir = args.out or pathlib.Path(args.snapshot).parent
            written = generate_report(snapshot, out_dir)
            for path in written:
                print(f"wrote {path}")
            return 0

        spec = load_spec(args.spec)
        for name in unused_parameters(spec):
            print(
                f"repro campaign: warning: parameter {name!r} is accepted "
                "by no family in this campaign (typo?)",
                file=sys.stderr,
            )

        if args.point is not None:
            points = expand(spec, seed=args.seed)
            if not 0 <= args.point < len(points):
                print(
                    f"repro campaign: point {args.point} out of range "
                    f"(matrix has {len(points)} points)",
                    file=sys.stderr,
                )
                return 2
            print(_json.dumps(run_point(points[args.point]), sort_keys=True))
            return 0

        snapshot = run_campaign(
            spec,
            seed=args.seed,
            parallel=args.parallel,
            spec_path=args.spec,
            progress=None if args.json else print,
        )
    except ReproError as exc:
        print(f"repro campaign: {exc}", file=sys.stderr)
        return 2

    rendered = render_snapshot(snapshot)
    if args.json:
        print(rendered, end="")

    if args.out:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        snapshot_path = out_dir / "snapshot.json"
        snapshot_path.write_text(rendered, encoding="utf-8")
        written = generate_report(snapshot, out_dir)
        if not args.json:
            print(f"wrote {snapshot_path}")
            for path in written:
                print(f"wrote {path}")

    if args.compare:
        seed_snapshot = _json.loads(
            pathlib.Path(args.compare).read_text(encoding="utf-8")
        )
        findings = compare_to_snapshot(snapshot, seed_snapshot)
        if findings:
            print(f"campaign drift vs {args.compare}:", file=sys.stderr)
            for finding in findings:
                print(f"  {finding}", file=sys.stderr)
            return 1
        if not args.json:
            print(f"matches committed seed {args.compare}")
    return 0


def _cmd_bench(args) -> int:
    from repro.bench.tables import render_comparison, render_series
    from repro.bench import paper_data
    from repro.bench.tables import ComparisonRow

    name = args.experiment
    if name == "hops":
        from repro.bench.experiments.hops import run_hops_sweep

        results = run_hops_sweep(
            hops_list=tuple(args.hops), duration_ms=args.duration * 1000.0
        )
        blocks = {
            ("TCP", False): paper_data.TABLE3_TCP_AUTH,
            ("TCP", True): paper_data.TABLE3_TCP_AUTH_SEC,
            ("UDP", False): paper_data.TABLE3_UDP_AUTH,
            ("UDP", True): paper_data.TABLE3_UDP_AUTH_SEC,
        }
        rows = [
            ComparisonRow(
                label=f"{r.transport} {'auth+sec' if r.secured else 'auth'} {r.hops} hops",
                paper_mean=blocks[(r.transport, r.secured)][r.hops][0],
                paper_std=blocks[(r.transport, r.secured)][r.hops][1],
                measured=r.summary,
            )
            for r in results
        ]
        print(render_comparison("Table 3: trace routing overhead (ms)", rows))
    elif name == "micro":
        from repro.bench.experiments.microcosts import run_calibrated_micro

        results = run_calibrated_micro(samples=1_000)
        rows = [
            ComparisonRow(
                label=r.label,
                paper_mean=paper_data.TABLE3_MICRO[r.label][0],
                paper_std=paper_data.TABLE3_MICRO[r.label][1],
                measured=r.calibrated,
            )
            for r in results
        ]
        print(render_comparison("Table 3: per-operation security costs (ms)", rows))
    elif name == "keydist":
        from repro.bench.experiments.keydist import run_keydist_sweep

        results = run_keydist_sweep()
        rows = [
            ComparisonRow(
                label=f"key distribution, {r.hops} hops",
                paper_mean=paper_data.TABLE3_KEYDIST[r.hops][0],
                paper_std=paper_data.TABLE3_KEYDIST[r.hops][1],
                measured=r.summary,
            )
            for r in results
        ]
        print(render_comparison("Table 3: key distribution overhead (ms)", rows))
    elif name == "trackers":
        from repro.bench.experiments.trackers import run_trackers_sweep

        results = run_trackers_sweep(
            counts=(10, 30, 50, 70, 100), duration_ms=args.duration * 1000.0
        )
        print(
            render_series(
                "Figure 4: trace time vs trackers", "trackers",
                {"trace time (ms)": [(r.tracker_count, r.summary.mean) for r in results]},
            )
        )
    elif name == "entities":
        from repro.bench.experiments.entities import run_entities_sweep

        results = run_entities_sweep(duration_ms=args.duration * 1000.0)
        rows = [
            ComparisonRow(
                label=f"{r.entity_count} traced entities",
                paper_mean=paper_data.TABLE4_ENTITIES[r.entity_count][0],
                paper_std=paper_data.TABLE4_ENTITIES[r.entity_count][1],
                measured=r.summary,
            )
            for r in results
        ]
        print(render_comparison("Table 4: overhead vs traced entities (ms)", rows))
    elif name == "msgcount":
        from repro.bench.experiments.ablations import run_message_count_sweep

        results = run_message_count_sweep(populations=(10, 20, 40))
        print(
            render_series(
                "EXP-A1: message load", "N",
                {
                    "all-pairs msgs/s": [(r.population, r.allpairs_msgs_per_s) for r in results],
                    "tracing msgs/s": [(r.population, r.tracing_msgs_per_s) for r in results],
                },
            )
        )
    elif name == "gossip":
        from repro.bench.experiments.ablations import run_gossip_comparison

        g = run_gossip_comparison()
        print(f"gossip:  detect {g.gossip_detect_first_ms:.0f}-"
              f"{g.gossip_detect_last_ms:.0f} ms, {g.gossip_msgs_per_s:.1f} msgs/s")
        print(f"tracing: detect {g.tracing_detect_ms:.0f} ms, "
              f"{g.tracing_msgs_per_s:.1f} msgs/s")
    elif name == "adaptive":
        from repro.bench.experiments.ablations import run_adaptive_ping_ablation

        for r in run_adaptive_ping_ablation():
            print(f"{r.label:<26s} detect={r.detection_ms:.0f} ms "
                  f"pings={r.pings_sent}")
    else:  # pragma: no cover - argparse restricts choices
        print(f"unknown experiment {name!r}", file=sys.stderr)
        return 2
    return 0


def _cmd_analytics(args) -> int:
    """Drive the availability analytics store (docs/ANALYTICS.md).

    ``analytics run`` executes one chaos scenario with the store
    attached, enforces the audit-completeness gate, and writes (or
    prints) the store snapshot JSON — this is how the committed seed
    under ``benchmarks/results/analytics/`` is produced.  ``analytics
    report`` renders the SLO report (text, JSON or markdown) from such a
    snapshot, deterministically: CI regenerates the committed report
    from the committed snapshot and fails on any byte of drift.
    """
    from repro.analytics import (
        AnalyticsStore,
        build_report,
        render_report_json,
        render_report_markdown,
        render_report_text,
    )

    if args.action == "run":
        from repro.errors import AuditIncompleteError
        from repro.faults import run_scenario
        from repro.analytics import assert_audit_complete

        store = AnalyticsStore(backend=args.backend, **(
            {"path": args.db} if args.backend == "sqlite" and args.db else {}
        ))
        audit_failures: list[str] = []

        def _probe(dep) -> None:
            if args.no_audit:
                return
            try:
                assert_audit_complete(dep)
            except AuditIncompleteError as exc:
                audit_failures.append(str(exc))

        run_scenario(
            args.scenario,
            seed=args.seed,
            analytics_store=store,
            deployment_probe=_probe,
        )
        if audit_failures:
            print(audit_failures[0], file=sys.stderr)
            return 1
        if args.out:
            store.save(args.out)
            print(f"wrote {store.count()} events to {args.out}")
        else:
            print(store.export_json())
        return 0

    if args.action == "report":
        store = AnalyticsStore.load(args.snapshot)
        report = build_report(store)
        renderers = {
            "text": render_report_text,
            "json": render_report_json,
            "markdown": render_report_markdown,
        }
        rendered = renderers[args.format](report) + "\n"
        if args.out:
            pathlib.Path(args.out).write_text(rendered, encoding="utf-8")
            print(f"wrote {args.out}")
        else:
            print(rendered, end="")
        return 0

    return 2  # pragma: no cover - argparse restricts actions


def _cmd_demo(args) -> int:
    from repro import build_deployment, TraceType

    if args.scenario == "failure":
        from repro.tracing.failure import AdaptivePingPolicy

        dep = build_deployment(
            broker_ids=["b1", "b2"], seed=args.seed,
            ping_policy=AdaptivePingPolicy(
                base_interval_ms=1_000.0, min_interval_ms=200.0,
                max_interval_ms=2_000.0, response_deadline_ms=300.0,
            ),
        )
        entity = dep.add_traced_entity("svc")
        tracker = dep.add_tracker("w")
        tracker.connect("b2")
        entity.start("b1")
        dep.sim.run(until=3_000)
        tracker.track("svc")
        dep.sim.run(until=10_000)
        print("crashing the entity at t=10s ...")
        entity.crash()
        dep.sim.run(until=60_000)
        for kind in (TraceType.FAILURE_SUSPICION, TraceType.FAILED):
            traces = tracker.traces_of_type(kind)
            when = f"t={traces[0].received_ms/1000:.2f}s" if traces else "never"
            print(f"  {kind.value:<20s} {when}")
    elif args.scenario == "secure":
        dep = build_deployment(broker_ids=["b1", "b2"], seed=args.seed)
        entity = dep.add_traced_entity("svc", secured=True)
        tracker = dep.add_tracker("w")
        tracker.connect("b2")
        entity.start("b1")
        dep.sim.run(until=3_000)
        tracker.track("svc")
        dep.sim.run(until=30_000)
        print(f"trace key distributed: {tracker.trace_key_for('svc') is not None}")
        print(f"decrypted heartbeats:  {len(tracker.traces_of_type(TraceType.ALLS_WELL))}")
    elif args.scenario == "availability":
        from repro.tracing.archive import AvailabilityArchive

        dep = build_deployment(broker_ids=["b1"], seed=args.seed)
        entity = dep.add_traced_entity("svc")
        tracker = dep.add_tracker("w")
        tracker.connect("b1")
        archive = AvailabilityArchive(tracker)
        entity.start("b1")
        dep.sim.run(until=3_000)
        tracker.track("svc")
        dep.sim.run(until=30_000)
        entity.crash()
        dep.sim.run(until=90_000)
        dep.sim.process(entity.reregister())
        dep.sim.run(until=150_000)
        print(archive.report(dep.sim.now))
    else:  # pragma: no cover
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Secure & authorized availability tracking (IPDPS 2007 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package and experiment summary")

    quickstart = sub.add_parser("quickstart", help="run the minimal scenario")
    quickstart.add_argument("--seed", type=int, default=42)
    quickstart.add_argument("--duration", type=float, default=30.0,
                            help="virtual seconds to simulate")

    bench = sub.add_parser("bench", help="run one experiment family")
    bench.add_argument(
        "experiment",
        choices=["hops", "micro", "keydist", "trackers", "entities",
                 "msgcount", "gossip", "adaptive"],
    )
    bench.add_argument("--hops", type=int, nargs="+", default=[2, 3, 4, 5, 6])
    bench.add_argument("--duration", type=float, default=60.0,
                       help="virtual seconds per case")

    demo = sub.add_parser("demo", help="run a scenario")
    demo.add_argument("scenario", choices=["failure", "secure", "availability"])
    demo.add_argument("--seed", type=int, default=7)

    metrics = sub.add_parser(
        "metrics", help="run the quickstart scenario and dump the metrics snapshot"
    )
    metrics.add_argument("--seed", type=int, default=42)
    metrics.add_argument("--duration", type=float, default=30.0,
                         help="virtual seconds to simulate")
    metrics.add_argument("--json", action="store_true",
                         help="emit the snapshot as JSON")
    metrics.add_argument("--routing-smoke", action="store_true",
                         help="run the deterministic routing smoke scenario "
                              "(quickstart + detach) and emit its routing-"
                              "counter snapshot as JSON")
    metrics.add_argument("--ping-heavy", action="store_true",
                         help="run the ping-heavy hot-path scenario "
                              "(repro.bench.hotpath) and emit the full "
                              "metrics snapshot as JSON; combine with "
                              "--codec to compare wire codecs")
    metrics.add_argument("--codec", default="json",
                         help="wire codec for --ping-heavy (a repro.wire "
                              "registry name; default %(default)s)")
    metrics.add_argument("--diff", nargs=2, metavar=("BEFORE", "AFTER"),
                         default=None,
                         help="instead of simulating, diff two snapshot JSON "
                              "files and print per-instrument deltas "
                              "(docs/PERFORMANCE.md); --json for machine-"
                              "readable output")
    metrics.add_argument("--all", action="store_true",
                         help="with --diff: include unchanged instruments")

    analyze = sub.add_parser(
        "analyze", help="run the repro.analysis domain linter (exit 1 on findings)"
    )
    analyze.add_argument("paths", nargs="*", default=["src"],
                         help="files or directories to analyze (default: src)")
    analyze.add_argument("--format", choices=["text", "json"], default="text",
                         help="report format")
    analyze.add_argument("--rules", type=lambda s: [r for r in s.split(",") if r],
                         default=None, metavar="RULE[,RULE...]",
                         help="restrict to a comma-separated subset of rules")
    analyze.add_argument("--stats", action="store_true",
                         help="also print per-rule counts as analysis.findings.* "
                              "metrics-registry counters plus analysis.project.* "
                              "timing instruments")
    analyze.add_argument("--baseline", metavar="FILE", default=None,
                         help="ratchet mode: exit 0 unless a (rule, path) count "
                              "exceeds the accepted counts in FILE")
    analyze.add_argument("--update-baseline", action="store_true",
                         help="with --baseline: rewrite FILE from the current "
                              "findings and exit 0")
    analyze.add_argument("--sarif", metavar="FILE", default=None,
                         help="also write a SARIF 2.1.0 report to FILE "
                              "('-' for stdout)")
    analyze.add_argument("--add-noqa", action="store_true",
                         help="insert '# repro: noqa[RULE]' comments on every "
                              "finding (in place) and exit 0")

    faults = sub.add_parser(
        "faults", help="run a deterministic chaos scenario (repro.faults)"
    )
    faults.add_argument(
        "--scenario",
        required=True,
        choices=["broker-crash", "link-partition", "packet-loss",
                 "delay-spike", "entity-churn"],
        help="scenario from the docs/FAULTS.md catalog",
    )
    faults.add_argument("--seed", type=int, default=42)
    faults.add_argument("--duration", type=float, default=None,
                        help="virtual seconds to simulate "
                             "(default: the scenario's own horizon)")
    faults.add_argument("--json", action="store_true",
                        help="emit the seed-snapshot JSON form used by CI")

    campaign = sub.add_parser(
        "campaign",
        help="run a declarative parameter-sweep campaign (docs/CAMPAIGNS.md)",
    )
    campaign_sub = campaign.add_subparsers(dest="action", required=True)
    campaign_run = campaign_sub.add_parser(
        "run", help="expand and execute a campaign spec"
    )
    campaign_run.add_argument("--spec", required=True, metavar="FILE",
                              help="JSON campaign spec "
                                   "(see benchmarks/campaigns/)")
    campaign_run.add_argument("--seed", type=int, default=None,
                              help="override the spec's base seed")
    campaign_run.add_argument("--out", metavar="DIR", default=None,
                              help="write snapshot.json + report artifacts "
                                   "into DIR")
    campaign_run.add_argument("--compare", metavar="SEED_FILE", default=None,
                              help="exit 1 unless the live snapshot matches "
                                   "this committed seed snapshot")
    campaign_run.add_argument("--parallel", type=int, default=1,
                              help="run points in N subprocesses "
                                   "(default: sequential in-process)")
    campaign_run.add_argument("--point", type=int, default=None, metavar="I",
                              help="run exactly one matrix point and print "
                                   "its JSON record (child mode)")
    campaign_run.add_argument("--json", action="store_true",
                              help="print the full snapshot JSON instead of "
                                   "progress lines")
    campaign_report = campaign_sub.add_parser(
        "report", help="regenerate report artifacts from a snapshot"
    )
    campaign_report.add_argument("--snapshot", required=True, metavar="FILE",
                                 help="campaign snapshot JSON")
    campaign_report.add_argument("--out", metavar="DIR", default=None,
                                 help="output directory (default: next to "
                                      "the snapshot)")

    analytics = sub.add_parser(
        "analytics",
        help="persistent availability analytics (docs/ANALYTICS.md)",
    )
    analytics_sub = analytics.add_subparsers(dest="action", required=True)
    analytics_run = analytics_sub.add_parser(
        "run", help="run a chaos scenario with the analytics store attached"
    )
    analytics_run.add_argument(
        "--scenario",
        required=True,
        choices=["broker-crash", "link-partition", "packet-loss",
                 "delay-spike", "entity-churn"],
        help="scenario from the docs/FAULTS.md catalog",
    )
    analytics_run.add_argument("--seed", type=int, default=42)
    analytics_run.add_argument("--backend", choices=["memory", "sqlite"],
                               default="memory",
                               help="analytics backend (default: memory)")
    analytics_run.add_argument("--db", metavar="FILE", default=None,
                               help="sqlite database path "
                                    "(default: in-memory)")
    analytics_run.add_argument("--out", metavar="FILE", default=None,
                               help="write the store snapshot JSON to FILE "
                                    "(default: print it)")
    analytics_run.add_argument("--no-audit", action="store_true",
                               help="skip the audit-completeness gate")
    analytics_report = analytics_sub.add_parser(
        "report", help="render the SLO report from a store snapshot"
    )
    analytics_report.add_argument("--snapshot", required=True, metavar="FILE",
                                  help="store snapshot JSON "
                                       "(see benchmarks/results/analytics/)")
    analytics_report.add_argument("--format",
                                  choices=["text", "json", "markdown"],
                                  default="text")
    analytics_report.add_argument("--out", metavar="FILE", default=None,
                                  help="write the rendering to FILE "
                                       "(default: print it)")

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "quickstart": _cmd_quickstart,
        "bench": _cmd_bench,
        "demo": _cmd_demo,
        "metrics": _cmd_metrics,
        "analyze": _cmd_analyze,
        "faults": _cmd_faults,
        "campaign": _cmd_campaign,
        "analytics": _cmd_analytics,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
