"""SARIF 2.1.0 rendering of analysis findings.

SARIF (Static Analysis Results Interchange Format, OASIS) is what GitHub
code scanning ingests: the CI analyze job uploads this file via
``github/codeql-action/upload-sarif`` so findings annotate pull-request
diffs instead of dying in a job log.  One run, one driver
(``repro-analyze``), one rule entry per shipped checker, one result per
finding.

The shapes here follow the 2.1.0 schema strictly — ``tests/analysis``
validates the output against the published JSON Schema.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.base import SEVERITY_WARNING, Checker, Finding
from repro.analysis.baseline import normalize_path

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_TOOL_NAME = "repro-analyze"


def _rule_entry(checker: Checker) -> dict:
    entry = {
        "id": checker.rule,
        "name": type(checker).__name__,
        "shortDescription": {"text": checker.description},
        "defaultConfiguration": {
            "level": "warning" if checker.severity == SEVERITY_WARNING else "error"
        },
    }
    if checker.default_hint:
        entry["help"] = {"text": checker.default_hint}
    return entry


def _result(finding: Finding, rule_index: dict[str, int]) -> dict:
    message = finding.message
    if finding.hint:
        message = f"{message} (hint: {finding.hint})"
    result = {
        "ruleId": finding.rule,
        "level": "warning" if finding.severity == SEVERITY_WARNING else "error",
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": normalize_path(finding.path),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {"startLine": max(finding.line, 1)},
                }
            }
        ],
    }
    if finding.rule in rule_index:
        result["ruleIndex"] = rule_index[finding.rule]
    return result


def to_sarif(findings: Sequence[Finding], checkers: Sequence[Checker]) -> dict:
    """The SARIF 2.1.0 log object for one analysis run."""
    rules = [_rule_entry(checker) for checker in checkers]
    rule_index = {checker.rule: i for i, checker in enumerate(checkers)}
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {"name": _TOOL_NAME, "rules": rules}
                },
                "columnKind": "utf16CodeUnits",
                "results": [_result(finding, rule_index) for finding in findings],
            }
        ],
    }


def format_sarif(findings: Sequence[Finding], checkers: Sequence[Checker]) -> str:
    """:func:`to_sarif` rendered as stable, diff-friendly JSON text."""
    return json.dumps(to_sarif(findings, checkers), indent=2, sort_keys=True)
