"""The shipped rule set.  Import order fixes the catalogue order."""

from __future__ import annotations

from repro.analysis.base import Checker
from repro.analysis.rules.crypto_hygiene import SecretExposureChecker
from repro.analysis.rules.determinism import SetIterationChecker, WallClockChecker
from repro.analysis.rules.determinism_flow import DeterminismFlowChecker
from repro.analysis.rules.error_taxonomy import BuiltinRaiseChecker
from repro.analysis.rules.key_taint import KeyMaterialFlowChecker
from repro.analysis.rules.observability import (
    InstrumentNameChecker,
    UndocumentedInstrumentChecker,
)
from repro.analysis.rules.sim_process import BlockingSimProcessChecker
from repro.analysis.rules.wire_schema import WireSchemaChecker

#: Checker classes in catalogue order (DET01, DET02, DET03, SIM01, CRY01,
#: CRY02, OBS01, OBS02, WIRE01, ERR01).  DET03, CRY02, OBS02 and WIRE01
#: are project-wide rules: they run once per analysis over the shared
#: :class:`~repro.analysis.project.ProjectIndex` and are inert in
#: single-file mode (``analyze_source``).
ALL_CHECKER_CLASSES: tuple[type[Checker], ...] = (
    WallClockChecker,
    SetIterationChecker,
    DeterminismFlowChecker,
    BlockingSimProcessChecker,
    SecretExposureChecker,
    KeyMaterialFlowChecker,
    InstrumentNameChecker,
    UndocumentedInstrumentChecker,
    WireSchemaChecker,
    BuiltinRaiseChecker,
)


def default_checkers() -> list[Checker]:
    """Fresh instances of every shipped checker."""
    return [cls() for cls in ALL_CHECKER_CLASSES]
