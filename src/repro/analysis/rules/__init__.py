"""The shipped rule set.  Import order fixes the catalogue order."""

from __future__ import annotations

from repro.analysis.base import Checker
from repro.analysis.rules.crypto_hygiene import SecretExposureChecker
from repro.analysis.rules.determinism import SetIterationChecker, WallClockChecker
from repro.analysis.rules.error_taxonomy import BuiltinRaiseChecker
from repro.analysis.rules.observability import InstrumentNameChecker
from repro.analysis.rules.sim_process import BlockingSimProcessChecker

#: Checker classes in catalogue order (DET01, DET02, SIM01, CRY01, OBS01, ERR01).
ALL_CHECKER_CLASSES: tuple[type[Checker], ...] = (
    WallClockChecker,
    SetIterationChecker,
    BlockingSimProcessChecker,
    SecretExposureChecker,
    InstrumentNameChecker,
    BuiltinRaiseChecker,
)


def default_checkers() -> list[Checker]:
    """Fresh instances of every shipped checker."""
    return [cls() for cls in ALL_CHECKER_CLASSES]
