"""ERR01 — the error taxonomy is the API.

Callers and tests discriminate failure modes by exception type (a forged
signature is not an expired token).  A ``raise ValueError`` inside
``src/repro/`` flattens that distinction and is invisible to ``except
ReproError`` boundaries, so every raise must use a
:class:`~repro.errors.ReproError` subclass.  ``NotImplementedError`` is
exempt: it is Python's abstract-method idiom, not a protocol failure.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import SEVERITY_ERROR, Checker, FileContext, Finding

#: Builtin exception types banned in ``raise`` statements, with the
#: taxonomy home that replaces each (the hint shown on findings).
BANNED_BUILTIN_RAISES: dict[str, str] = {
    "Exception": "a specific ReproError subclass",
    "BaseException": "a specific ReproError subclass",
    "ValueError": "ValidationError / ConfigurationError (repro.errors)",
    "TypeError": "SerializationTypeError or a ValidationError subclass",
    "RuntimeError": "SimulationError / BenchmarkError (repro.errors)",
    "KeyError": "SeriesNotFoundError or a ReproError+KeyError subclass",
    "IndexError": "a ReproError subclass carrying the lookup context",
    "LookupError": "a ReproError subclass carrying the lookup context",
    "ArithmeticError": "StatsError or a ValidationError subclass",
    "ZeroDivisionError": "StatsError or a ValidationError subclass",
    "OSError": "TransportError (repro.errors)",
    "IOError": "TransportError (repro.errors)",
    "StopIteration": "return from the generator instead",
}


class BuiltinRaiseChecker(Checker):
    """ERR01: raise ``ReproError`` subclasses, not builtin exception types."""

    rule = "ERR01"
    description = (
        "library code must raise repro.errors.ReproError subclasses so "
        "callers can discriminate failure modes"
    )
    severity = SEVERITY_ERROR
    default_hint = "pick or add a subclass in repro/errors.py"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            callee = exc.func if isinstance(exc, ast.Call) else exc
            origin = ctx.resolve(callee)
            if origin in BANNED_BUILTIN_RAISES:
                yield ctx.finding(
                    self,
                    node,
                    f"raise of builtin {origin} inside the library",
                    hint=f"use {BANNED_BUILTIN_RAISES[origin]}",
                )
