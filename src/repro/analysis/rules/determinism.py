"""DET01 / DET02 — determinism contracts.

The reproduction promises bit-identical reruns from one master seed.  Two
things silently break that promise: reading the host's clock or global RNG
(DET01), and letting set iteration order — which varies with
``PYTHONHASHSEED`` for str-keyed sets — feed scheduling or routing
decisions (DET02).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Checker,
    FileContext,
    Finding,
)

#: Wall-clock reads banned outside the virtual-clock / realtime bridge.
WALL_CLOCK_ORIGINS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Set methods whose result is itself an unordered set.
SET_PRODUCING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)


class WallClockChecker(Checker):
    """DET01: no wall clock, no global ``random`` state in simulation code."""

    rule = "DET01"
    description = (
        "wall-clock reads and global random state break seeded reproducibility; "
        "draw time from the virtual clock and randomness from RandomStreams"
    )
    severity = SEVERITY_ERROR
    default_hint = "use sim.clock / RandomStreams.stream(name) (see repro/sim/random.py)"

    def applies_to(self, ctx: FileContext) -> bool:
        # The stream factory and the asyncio realtime bridge are the two
        # places allowed to touch the host's clock and RNG machinery.
        return not (ctx.is_module("sim/random.py") or ctx.in_package_dir("runtime"))

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = ctx.resolve(node.func)
            if origin is None:
                continue
            if origin in WALL_CLOCK_ORIGINS:
                yield ctx.finding(
                    self, node, f"wall-clock read {origin}() in simulation code"
                )
            elif origin == "random.Random" and not node.args and not node.keywords:
                yield ctx.finding(
                    self,
                    node,
                    "unseeded random.Random() is nondeterministic across runs",
                    hint="seed it explicitly, or draw a stream from RandomStreams",
                )
            elif origin.startswith("random.") and origin != "random.Random":
                yield ctx.finding(
                    self,
                    node,
                    f"module-level {origin}() uses the shared global RNG",
                )


class SetIterationChecker(Checker):
    """DET02: no iteration over sets in scheduling/routing code."""

    rule = "DET02"
    description = (
        "set iteration order depends on PYTHONHASHSEED for str elements; "
        "in scheduling and routing code it must be made explicit"
    )
    severity = SEVERITY_WARNING
    default_hint = "wrap the iterable in sorted(...) to pin the order"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package_dir("sim", "messaging", "tracing")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                iterables = [node.iter]
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iterables = [gen.iter for gen in node.generators]
            else:
                continue
            for iterable in iterables:
                reason = self._unordered_reason(ctx, iterable)
                if reason is not None:
                    yield ctx.finding(self, iterable, reason)

    @staticmethod
    def _unordered_reason(ctx: FileContext, node: ast.expr) -> str | None:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "iteration over a set literal/comprehension has no defined order"
        if isinstance(node, ast.Call):
            if ctx.resolve(node.func) == "set":
                return "iteration over set(...) has no defined order"
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in SET_PRODUCING_METHODS
            ):
                return (
                    f"iteration over .{node.func.attr}(...) yields an unordered set"
                )
            if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
                return (
                    "iterate the mapping directly (ordering is then explicitly "
                    "insertion order), not .keys()"
                )
        return None
