"""OBS01 / OBS02 — instrument naming and documentation contracts.

``MetricsRegistry`` instruments follow ``<family>.<noun>[.<detail>]``
(docs/OBSERVABILITY.md): all lowercase, dot-separated, first segment one
of the documented families.  Snapshot consumers group by that first
segment, so a misspelled family silently drops a number out of every
dashboard and paper-comparison table built on the snapshot.

OBS01 checks the *shape* per file; OBS02 checks *documentation* per
project: every instrument the code registers must appear in
docs/OBSERVABILITY.md.  The extraction helpers here are the single
source of truth — ``tools/check_metric_docs.py`` is a thin wrapper over
them, so the doc gate and ``repro analyze`` can never disagree about
what counts as an instrument.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.base import SEVERITY_ERROR, Checker, FileContext, Finding
from repro.analysis.project import ProjectChecker, ProjectIndex

#: Documented instrument families (docs/OBSERVABILITY.md + docs/ANALYSIS.md).
KNOWN_FAMILIES = frozenset(
    {
        "analysis",
        "analytics",
        "auth",
        "broker",
        "campaign",
        "codec",
        "crypto",
        "faults",
        "fed",
        "frame",
        "tdn",
        "trace",
        "tracker",
        "transport",
    }
)

#: Registry factory methods whose first argument is an instrument name.
INSTRUMENT_FACTORIES = frozenset({"counter", "gauge", "histogram", "timer"})

_SEGMENT = r"[a-z][a-z0-9_]*"
_FULL_NAME_RE = re.compile(rf"^{_SEGMENT}(\.{_SEGMENT})+$")
_PREFIX_RE = re.compile(rf"^{_SEGMENT}\.")


class InstrumentNameChecker(Checker):
    """OBS01: instrument name literals must match the documented scheme."""

    rule = "OBS01"
    description = (
        "registry instrument names must be lowercase dotted "
        "<family>.<noun>[.<detail>] with a documented family"
    )
    severity = SEVERITY_ERROR
    default_hint = (
        "families: " + ", ".join(sorted(KNOWN_FAMILIES)) + " (docs/OBSERVABILITY.md)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in INSTRUMENT_FACTORIES
                and node.args
                and self._receiver_is_registry(node.func.value)
            ):
                yield from self._check_name(ctx, node, node.args[0])

    @staticmethod
    def _receiver_is_registry(receiver: ast.expr) -> bool:
        """Heuristic: the object owning ``.counter``/... looks like a registry."""
        tail = (
            receiver.id
            if isinstance(receiver, ast.Name)
            else receiver.attr if isinstance(receiver, ast.Attribute) else ""
        ).lower()
        return "metric" in tail or "registr" in tail

    def _check_name(
        self, ctx: FileContext, call: ast.Call, name_arg: ast.expr
    ) -> Iterator[Finding]:
        if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str):
            name = name_arg.value
            if not _FULL_NAME_RE.match(name):
                yield ctx.finding(
                    self,
                    call,
                    f"instrument name {name!r} is not lowercase dotted "
                    "<family>.<noun>[.<detail>]",
                )
            elif name.split(".", 1)[0] not in KNOWN_FAMILIES:
                yield ctx.finding(
                    self,
                    call,
                    f"instrument family {name.split('.', 1)[0]!r} "
                    f"(from {name!r}) is not documented",
                )
        elif isinstance(name_arg, ast.JoinedStr):
            yield from self._check_fstring_name(ctx, call, name_arg)
        # A bare variable cannot be checked statically; the registry's own
        # helpers (e.g. timer() delegating to histogram()) pass those.

    def _check_fstring_name(
        self, ctx: FileContext, call: ast.Call, name_arg: ast.JoinedStr
    ) -> Iterator[Finding]:
        first = name_arg.values[0] if name_arg.values else None
        prefix = (
            first.value
            if isinstance(first, ast.Constant) and isinstance(first.value, str)
            else ""
        )
        if not _PREFIX_RE.match(prefix):
            yield ctx.finding(
                self,
                call,
                "dynamic instrument name must start with a literal "
                "'<family>.' prefix so the family stays checkable",
            )
        elif prefix.split(".", 1)[0] not in KNOWN_FAMILIES:
            yield ctx.finding(
                self,
                call,
                f"instrument family {prefix.split('.', 1)[0]!r} "
                f"(from f-string prefix {prefix!r}) is not documented",
            )


# -- shared instrument extraction (OBS02 + tools/check_metric_docs.py) ------------

#: Backticked dotted tokens in docs/OBSERVABILITY.md that share a family
#: prefix but are journal/monitor event names, not registry instruments.
NON_INSTRUMENT_DOC_TOKENS = frozenset(
    {
        "trace.suppressed_no_subscriber",
        "trace.sessions_created",
        "trace.sessions_superseded",
        "trace.keys_distributed",
    }
)

_DOC_TOKEN_RE = re.compile(r"`([a-z][a-z0-9_]*(?:\.[a-z0-9_<>\-]+)+)`")


def module_string_constants(tree: ast.Module) -> dict[str, str]:
    """Module-level ``NAME = "literal"`` assignments (instrument aliases)."""
    constants: dict[str, str] = {}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            constants[node.targets[0].id] = node.value.value
    return constants


def instrument_registrations(
    tree: ast.Module,
) -> Iterator[tuple[ast.Call, str | None, str | None]]:
    """Registry factory calls as ``(call, exact name, f-string prefix)``.

    Exactly one of the last two is non-None per yielded registration;
    calls whose name argument cannot be resolved statically (a bare
    variable that is not a module constant) are skipped, matching OBS01.
    """
    constants = module_string_constants(tree)
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in INSTRUMENT_FACTORIES
            and node.args
            and InstrumentNameChecker._receiver_is_registry(node.func.value)
        ):
            continue
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            yield node, arg.value, None
        elif isinstance(arg, ast.Name) and arg.id in constants:
            yield node, constants[arg.id], None
        elif isinstance(arg, ast.JoinedStr) and arg.values:
            first = arg.values[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                yield node, None, first.value


def collect_code_names_from_trees(
    trees: Iterable[ast.Module],
) -> tuple[set[str], set[str]]:
    """(exact instrument names, f-string literal prefixes) over ``trees``."""
    names: set[str] = set()
    prefixes: set[str] = set()
    for tree in trees:
        for _node, name, prefix in instrument_registrations(tree):
            if name is not None:
                names.add(name)
            else:
                prefixes.add(prefix)
    return names, prefixes


def doc_instrument_names(text: str) -> tuple[set[str], set[str]]:
    """(exact documented names, placeholder prefixes) in the doc text.

    Placeholder segments in angle brackets (``crypto.ms.<op>``) match any
    code name or f-string prefix under the literal part before them.
    """
    exact: set[str] = set()
    placeholder_prefixes: set[str] = set()
    for token in _DOC_TOKEN_RE.findall(text):
        if token.split(".", 1)[0] not in KNOWN_FAMILIES:
            continue
        if token in NON_INSTRUMENT_DOC_TOKENS:
            continue
        if "<" in token:
            placeholder_prefixes.add(token.split("<", 1)[0])
        else:
            exact.add(token)
    return exact, placeholder_prefixes


def instrument_drift(
    code_names: set[str],
    code_prefixes: set[str],
    doc_names: set[str],
    doc_prefixes: set[str],
) -> list[str]:
    """Human-readable drift findings, both directions, sorted."""
    findings: list[str] = []

    def documented(name: str) -> bool:
        return name in doc_names or any(
            name.startswith(prefix) for prefix in doc_prefixes
        )

    for name in sorted(code_names):
        if not documented(name):
            findings.append(
                f"undocumented instrument: {name!r} is registered in code "
                "but missing from docs/OBSERVABILITY.md"
            )
    for prefix in sorted(code_prefixes):
        if not (
            prefix in doc_prefixes
            or any(name.startswith(prefix) for name in doc_names)
        ):
            findings.append(
                f"undocumented instrument prefix: f-string names under "
                f"{prefix!r} have no entry in docs/OBSERVABILITY.md"
            )

    def exists_in_code(name: str) -> bool:
        return name in code_names or any(
            name.startswith(prefix) for prefix in code_prefixes
        )

    for name in sorted(doc_names):
        if not exists_in_code(name):
            findings.append(
                f"stale documentation: {name!r} appears in "
                "docs/OBSERVABILITY.md but no code registers it"
            )
    for prefix in sorted(doc_prefixes):
        if not (
            prefix in code_prefixes
            or any(name.startswith(prefix) for name in code_names)
        ):
            findings.append(
                f"stale documentation: placeholder family {prefix!r}* has "
                "no matching instrument in code"
            )
    return findings


class UndocumentedInstrumentChecker(ProjectChecker):
    """OBS02: every registered instrument is listed in OBSERVABILITY.md.

    The code-to-doc direction of the metric-docs gate, with source
    locations; the doc-to-code (staleness) direction has no code anchor
    and stays with ``tools/check_metric_docs.py``.  Projects without a
    ``docs/OBSERVABILITY.md`` (fixture packages) are skipped entirely.
    """

    rule = "OBS02"
    description = (
        "registered instrument names must be documented in "
        "docs/OBSERVABILITY.md (exactly or under a <placeholder> prefix)"
    )
    severity = SEVERITY_ERROR
    default_hint = "add the instrument to the family table in docs/OBSERVABILITY.md"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        doc_text = self._find_doc(index)
        if doc_text is None:
            return
        doc_names, doc_prefixes = doc_instrument_names(doc_text)

        def documented(name: str) -> bool:
            return name in doc_names or any(
                name.startswith(prefix) for prefix in doc_prefixes
            )

        for info in index.iter_modules():
            for node, name, prefix in instrument_registrations(info.ctx.tree):
                if name is not None and not documented(name):
                    yield self.project_finding(
                        info,
                        node,
                        f"instrument {name!r} is registered here but not "
                        "documented in docs/OBSERVABILITY.md",
                    )
                elif prefix is not None and not (
                    prefix in doc_prefixes
                    or any(doc.startswith(prefix) for doc in doc_names)
                ):
                    yield self.project_finding(
                        info,
                        node,
                        f"dynamic instruments under {prefix!r} have no entry "
                        "in docs/OBSERVABILITY.md",
                    )

    @staticmethod
    def _find_doc(index: ProjectIndex) -> str | None:
        """docs/OBSERVABILITY.md contents, climbing up from any module."""
        for info in index.iter_modules():
            current = Path(info.path).resolve().parent
            while True:
                candidate = current / "docs" / "OBSERVABILITY.md"
                if candidate.is_file():
                    return candidate.read_text(encoding="utf-8")
                if current.parent == current:
                    break
                current = current.parent
        return None
