"""OBS01 — instrument naming contract.

``MetricsRegistry`` instruments follow ``<family>.<noun>[.<detail>]``
(docs/OBSERVABILITY.md): all lowercase, dot-separated, first segment one
of the documented families.  Snapshot consumers group by that first
segment, so a misspelled family silently drops a number out of every
dashboard and paper-comparison table built on the snapshot.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.base import SEVERITY_ERROR, Checker, FileContext, Finding

#: Documented instrument families (docs/OBSERVABILITY.md + docs/ANALYSIS.md).
KNOWN_FAMILIES = frozenset(
    {
        "analysis",
        "auth",
        "broker",
        "codec",
        "crypto",
        "faults",
        "frame",
        "tdn",
        "trace",
        "tracker",
        "transport",
    }
)

#: Registry factory methods whose first argument is an instrument name.
INSTRUMENT_FACTORIES = frozenset({"counter", "gauge", "histogram", "timer"})

_SEGMENT = r"[a-z][a-z0-9_]*"
_FULL_NAME_RE = re.compile(rf"^{_SEGMENT}(\.{_SEGMENT})+$")
_PREFIX_RE = re.compile(rf"^{_SEGMENT}\.")


class InstrumentNameChecker(Checker):
    """OBS01: instrument name literals must match the documented scheme."""

    rule = "OBS01"
    description = (
        "registry instrument names must be lowercase dotted "
        "<family>.<noun>[.<detail>] with a documented family"
    )
    severity = SEVERITY_ERROR
    default_hint = (
        "families: " + ", ".join(sorted(KNOWN_FAMILIES)) + " (docs/OBSERVABILITY.md)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in INSTRUMENT_FACTORIES
                and node.args
                and self._receiver_is_registry(node.func.value)
            ):
                yield from self._check_name(ctx, node, node.args[0])

    @staticmethod
    def _receiver_is_registry(receiver: ast.expr) -> bool:
        """Heuristic: the object owning ``.counter``/... looks like a registry."""
        tail = (
            receiver.id
            if isinstance(receiver, ast.Name)
            else receiver.attr if isinstance(receiver, ast.Attribute) else ""
        ).lower()
        return "metric" in tail or "registr" in tail

    def _check_name(
        self, ctx: FileContext, call: ast.Call, name_arg: ast.expr
    ) -> Iterator[Finding]:
        if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str):
            name = name_arg.value
            if not _FULL_NAME_RE.match(name):
                yield ctx.finding(
                    self,
                    call,
                    f"instrument name {name!r} is not lowercase dotted "
                    "<family>.<noun>[.<detail>]",
                )
            elif name.split(".", 1)[0] not in KNOWN_FAMILIES:
                yield ctx.finding(
                    self,
                    call,
                    f"instrument family {name.split('.', 1)[0]!r} "
                    f"(from {name!r}) is not documented",
                )
        elif isinstance(name_arg, ast.JoinedStr):
            yield from self._check_fstring_name(ctx, call, name_arg)
        # A bare variable cannot be checked statically; the registry's own
        # helpers (e.g. timer() delegating to histogram()) pass those.

    def _check_fstring_name(
        self, ctx: FileContext, call: ast.Call, name_arg: ast.JoinedStr
    ) -> Iterator[Finding]:
        first = name_arg.values[0] if name_arg.values else None
        prefix = (
            first.value
            if isinstance(first, ast.Constant) and isinstance(first.value, str)
            else ""
        )
        if not _PREFIX_RE.match(prefix):
            yield ctx.finding(
                self,
                call,
                "dynamic instrument name must start with a literal "
                "'<family>.' prefix so the family stays checkable",
            )
        elif prefix.split(".", 1)[0] not in KNOWN_FAMILIES:
            yield ctx.finding(
                self,
                call,
                f"instrument family {prefix.split('.', 1)[0]!r} "
                f"(from f-string prefix {prefix!r}) is not documented",
            )
