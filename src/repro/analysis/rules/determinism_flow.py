"""DET03 — nondeterministic values flowing into replay-critical state.

DET01 flags the *read* (``time.time()``, global ``random``); DET03 flags
the *flow*: a wall-clock or unseeded-RNG value reaching a message id, a
seed, or encoded wire bytes.  Those are precisely the places where a
nondeterministic value stops being a local wart and poisons bit-identical
replay — message ids feed wire-size accounting and hence sampled virtual
latencies (the bug class that forced ``reset_message_ids``), seeds fan a
single bad value out over every downstream draw, and encoded frames pin
the damage into captured byte snapshots.

Runs on the :mod:`repro.analysis.dataflow` engine with the same one-hop
summaries as CRY02: a helper returning ``time.time()`` taints its callers'
uses, one call away.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator

from repro.analysis.base import SEVERITY_ERROR, Finding
from repro.analysis.dataflow import (
    FunctionSummary,
    SummaryTable,
    TaintSpec,
    TaintTracker,
)
from repro.analysis.project import (
    ModuleInfo,
    ProjectChecker,
    ProjectIndex,
    enclosing_class_map,
)
from repro.analysis.rules.determinism import WALL_CLOCK_ORIGINS

#: Keyword arguments that are replay-critical sinks on any call.
SINK_KEYWORDS = frozenset({"message_id", "seed"})

#: Callee names whose positional arguments are replay-critical.
SINK_CALLEES = frozenset({"reset_message_ids", "encode", "encode_into"})

#: Calls that reduce a tainted value to something replay-safe (a size,
#: a type check) rather than carrying it forward.
_SANITIZER_NAMES = frozenset({"len", "bool", "type", "isinstance", "id"})


def _source_call(origin: str | None, node: ast.Call) -> str | None:
    if origin is None:
        return None
    if origin in WALL_CLOCK_ORIGINS:
        return origin
    if origin == "random.Random":
        # Unseeded only: ``random.Random(seed)`` is reproducible.
        return origin if not node.args and not node.keywords else None
    if origin.startswith("random."):
        return origin
    return None


def _sanitizer(origin: str | None, node: ast.Call) -> bool:
    callee = origin.rsplit(".", 1)[-1] if origin else ""
    return callee in _SANITIZER_NAMES


def make_determinism_taint_spec() -> TaintSpec:
    """The DET03 taint vocabulary (exported for the fixture tests)."""
    return TaintSpec(
        source_call=_source_call,
        source_expr=lambda node: None,
        sanitizer=_sanitizer,
        # int(time.time()) or f"{time.time()}" is still nondeterministic.
        propagate_call_args=True,
    )


def _call_sinks(call: ast.Call) -> list[tuple[str, ast.expr]]:
    """``(sink description, argument)`` pairs this call exposes."""
    sinks: list[tuple[str, ast.expr]] = []
    for kw in call.keywords:
        if kw.arg in SINK_KEYWORDS:
            sinks.append((f"the {kw.arg}= argument", kw.value))
    func = call.func
    callee = (
        func.id
        if isinstance(func, ast.Name)
        else func.attr if isinstance(func, ast.Attribute) else ""
    )
    if callee in SINK_CALLEES:
        what = (
            "the message-id counter"
            if callee == "reset_message_ids"
            else f"a .{callee}() wire frame"
        )
        sinks.extend((what, arg) for arg in call.args)
    return sinks


def _probe(tracker: TaintTracker, node: ast.AST) -> str | None:
    """Summary-pass probe: does this node sink any value at all?"""
    if isinstance(node, ast.Call) and _call_sinks(node):
        return "a replay-critical sink"
    return None


class DeterminismFlowChecker(ProjectChecker):
    """DET03: clock/RNG values must not reach ids, seeds, or frames."""

    rule = "DET03"
    description = (
        "wall-clock and global-RNG values must not flow into message ids, "
        "seeds, or encoded wire frames"
    )
    severity = SEVERITY_ERROR
    default_hint = (
        "derive the value from sim.clock / RandomStreams so replays at a "
        "fixed master seed stay bit-identical"
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        spec = make_determinism_taint_spec()
        summaries = SummaryTable(index, spec, sink_probe=_probe)
        for info, qualname, fn in index.iter_functions():
            if self._exempt(info):
                continue
            yield from self._check_function(summaries, spec, info, qualname, fn)

    @staticmethod
    def _exempt(info: ModuleInfo) -> bool:
        # Same carve-out as DET01: the stream factory and the realtime
        # bridge legitimately touch the host clock/RNG.
        return info.ctx.is_module("sim/random.py") or info.ctx.in_package_dir("runtime")

    def _check_function(
        self,
        summaries: SummaryTable,
        spec: TaintSpec,
        info: ModuleInfo,
        qualname: str,
        fn,
    ) -> Iterator[Finding]:
        current_class = enclosing_class_map(info).get(qualname)

        def resolve(call: ast.Call) -> FunctionSummary | None:
            return summaries.lookup(info, call, current_class)

        tracker = TaintTracker(info.ctx, spec, resolve_summary=resolve)
        found: list[Finding] = []
        seen: set[tuple[int, str]] = set()

        def visitor(
            node: ast.AST, taint_of: Callable[[ast.expr], str | None]
        ) -> None:
            if not isinstance(node, ast.Call):
                return
            for sink, arg in _call_sinks(node):
                label = taint_of(arg)
                if label is None:
                    continue
                message = (
                    f"nondeterministic value from {label}() flows into {sink}"
                )
                key = (node.lineno, message)
                if key not in seen:
                    seen.add(key)
                    found.append(self.project_finding(info, node, message))

        tracker.run(fn, visitor)
        yield from found
