"""WIRE01 — wire-schema drift between producers, handlers, and codecs.

The wire vocabulary lives in three places that nothing ties together at
runtime: message producers build ``{"kind": ...}`` bodies, broker/entity
handlers dispatch on ``body.get("kind")`` comparisons, and the compact
codec interns the protocol's strings in its static table.  A kind added
on one side and forgotten on another fails *silently* — the broker counts
``trace.entity_messages_unknown`` and drops the message, or the compact
codec spends inline bytes on a string the json codec frames for free.

WIRE01 extracts all three vocabularies from the :class:`ProjectIndex`
and cross-checks them:

* a produced kind with no handler comparison anywhere — **error** at the
  production site (the message will be dropped);
* a handled kind that nothing produces — **warning** at the comparison
  site (dead dispatch arm, or the producer was renamed);
* ``Message.wire_dict()`` fields and the compact codec's
  ``_encode_message_body`` attribute reads must match exactly both ways,
  and every extra ``RoutedFrame`` field must be encoded too — **error**
  (silent payload loss on one codec);
* a produced kind missing from the compact static intern table —
  **warning** (correct but wasteful: the kind is spelled out inline in
  every frame).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import SEVERITY_ERROR, SEVERITY_WARNING, Finding
from repro.analysis.project import (
    ModuleInfo,
    ProjectChecker,
    ProjectIndex,
    call_param_pairs,
    enclosing_class_map,
)

#: One occurrence of a kind string: where it was seen.
KindSites = dict[str, list[tuple[ModuleInfo, ast.AST]]]


def _record(sites: KindSites, kind: str, module: ModuleInfo, node: ast.AST) -> None:
    sites.setdefault(kind, []).append((module, node))


def produced_kinds(index: ProjectIndex) -> KindSites:
    """Every message kind the project builds, with its production sites.

    Two production shapes: dict literals with a constant-resolvable
    ``"kind"`` entry (``{"kind": PING_BATCH_KIND, ...}``), and constant
    strings passed to a *kind-forwarding* function — one whose body puts
    that parameter into a ``{"kind": <param>}`` dict, like
    ``Entity._send_sealed("trace_key", ...)``.  Bodies whose kind is some
    other runtime value (``{"kind": self.kind}``) are invisible to both
    and deliberately out of scope.
    """
    sites: KindSites = {}
    forwarding = _kind_forwarding_params(index)
    for info in index.iter_modules():
        for node in ast.walk(info.ctx.tree):
            if not isinstance(node, ast.Dict):
                continue
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "kind"
                    and (kind := index.resolve_constant(info, value)) is not None
                ):
                    _record(sites, kind, info, node)
    for info, qualname, fn in index.iter_functions():
        current_class = enclosing_class_map(info).get(qualname)
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            resolved = index.resolve_call(info, node, current_class)
            if resolved is None:
                continue
            params = forwarding.get((resolved[0].name, resolved[1]))
            if not params:
                continue
            for param, arg in call_param_pairs(index, info, node, current_class):
                if param not in params:
                    continue
                kind = index.resolve_constant(info, arg)
                if kind is not None:
                    _record(sites, kind, info, node)
    return sites


def _kind_forwarding_params(index: ProjectIndex) -> dict[tuple[str, str], set[str]]:
    """``(module, qualname) -> params`` that flow into a ``"kind"`` entry."""
    forwarding: dict[tuple[str, str], set[str]] = {}
    for info, qualname, fn in index.iter_functions():
        param_names = {arg.arg for arg in [*fn.args.posonlyargs, *fn.args.args]}
        for node in ast.walk(fn):
            if not isinstance(node, ast.Dict):
                continue
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "kind"
                    and isinstance(value, ast.Name)
                    and value.id in param_names
                ):
                    forwarding.setdefault((info.name, qualname), set()).add(value.id)
    return forwarding


def handled_kinds(index: ProjectIndex) -> KindSites:
    """Every kind some dispatcher compares against, with comparison sites.

    A handler comparison is ``<kind-ish> == "literal"`` (either order)
    where the kind-ish side is a name called ``kind`` or a direct
    ``.get("kind")`` call.
    """
    sites: KindSites = {}
    for info in index.iter_modules():
        for node in ast.walk(info.ctx.tree):
            if not (
                isinstance(node, ast.Compare)
                and len(node.ops) == 1
                and isinstance(node.ops[0], (ast.Eq, ast.NotEq))
            ):
                continue
            left, right = node.left, node.comparators[0]
            for kind_side, const_side in ((left, right), (right, left)):
                if (
                    _is_kind_read(kind_side)
                    and isinstance(const_side, ast.Constant)
                    and isinstance(const_side.value, str)
                ):
                    _record(sites, const_side.value, info, node)
    return sites


def _is_kind_read(node: ast.expr) -> bool:
    if isinstance(node, ast.Name) and node.id == "kind":
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and len(node.args) >= 1
        and isinstance(node.args[0], ast.Constant)
        and node.args[0].value == "kind"
    )


def static_interned_strings(compact: ModuleInfo) -> set[str] | None:
    """The compact codec's ``STATIC_STRINGS`` table, or None if absent."""
    for node in compact.ctx.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target: ast.expr = node.targets[0]
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target = node.target
        else:
            continue
        if isinstance(target, ast.Name) and target.id == "STATIC_STRINGS":
            value = node.value
            if isinstance(value, (ast.Tuple, ast.List)):
                return {
                    elt.value
                    for elt in value.elts
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                }
    return None


def wire_dict_fields(message_module: ModuleInfo) -> tuple[set[str], set[str]]:
    """``(message fields, frame-only extras)`` from the ``wire_dict`` defs.

    Message fields are the constant keys of the dict ``Message.wire_dict``
    returns; frame extras are constant subscript stores inside
    ``RoutedFrame.wire_dict`` (``frame["destinations"] = ...``).
    """
    fields: set[str] = set()
    extras: set[str] = set()
    message_fn = message_module.functions.get("Message.wire_dict")
    if message_fn is not None:
        for node in ast.walk(message_fn):
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
                fields.update(
                    key.value
                    for key in node.value.keys
                    if isinstance(key, ast.Constant) and isinstance(key.value, str)
                )
    frame_fn = message_module.functions.get("RoutedFrame.wire_dict")
    if frame_fn is not None:
        for node in ast.walk(frame_fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                    ):
                        extras.add(target.slice.value)
    return fields, extras


def encoder_attribute_reads(compact: ModuleInfo) -> set[str] | None:
    """Attributes ``_encode_message_body`` reads off its message parameter."""
    fn = compact.functions.get("_encode_message_body")
    if fn is None or not fn.args.args:
        return None
    param = fn.args.args[0].arg
    return {
        node.attr
        for node in ast.walk(fn)
        if isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == param
    }


class WireSchemaChecker(ProjectChecker):
    """WIRE01: kind and field vocabularies must agree across the stack."""

    rule = "WIRE01"
    description = (
        "message kinds must be produced AND handled; wire_dict fields must "
        "match the compact encoder; produced kinds belong in the compact "
        "static intern table"
    )
    severity = SEVERITY_ERROR
    default_hint = (
        "wire vocabulary lives in messaging/message.py, the kind dispatchers, "
        "and wire/compact.py STATIC_STRINGS — update all of them together"
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        produced = produced_kinds(index)
        handled = handled_kinds(index)
        yield from self._check_kind_coverage(produced, handled)
        compact = index.find_module("wire/compact.py")
        if compact is not None:
            yield from self._check_static_table(produced, compact)
            message_module = index.find_module("messaging/message.py")
            if message_module is not None:
                yield from self._check_field_parity(message_module, compact)

    # -- kinds ------------------------------------------------------------------

    def _check_kind_coverage(
        self, produced: KindSites, handled: KindSites
    ) -> Iterator[Finding]:
        for kind in sorted(set(produced) - set(handled)):
            for module, node in produced[kind]:
                yield self.project_finding(
                    module,
                    node,
                    f"message kind {kind!r} is produced here but no handler "
                    "compares against it — receivers will drop it",
                )
        for kind in sorted(set(handled) - set(produced)):
            for module, node in handled[kind]:
                yield self.project_finding(
                    module,
                    node,
                    f"message kind {kind!r} is dispatched on here but nothing "
                    "produces it — dead arm or renamed producer",
                    severity=SEVERITY_WARNING,
                )

    def _check_static_table(
        self, produced: KindSites, compact: ModuleInfo
    ) -> Iterator[Finding]:
        interned = static_interned_strings(compact)
        if interned is None:
            return
        for kind in sorted(set(produced) - interned):
            module, node = produced[kind][0]
            yield self.project_finding(
                module,
                node,
                f"message kind {kind!r} is not in the compact codec's static "
                "intern table; every frame spells it out inline",
                hint="append it to STATIC_STRINGS in wire/compact.py "
                "(append only — indexes are wire format)",
                severity=SEVERITY_WARNING,
            )

    # -- fields -----------------------------------------------------------------

    def _check_field_parity(
        self, message_module: ModuleInfo, compact: ModuleInfo
    ) -> Iterator[Finding]:
        fields, extras = wire_dict_fields(message_module)
        encoded = encoder_attribute_reads(compact)
        if not fields or encoded is None:
            return
        anchor_wire = message_module.functions["Message.wire_dict"]
        anchor_enc = compact.functions["_encode_message_body"]
        for field in sorted(fields - encoded):
            yield self.project_finding(
                message_module,
                anchor_wire,
                f"wire_dict() field {field!r} is never read by the compact "
                "codec's _encode_message_body — compact frames drop it",
            )
        for attr in sorted(encoded - fields):
            yield self.project_finding(
                compact,
                anchor_enc,
                f"compact codec encodes attribute {attr!r} that wire_dict() "
                "does not carry — json and compact frames disagree",
            )
        compact_attrs = {
            node.attr
            for node in ast.walk(compact.ctx.tree)
            if isinstance(node, ast.Attribute)
        }
        for extra in sorted(extras - compact_attrs):
            yield self.project_finding(
                message_module,
                message_module.functions["RoutedFrame.wire_dict"],
                f"RoutedFrame wire_dict() extra {extra!r} has no counterpart "
                "in the compact codec",
            )
