"""CRY01 — crypto hygiene.

Two failure families the paper's security sections (4-5) make fatal:

* **Key material in observable output.**  Trace keys and private keys must
  never reach the journal, a log line, an f-string message or ``repr`` —
  any of those ends up in exported snapshots that untrusted trackers read.
* **Degenerate cipher modes.**  A constant IV (or raw per-block encryption,
  i.e. ECB) makes equal heartbeat plaintexts produce equal ciphertexts,
  which is exactly the traffic-analysis leak §5.1's per-session trace keys
  exist to prevent.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.base import SEVERITY_ERROR, Checker, FileContext, Finding

#: Identifier components that mark a value as key material.
SECRET_PARTS = frozenset(
    {"key", "keys", "secret", "secrets", "private", "privkey", "passphrase", "password"}
)

#: Trailing components that mark a name as *metadata about* a key (its
#: size, count, id, ...) rather than the key itself.
METADATA_PARTS = frozenset(
    {"bits", "size", "len", "length", "count", "total", "id", "ids",
     "name", "names", "topic", "path", "hash", "digest", "fingerprint"}
)

#: Logging-shaped callable names (method attr or bare function).
LOG_CALL_NAMES = frozenset(
    {"log", "debug", "info", "warning", "error", "exception", "critical", "print"}
)

_SPLIT_RE = re.compile(r"[_\W\d]+")


def is_secret_name(identifier: str) -> bool:
    """``trace_key`` and ``private_exponent`` are secret; ``key_bits`` is not.

    A ``public`` component neutralizes the whole name: ``public_key`` /
    ``owner_public_key`` are *meant* to be shared, logged, and put on the
    wire (section 4's tokens literally carry one).
    """
    parts = [p for p in _SPLIT_RE.split(identifier.lower()) if p]
    if not parts or parts[-1] in METADATA_PARTS or "public" in parts:
        return False
    return any(part in SECRET_PARTS for part in parts)


def is_metadata_name(identifier: str) -> bool:
    """``count``, ``key_fingerprint`` — metadata *about* a key, never the key."""
    parts = [p for p in _SPLIT_RE.split(identifier.lower()) if p]
    return bool(parts) and parts[-1] in METADATA_PARTS


def access_chain(node: ast.expr) -> list[str]:
    """Name components of a ``Name``/``Attribute``/``Subscript`` chain.

    ``self.keys["count"]`` yields ``["self", "keys", "count"]``; a
    non-constant subscript (``keys[i]``) contributes no component but the
    chain keeps descending.  An empty list means the expression is not a
    plain access chain (a call, a literal, ...).
    """
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Name):
            parts.insert(0, node.id)
            return parts
        if isinstance(node, ast.Attribute):
            parts.insert(0, node.attr)
            node = node.value
            continue
        if isinstance(node, ast.Subscript):
            key = node.slice
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                parts.insert(0, key.value)
            node = node.value
            continue
        return []


def _secret_expr_name(node: ast.expr) -> str | None:
    """The offending identifier if ``node`` names key material directly.

    The whole access chain decides, and its *last* component wins:
    ``meta["private_key"]`` and ``session.keys[0]`` are key material, but
    ``keys["count"]`` and ``report["keys"]["fingerprint"]`` only read
    metadata about keys — the trailing component neutralizes the chain even
    when a secret-named part sits under a subscript.
    """
    parts = access_chain(node)
    if not parts or is_metadata_name(parts[-1]):
        return None
    if isinstance(node, ast.Subscript) and parts in (["key"], ["keys"]):
        # ``key[:8]`` / ``keys[i]``: indexing a *generically* named value is
        # a mapping lookup or a slice of something derived (a hex digest, an
        # id), not the key material itself.  Specific names (``trace_key``)
        # still flag.
        return None
    for part in reversed(parts):
        if is_secret_name(part):
            return part
    return None


def observable_sink_label(func: ast.expr) -> str | None:
    """Human label when ``func`` is an observable sink callable, else None.

    Shared with the flow-sensitive CRY02 rule so both agree on what counts
    as "observable output": logging-shaped calls, ``print``, and
    ``.record(...)`` on a journal-shaped receiver.
    """
    if isinstance(func, ast.Name):
        return f"{func.id}()" if func.id in LOG_CALL_NAMES else None
    if isinstance(func, ast.Attribute):
        if func.attr in LOG_CALL_NAMES:
            return f"a .{func.attr}() sink"
        if func.attr == "record":
            receiver = func.value
            tail = (
                receiver.id
                if isinstance(receiver, ast.Name)
                else receiver.attr if isinstance(receiver, ast.Attribute) else ""
            )
            if "journal" in tail.lower():
                return "a journal .record() sink"
    return None


class SecretExposureChecker(Checker):
    """CRY01: key material out of logs; no constant IVs; no ECB shapes.

    This is the *syntactic* rule: it only sees key material named at the
    sink itself.  When the project-wide CRY02 taint rule runs it covers the
    same direct flows plus everything reached through assignments and
    one-hop calls, so CRY01 acts as the fallback for single-file analysis
    (``analyze_source``) and keeps sole ownership of the cipher-shape
    checks (constant IV / ECB).
    """

    rule = "CRY01"
    description = (
        "key/secret-named values must not reach journals, logs, f-strings or "
        "repr; ciphers must not use constant IVs or ECB-shaped calls"
    )
    severity = SEVERITY_ERROR
    default_hint = "log a fingerprint (digest) or the key's metadata, never the key"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.JoinedStr):
                yield from self._check_fstring(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    # -- key material reaching observable output ---------------------------------

    def _check_fstring(self, ctx: FileContext, node: ast.JoinedStr) -> Iterator[Finding]:
        for value in node.values:
            if not isinstance(value, ast.FormattedValue):
                continue
            name = _secret_expr_name(value.value)
            if name is not None:
                yield ctx.finding(
                    self, value, f"key material {name!r} interpolated into an f-string"
                )

    def _check_call(self, ctx: FileContext, call: ast.Call) -> Iterator[Finding]:
        func = call.func
        # repr(secret) / str(secret)
        if isinstance(func, ast.Name) and func.id in {"repr", "str"} and call.args:
            name = _secret_expr_name(call.args[0])
            if name is not None:
                yield ctx.finding(
                    self, call, f"{func.id}() of key material {name!r}"
                )
        sink_label = observable_sink_label(func)
        if sink_label is not None:
            for arg in [*call.args, *(kw.value for kw in call.keywords)]:
                name = _secret_expr_name(arg)
                if name is not None:
                    yield ctx.finding(
                        self,
                        call,
                        f"key material {name!r} passed to {sink_label}",
                    )
        yield from self._check_cipher_shape(ctx, call)

    # -- degenerate cipher modes --------------------------------------------------

    def _check_cipher_shape(self, ctx: FileContext, call: ast.Call) -> Iterator[Finding]:
        for keyword in call.keywords:
            if (
                keyword.arg == "iv"
                and isinstance(keyword.value, ast.Constant)
                and isinstance(keyword.value.value, (bytes, str))
            ):
                yield ctx.finding(
                    self,
                    call,
                    "constant IV: equal plaintexts will encrypt identically",
                    hint="draw a fresh IV from the stream RNG per message",
                )
        func = call.func
        callee = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else ""
        )
        if "ecb" in callee.lower():
            yield ctx.finding(
                self,
                call,
                f"ECB-mode call {callee}(): block patterns leak through",
                hint="use the CBC helpers in repro.crypto.aes",
            )
        elif callee in {"encrypt_block", "decrypt_block"} and not ctx.is_module(
            "crypto/aes.py"
        ):
            yield ctx.finding(
                self,
                call,
                f"raw {callee}() outside the cipher core is ECB-shaped",
                hint="use aes_cbc_encrypt/aes_cbc_decrypt",
            )
