"""CRY01 — crypto hygiene.

Two failure families the paper's security sections (4-5) make fatal:

* **Key material in observable output.**  Trace keys and private keys must
  never reach the journal, a log line, an f-string message or ``repr`` —
  any of those ends up in exported snapshots that untrusted trackers read.
* **Degenerate cipher modes.**  A constant IV (or raw per-block encryption,
  i.e. ECB) makes equal heartbeat plaintexts produce equal ciphertexts,
  which is exactly the traffic-analysis leak §5.1's per-session trace keys
  exist to prevent.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.base import SEVERITY_ERROR, Checker, FileContext, Finding

#: Identifier components that mark a value as key material.
SECRET_PARTS = frozenset(
    {"key", "keys", "secret", "secrets", "private", "privkey", "passphrase", "password"}
)

#: Trailing components that mark a name as *metadata about* a key (its
#: size, count, id, ...) rather than the key itself.
METADATA_PARTS = frozenset(
    {"bits", "size", "len", "length", "count", "total", "id", "ids",
     "name", "names", "topic", "path", "hash", "digest", "fingerprint"}
)

#: Logging-shaped callable names (method attr or bare function).
LOG_CALL_NAMES = frozenset(
    {"log", "debug", "info", "warning", "error", "exception", "critical", "print"}
)

_SPLIT_RE = re.compile(r"[_\W\d]+")


def is_secret_name(identifier: str) -> bool:
    """``trace_key`` and ``private_exponent`` are secret; ``key_bits`` is not."""
    parts = [p for p in _SPLIT_RE.split(identifier.lower()) if p]
    if not parts or parts[-1] in METADATA_PARTS:
        return False
    return any(part in SECRET_PARTS for part in parts)


def _secret_expr_name(node: ast.expr) -> str | None:
    """The offending identifier if ``node`` names key material directly."""
    if isinstance(node, ast.Name) and is_secret_name(node.id):
        return node.id
    if isinstance(node, ast.Attribute) and is_secret_name(node.attr):
        return node.attr
    return None


class SecretExposureChecker(Checker):
    """CRY01: key material out of logs; no constant IVs; no ECB shapes."""

    rule = "CRY01"
    description = (
        "key/secret-named values must not reach journals, logs, f-strings or "
        "repr; ciphers must not use constant IVs or ECB-shaped calls"
    )
    severity = SEVERITY_ERROR
    default_hint = "log a fingerprint (digest) or the key's metadata, never the key"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.JoinedStr):
                yield from self._check_fstring(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    # -- key material reaching observable output ---------------------------------

    def _check_fstring(self, ctx: FileContext, node: ast.JoinedStr) -> Iterator[Finding]:
        for value in node.values:
            if not isinstance(value, ast.FormattedValue):
                continue
            name = _secret_expr_name(value.value)
            if name is not None:
                yield ctx.finding(
                    self, value, f"key material {name!r} interpolated into an f-string"
                )

    def _check_call(self, ctx: FileContext, call: ast.Call) -> Iterator[Finding]:
        func = call.func
        # repr(secret) / str(secret)
        if isinstance(func, ast.Name) and func.id in {"repr", "str"} and call.args:
            name = _secret_expr_name(call.args[0])
            if name is not None:
                yield ctx.finding(
                    self, call, f"{func.id}() of key material {name!r}"
                )
        if self._is_observable_sink(ctx, func):
            for arg in [*call.args, *(kw.value for kw in call.keywords)]:
                name = _secret_expr_name(arg)
                if name is not None:
                    yield ctx.finding(
                        self,
                        call,
                        f"key material {name!r} passed to "
                        f"{self._sink_label(func)}",
                    )
        yield from self._check_cipher_shape(ctx, call)

    @staticmethod
    def _is_observable_sink(ctx: FileContext, func: ast.expr) -> bool:
        if isinstance(func, ast.Name):
            return func.id in LOG_CALL_NAMES
        if isinstance(func, ast.Attribute):
            if func.attr in LOG_CALL_NAMES:
                return True
            if func.attr == "record":
                # journal.record(...) / self.journal.record(...)
                receiver = func.value
                tail = (
                    receiver.id
                    if isinstance(receiver, ast.Name)
                    else receiver.attr if isinstance(receiver, ast.Attribute) else ""
                )
                return "journal" in tail.lower()
        return False

    @staticmethod
    def _sink_label(func: ast.expr) -> str:
        if isinstance(func, ast.Attribute):
            return f"a .{func.attr}() sink"
        if isinstance(func, ast.Name):
            return f"{func.id}()"
        return "an observable sink"

    # -- degenerate cipher modes --------------------------------------------------

    def _check_cipher_shape(self, ctx: FileContext, call: ast.Call) -> Iterator[Finding]:
        for keyword in call.keywords:
            if (
                keyword.arg == "iv"
                and isinstance(keyword.value, ast.Constant)
                and isinstance(keyword.value.value, (bytes, str))
            ):
                yield ctx.finding(
                    self,
                    call,
                    "constant IV: equal plaintexts will encrypt identically",
                    hint="draw a fresh IV from the stream RNG per message",
                )
        func = call.func
        callee = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else ""
        )
        if "ecb" in callee.lower():
            yield ctx.finding(
                self,
                call,
                f"ECB-mode call {callee}(): block patterns leak through",
                hint="use the CBC helpers in repro.crypto.aes",
            )
        elif callee in {"encrypt_block", "decrypt_block"} and not ctx.is_module(
            "crypto/aes.py"
        ):
            yield ctx.finding(
                self,
                call,
                f"raw {callee}() outside the cipher core is ECB-shaped",
                hint="use aes_cbc_encrypt/aes_cbc_decrypt",
            )
