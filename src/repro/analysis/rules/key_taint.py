"""CRY02 — flow-sensitive key-material taint tracking.

CRY01 only fires when key material is *named* at the sink; a key flowing
through an intermediate variable (``k = self.trace_key; journal.record(
key=k)``) or a helper function one module away is invisible to it.  CRY02
runs the :mod:`repro.analysis.dataflow` engine over the whole
:class:`~repro.analysis.project.ProjectIndex`:

* **Sources** — secret-named names/attributes (CRY01's heuristic), key
  constructors (``SymmetricKey``/``KeyPair``/``generate_*key*`` and their
  ``from_dict``), and functions whose one-hop summary says they return key
  material.
* **Sanitizers** — digests, fingerprints, hybrid sealing
  (:func:`~repro.crypto.signing.seal_for`), signing, encryption: once key
  material has been hashed or encrypted its rendering is safe to observe.
* **Sinks** — everything CRY01 polices (journal ``.record``, logging
  calls, f-strings, ``repr``/``str``) plus the wire-shaped exits: message
  bodies handed to ``publish``/``send`` calls, ``wire_dict``/codec
  ``encode`` arguments, and instrument names.

Findings report the taint label (the source-side name) so a reviewer can
trace the flow without re-running the engine.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator

from repro.analysis.base import SEVERITY_ERROR, Finding
from repro.analysis.dataflow import (
    FunctionSummary,
    SummaryTable,
    TaintSpec,
    TaintTracker,
    tainted_labels,
)
from repro.analysis.project import (
    ModuleInfo,
    ProjectChecker,
    ProjectIndex,
    call_param_pairs,
    enclosing_class_map,
)
from repro.analysis.rules.crypto_hygiene import (
    _secret_expr_name,
    access_chain,
    is_metadata_name,
    observable_sink_label,
)

#: Callable name fragments that construct or deserialize key material.
KEY_CONSTRUCTOR_NAMES = frozenset({"SymmetricKey", "KeyPair", "TraceKey"})

#: Callee final names that neutralize taint: hash/fingerprint the key,
#: seal or sign it (output is ciphertext/signature, not the key), or
#: reduce it to a size/boolean.
SANITIZER_NAMES = frozenset(
    {
        "fingerprint",
        "digest",
        "sha1_digest",
        "sha256_digest",
        "hmac_sha1",
        "sha1",
        "sha256",
        "hash",
        "seal_for",
        "open_sealed",
        "wrap_trace_body",
        "unwrap_trace_body",
        "sign_payload",
        "verify_payload",
        "encrypt",
        "decrypt",
        "aes_cbc_encrypt",
        "aes_cbc_decrypt",
        "len",
        "bool",
        "type",
        "isinstance",
        "id",
        "count",
    }
)

#: Call attr names that put their payload argument on the wire.
WIRE_SINK_NAMES = frozenset(
    {"publish", "publish_from_broker", "send", "broadcast", "encode", "encode_into"}
)


def _source_call(origin: str | None, node: ast.Call) -> str | None:
    callee = origin.rsplit(".", 1)[-1] if origin else ""
    if callee in KEY_CONSTRUCTOR_NAMES:
        return callee
    # SymmetricKey.from_dict / KeyPair.generate style classmethods.
    if origin and "." in origin:
        head = origin.rsplit(".", 2)[-2]
        if head in KEY_CONSTRUCTOR_NAMES:
            return head
    if callee.startswith("generate_") and "key" in callee:
        return callee
    return None


def _source_expr(node: ast.expr) -> str | None:
    # A *bare* name ``key``/``keys`` (possibly sliced, ``key[:8]``) is
    # overwhelmingly a mapping key, a ``sorted(..., key=...)`` callable, or
    # a cache key — not key material.  Real key material either has a
    # qualifying part (``trace_key``, ``session.keys.private``) or enters
    # through a constructor source.
    chain = access_chain(node)
    if chain in (["key"], ["keys"]):
        return None
    return _secret_expr_name(node)


def _sanitizer(origin: str | None, node: ast.Call) -> bool:
    # Token minting signs with the private key but *returns* only public
    # material — tokens are designed to ride the wire (section 4.3).
    if origin is not None and origin.endswith("AuthorizationToken.create"):
        return True
    callee = origin.rsplit(".", 1)[-1] if origin else ""
    if not callee and isinstance(node.func, ast.Attribute):
        callee = node.func.attr
    return callee in SANITIZER_NAMES


def _propagate_access(part: str, label: str) -> str | None:
    """Key metadata read off a tainted object is clean; the rest is not."""
    return None if is_metadata_name(part) or not part.isidentifier() else label


def make_key_taint_spec() -> TaintSpec:
    """The CRY02 taint vocabulary (exported for the fixture tests)."""
    return TaintSpec(
        source_call=_source_call,
        source_expr=_source_expr,
        sanitizer=_sanitizer,
        propagate_access=_propagate_access,
        propagate_call_args=True,
    )


def _sink_of_call(call: ast.Call) -> str | None:
    """Sink label for a call node, or None if it is not a sink."""
    func = call.func
    label = observable_sink_label(func)
    if label is not None:
        return label
    if isinstance(func, ast.Name) and func.id in {"repr", "str", "format"}:
        return f"{func.id}()"
    if isinstance(func, ast.Attribute) and func.attr in WIRE_SINK_NAMES:
        return f"a .{func.attr}() wire sink"
    return None


def _probe(tracker: TaintTracker, node: ast.AST) -> str | None:
    """Sink-probe shared by the summary pass and the main pass."""
    if isinstance(node, ast.JoinedStr):
        return "an f-string"
    if isinstance(node, ast.Call):
        return _sink_of_call(node)
    return None


class KeyMaterialFlowChecker(ProjectChecker):
    """CRY02: no key material reaches observable or wire sinks, even via
    intermediate variables or one function call of indirection."""

    rule = "CRY02"
    description = (
        "taint tracking from key-material sources (key constructors, "
        "secret-named attributes) to observable/wire sinks, through "
        "assignments and one call-graph hop"
    )
    severity = SEVERITY_ERROR
    default_hint = (
        "pass a digest/fingerprint instead, or seal the payload "
        "(repro.crypto.signing.seal_for) before it leaves the process"
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        spec = make_key_taint_spec()
        summaries = SummaryTable(index, spec, sink_probe=_probe)
        for info, qualname, fn in index.iter_functions():
            yield from self._check_function(index, summaries, spec, info, qualname, fn)

    def _check_function(
        self,
        index: ProjectIndex,
        summaries: SummaryTable,
        spec: TaintSpec,
        info: ModuleInfo,
        qualname: str,
        fn,
    ) -> Iterator[Finding]:
        current_class = enclosing_class_map(info).get(qualname)

        def resolve(call: ast.Call) -> FunctionSummary | None:
            return summaries.lookup(info, call, current_class)

        tracker = TaintTracker(info.ctx, spec, resolve_summary=resolve)
        found: list[Finding] = []
        seen: set[tuple[int, str]] = set()

        def visitor(
            node: ast.AST, taint_of: Callable[[ast.expr], str | None]
        ) -> None:
            sink = _probe(tracker, node)
            if sink is not None:
                for label in tainted_labels(node, taint_of):
                    self._report(info, node, sink, label, found, seen)
            if isinstance(node, ast.Call):
                self._check_callee_sink_params(
                    index, info, current_class, node, resolve, taint_of, found, seen
                )

        tracker.run(fn, visitor)
        yield from found

    def _report(
        self,
        info: ModuleInfo,
        node: ast.AST,
        sink: str,
        label: str,
        found: list[Finding],
        seen: set[tuple[int, str]],
    ) -> None:
        # Direct secret-at-sink flows are CRY01's findings; CRY02 reports
        # them too (it subsumes CRY01 in project runs — the runner dedups).
        message = f"key material from {label!r} flows into {sink}"
        key = (getattr(node, "lineno", 1), message)
        if key in seen:
            return
        seen.add(key)
        found.append(self.project_finding(info, node, message))

    def _check_callee_sink_params(
        self,
        index: ProjectIndex,
        info: ModuleInfo,
        current_class: str | None,
        call: ast.Call,
        resolve: Callable[[ast.Call], FunctionSummary | None],
        taint_of: Callable[[ast.expr], str | None],
        found: list[Finding],
        seen: set[tuple[int, str]],
    ) -> None:
        """One-hop outward flow: a tainted argument to a function whose
        summary says that parameter reaches a sink inside the callee."""
        summary = resolve(call)
        if summary is None or not summary.sink_params:
            return
        for param_name, arg in call_param_pairs(index, info, call, current_class):
            if param_name not in summary.sink_params:
                continue
            label = taint_of(arg)
            if label is None:
                continue
            sink = summary.sink_params[param_name]
            message = (
                f"key material from {label!r} flows through parameter "
                f"{param_name!r} of this call into {sink} inside the callee"
            )
            key = (call.lineno, message)
            if key not in seen:
                seen.add(key)
                found.append(self.project_finding(info, call, message))
