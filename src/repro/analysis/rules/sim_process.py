"""SIM01 — simulation processes must not block.

Engine processes are generator functions whose only legitimate waits are
``yield``-ed simulation events.  A ``time.sleep`` or socket call inside
one stalls the single-threaded event loop for *wall* time without moving
*virtual* time, silently corrupting every latency measurement in flight.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import SEVERITY_ERROR, Checker, FileContext, Finding

#: ``open()`` mode characters that imply mutation of the host filesystem.
_WRITE_MODE_CHARS = frozenset("wax+")


def _is_generator(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True if ``func`` itself yields (nested defs don't count)."""
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom))
        for node in _walk_same_scope(func)
    )


def _walk_same_scope(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested functions."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class BlockingSimProcessChecker(Checker):
    """SIM01: no blocking stdlib I/O inside simulation process generators."""

    rule = "SIM01"
    description = (
        "generator functions registered with the engine must only wait via "
        "yield-ed events; blocking I/O stalls the event loop in wall time"
    )
    severity = SEVERITY_ERROR
    default_hint = "yield sim.timeout(...) for delays; move real I/O outside the process"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package_dir(
            "sim", "messaging", "tracing", "tdn", "security", "baselines"
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_generator(node):
                continue
            for inner in _walk_same_scope(node):
                if isinstance(inner, ast.Call):
                    yield from self._check_call(ctx, node.name, inner)

    def _check_call(
        self, ctx: FileContext, process_name: str, call: ast.Call
    ) -> Iterator[Finding]:
        origin = ctx.resolve(call.func)
        if origin is None:
            return
        if origin == "time.sleep":
            yield ctx.finding(
                self,
                call,
                f"time.sleep() inside sim process {process_name!r} blocks the event loop",
            )
        elif origin == "socket" or origin.startswith("socket."):
            yield ctx.finding(
                self,
                call,
                f"socket call {origin}() inside sim process {process_name!r}",
                hint="simulated transports live in repro.transport; use a Link",
            )
        elif origin == "open" and self._opens_for_write(call):
            yield ctx.finding(
                self,
                call,
                f"open() for writing inside sim process {process_name!r}",
                hint="record results via the monitor/journal and write after sim.run()",
            )

    @staticmethod
    def _opens_for_write(call: ast.Call) -> bool:
        mode: ast.expr | None = None
        if len(call.args) >= 2:
            mode = call.args[1]
        for keyword in call.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if mode is None:
            return False  # default "r": a read, not a mutation
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return bool(_WRITE_MODE_CHARS & set(mode.value))
        return True  # dynamic mode: assume the worst
