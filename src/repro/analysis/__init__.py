"""``repro.analysis`` — AST-based domain linter for the reproduction's contracts.

The simulation's headline property (bit-identical reruns of the paper's
Table 1-3 experiments from one master seed) rests on conventions that no
unit test can see: randomness must flow through
:class:`~repro.sim.random.RandomStreams`, time through the virtual clock,
instruments through the ``<family>.<noun>.<detail>`` naming scheme, and
errors through the :class:`~repro.errors.ReproError` taxonomy.  This
package machine-checks those conventions.

Rules
-----

======  ======================================================================
DET01   No wall-clock reads or global ``random`` use outside the designated
        modules — simulation code draws from ``RandomStreams`` / the clock.
DET02   No iteration over sets in scheduling/routing code (ordering hazard).
DET03   *(project)* No wall-clock/global-RNG value may *flow* into message
        ids, seeds, or encoded wire frames (taint tracking, one call hop).
SIM01   Simulation process generators must not call blocking stdlib I/O.
CRY01   Key material must not reach journals, logs, f-strings, or ``repr``;
        no constant IVs or ECB-shaped block encryption.
CRY02   *(project)* Key-material taint tracking: no key reaches observable
        or wire sinks through assignments or one call-graph hop.
OBS01   Instrument name literals must match ``<family>.<noun>[.<detail>]``
        against the documented family list (docs/OBSERVABILITY.md).
OBS02   *(project)* Every registered instrument is documented in
        docs/OBSERVABILITY.md.
WIRE01  *(project)* Message-kind and wire-field vocabularies must agree
        across producers, handlers, and the codecs.
ERR01   No ``raise`` of builtin exception types where a ``ReproError``
        subclass exists (see ``repro.errors``).
======  ======================================================================

*(project)* rules run over a whole-tree :class:`~repro.analysis.project.
ProjectIndex` (module table, import resolution, call graph) and are inert
in single-file ``analyze_source`` mode.

Suppress a finding on one line with ``# repro: noqa[RULE]`` (or a bare
``# repro: noqa`` to silence every rule on that line); baseline a set of
accepted findings with ``repro analyze --baseline analysis_baseline.json``
(see :mod:`repro.analysis.baseline`).  See ``docs/ANALYSIS.md`` for the
full rule catalogue with examples.
"""

from repro.analysis.base import (  # noqa: F401
    Checker,
    FileContext,
    Finding,
    Severity,
    analyze_source,
)
from repro.analysis.baseline import (  # noqa: F401
    compare_to_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.project import (  # noqa: F401
    ProjectChecker,
    ProjectIndex,
)
from repro.analysis.runner import (  # noqa: F401
    all_rule_ids,
    analyze_paths,
    format_findings_json,
    format_findings_text,
    record_stats,
)
from repro.analysis.sarif import format_sarif, to_sarif  # noqa: F401
