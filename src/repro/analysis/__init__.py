"""``repro.analysis`` — AST-based domain linter for the reproduction's contracts.

The simulation's headline property (bit-identical reruns of the paper's
Table 1-3 experiments from one master seed) rests on conventions that no
unit test can see: randomness must flow through
:class:`~repro.sim.random.RandomStreams`, time through the virtual clock,
instruments through the ``<family>.<noun>.<detail>`` naming scheme, and
errors through the :class:`~repro.errors.ReproError` taxonomy.  This
package machine-checks those conventions.

Rules
-----

======  ======================================================================
DET01   No wall-clock reads or global ``random`` use outside the designated
        modules — simulation code draws from ``RandomStreams`` / the clock.
DET02   No iteration over sets in scheduling/routing code (ordering hazard).
SIM01   Simulation process generators must not call blocking stdlib I/O.
CRY01   Key material must not reach journals, logs, f-strings, or ``repr``;
        no constant IVs or ECB-shaped block encryption.
OBS01   Instrument name literals must match ``<family>.<noun>[.<detail>]``
        against the documented family list (docs/OBSERVABILITY.md).
ERR01   No ``raise`` of builtin exception types where a ``ReproError``
        subclass exists (see ``repro.errors``).
======  ======================================================================

Suppress a finding on one line with ``# repro: noqa[RULE]`` (or a bare
``# repro: noqa`` to silence every rule on that line).  See
``docs/ANALYSIS.md`` for the full rule catalogue with examples.
"""

from repro.analysis.base import (  # noqa: F401
    Checker,
    FileContext,
    Finding,
    Severity,
    analyze_source,
)
from repro.analysis.runner import (  # noqa: F401
    all_rule_ids,
    analyze_paths,
    format_findings_json,
    format_findings_text,
    record_stats,
)
