"""Project-wide indexing: modules, symbol tables, and the call graph.

The per-file :class:`~repro.analysis.base.Checker` framework sees one AST
at a time, which is exactly as far as a *syntactic* rule can reach.  The
flow-sensitive rule families (CRY02 key-material taint, WIRE01 wire-schema
drift, DET03 determinism flow) need to answer cross-module questions —
"does this function return key material?", "is this message kind handled
anywhere?" — so this module builds a :class:`ProjectIndex` over every file
in one analysis run: dotted module names, a per-module function/method
table, and import-aware call resolution.

Rules that need the index subclass :class:`ProjectChecker` and implement
:meth:`ProjectChecker.check_project`; the runner invokes them once per run
with the shared index instead of once per file.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.analysis.base import Checker, FileContext, Finding

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


class ModuleInfo:
    """One indexed source file: its dotted name, context, and symbols."""

    def __init__(self, name: str, ctx: FileContext) -> None:
        self.name = name
        self.ctx = ctx
        #: ``"fn"`` or ``"Class.method"`` -> def node.
        self.functions: dict[str, FunctionNode] = {}
        #: Module-level ``NAME = "literal"`` string constants.
        self.constants: dict[str, str] = {}
        self._collect()

    @property
    def path(self) -> str:
        return self.ctx.path

    def _collect(self) -> None:
        for node in self.ctx.tree.body:
            if isinstance(node, FunctionNode):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, FunctionNode):
                        self.functions[f"{node.name}.{item.name}"] = item
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                self.constants[node.targets[0].id] = node.value.value

    def classes(self) -> Iterator[ast.ClassDef]:
        for node in self.ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                yield node


def module_name_for(path: str | Path) -> str:
    """Dotted module name for ``path``, walking up through ``__init__.py``.

    ``src/repro/tracing/entity.py`` becomes ``repro.tracing.entity`` because
    every directory from ``repro`` down carries an ``__init__.py``; a file
    outside any package is just its stem.  This matches how the analyzed
    code itself imports, so :class:`FileContext` import origins line up with
    index keys.
    """
    path = Path(path)
    parts = [path.stem] if path.stem != "__init__" else []
    current = path.parent
    while (current / "__init__.py").exists():
        parts.insert(0, current.name)
        parent = current.parent
        if parent == current:  # pragma: no cover - filesystem root
            break
        current = parent
    return ".".join(parts) if parts else path.stem


class ProjectIndex:
    """Every module in one analysis run, addressable by name and path."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self._by_path: dict[str, ModuleInfo] = {}

    def add(self, ctx: FileContext, name: str | None = None) -> ModuleInfo:
        """Index one parsed file (name derived from the path by default)."""
        info = ModuleInfo(name if name is not None else module_name_for(ctx.path), ctx)
        # Last add wins on name collisions (two roots shipping an ``x.py``);
        # path lookup stays exact either way.
        self.modules[info.name] = info
        self._by_path[info.ctx.path] = info
        return info

    def by_path(self, path: str) -> ModuleInfo | None:
        return self._by_path.get(PathStrCache.posix(path))

    def find_module(self, *suffixes: str) -> ModuleInfo | None:
        """First module whose posix path ends with any of ``suffixes``."""
        for suffix in suffixes:
            for info in self.iter_modules():
                if info.path.endswith(suffix):
                    return info
        return None

    def iter_modules(self) -> Iterator[ModuleInfo]:
        """Modules in deterministic (path-sorted) order."""
        return iter(sorted(self.modules.values(), key=lambda m: m.path))

    def iter_functions(self) -> Iterator[tuple[ModuleInfo, str, FunctionNode]]:
        """Every function/method as ``(module, qualname, node)``."""
        for info in self.iter_modules():
            for qualname in sorted(info.functions):
                yield info, qualname, info.functions[qualname]

    # -- call resolution -------------------------------------------------------

    def resolve_call(
        self,
        module: ModuleInfo,
        call: ast.Call,
        current_class: str | None = None,
    ) -> tuple[ModuleInfo, str] | None:
        """Resolve ``call`` to an indexed ``(module, qualname)`` if possible.

        Handles three shapes: bare names defined in the same module,
        ``self.method(...)`` within ``current_class``, and imported
        functions whose dotted origin (via the file's import table) prefixes
        an indexed module name.
        """
        origin = module.ctx.resolve(call.func)
        if origin is None:
            return None
        if origin.startswith("self."):
            if current_class is None:
                return None
            qualname = f"{current_class}.{origin[len('self.'):]}"
            return (module, qualname) if qualname in module.functions else None
        if "." not in origin:
            return (module, origin) if origin in module.functions else None
        # Imported: longest indexed-module prefix wins, remainder is the
        # qualname ("pkg.mod.Class.method" or "pkg.mod.fn").
        head, _, tail = origin.rpartition(".")
        while head:
            target = self.modules.get(head)
            if target is not None and tail in target.functions:
                return target, tail
            head, _, rest = head.rpartition(".")
            tail = f"{rest}.{tail}"
        return None

    def resolve_constant(self, module: ModuleInfo, node: ast.expr) -> str | None:
        """Constant string behind ``node``: literal, local, or imported name."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            if node.id in module.constants:
                return module.constants[node.id]
            origin = module.ctx.imports.get(node.id)
            if origin and "." in origin:
                source, _, name = origin.rpartition(".")
                target = self.modules.get(source)
                if target is not None:
                    return target.constants.get(name)
        return None


class PathStrCache:
    """Tiny helper namespace so path normalization stays in one place."""

    @staticmethod
    def posix(path: str) -> str:
        return Path(path).as_posix()


def call_param_pairs(
    index: ProjectIndex,
    module: ModuleInfo,
    call: ast.Call,
    current_class: str | None = None,
) -> list[tuple[str, ast.expr]]:
    """``(param_name, argument)`` pairs for a call resolved in ``index``.

    Keywords map exactly; positional arguments map by order against the
    callee's positional parameters (``self``/``cls`` skipped).  Calls that
    do not resolve to an indexed function contribute keyword pairs only.
    """
    pairs: list[tuple[str, ast.expr]] = [
        (kw.arg, kw.value) for kw in call.keywords if kw.arg is not None
    ]
    resolved = index.resolve_call(module, call, current_class)
    if resolved is None:
        return pairs
    target, qualname = resolved
    fn = target.functions[qualname]
    params = [
        arg.arg
        for arg in [*fn.args.posonlyargs, *fn.args.args]
        if arg.arg not in ("self", "cls")
    ]
    pairs.extend(zip(params, call.args))
    return pairs


def enclosing_class_map(info: ModuleInfo) -> dict[str, str | None]:
    """Qualname -> owning class name (``None`` for module-level functions)."""
    owners: dict[str, str | None] = {}
    for qualname in info.functions:
        cls, _, _method = qualname.rpartition(".")
        owners[qualname] = cls or None
    return owners


class ProjectChecker(Checker):
    """A rule that runs once over the whole :class:`ProjectIndex`.

    File-mode :meth:`check` is a deliberate no-op so project rules can sit
    in the same catalogue as per-file rules; ``analyze_source`` (the
    single-blob fixture entry point) simply skips them.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        raise NotImplementedError  # abstract method

    # -- shared finding construction -------------------------------------------

    def project_finding(
        self,
        module: ModuleInfo,
        node: ast.AST,
        message: str,
        hint: str = "",
        severity: str | None = None,
    ) -> Finding:
        finding = module.ctx.finding(self, node, message, hint)
        if severity is not None and severity != finding.severity:
            finding = Finding(**{**finding.to_dict(), "severity": severity})
        return finding


def run_project_checkers(
    index: ProjectIndex, checkers: list[ProjectChecker]
) -> list[Finding]:
    """All unsuppressed project-rule findings over ``index``, sorted."""
    findings: list[Finding] = []
    for checker in checkers:
        for finding in checker.check_project(index):
            module = index.by_path(finding.path)
            if module is not None and module.ctx.suppressed(finding.rule, finding.line):
                continue
            findings.append(finding)
    return sorted(findings, key=Finding.sort_key)
