"""Intraprocedural taint tracking with one-hop call-graph propagation.

The engine is deliberately small: a forward, statement-ordered pass over
one function body, with an environment mapping local names to taint
labels.  What counts as a *source*, a *sanitizer*, or how taint survives
attribute/subscript access is injected through a :class:`TaintSpec`, so
the same machinery drives CRY02 (key material) and DET03 (wall-clock /
global-RNG values) with different vocabularies.

Cross-function reach is one hop, via :class:`FunctionSummary`:

* ``returns_taint`` — the function's return value carries taint even with
  untainted arguments (``def issue_trace_key(): return KeyPair(...)``).
* ``sink_params`` — parameters that flow into one of the rule's sinks
  inside the body (``def dump(k): journal.record(key=k)``), so a tainted
  argument at a call site is a finding *at the call site*.

Summaries are computed without consulting other summaries, which keeps
the whole analysis a two-pass affair with no fixpoint iteration — exactly
the "one-hop propagation through the call graph" contract CRY02/DET03
document.  Loop bodies are traversed twice so loop-carried assignments
converge for this depth.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.analysis.base import FileContext
from repro.analysis.project import FunctionNode, ModuleInfo, ProjectIndex

#: ``taint_of`` result: a short human-readable label naming the source
#: ("trace_key", "time.time", ...), or ``None`` for clean values.
TaintLabel = str


@dataclass(frozen=True)
class TaintSpec:
    """Rule-specific taint vocabulary injected into the engine."""

    #: Label for a call that *introduces* taint (key constructor, clock
    #: read), given its resolved dotted origin (may be ``None``).
    source_call: Callable[[str | None, ast.Call], TaintLabel | None]
    #: Label for a non-call expression that is a source by itself
    #: (e.g. a secret-named name or attribute).
    source_expr: Callable[[ast.expr], TaintLabel | None]
    #: True if a call *removes* taint (digest, fingerprint, seal, len...).
    sanitizer: Callable[[str | None, ast.Call], bool]
    #: Taint surviving ``base.attr`` / ``base["key"]`` access on a tainted
    #: base; return ``None`` to stop propagation (key *metadata*).
    propagate_access: Callable[[str, TaintLabel], TaintLabel | None] = (
        lambda part, label: label
    )
    #: Whether an unrecognized call with a tainted argument returns taint
    #: (``int(time.time())`` must; rules opt in).
    propagate_call_args: bool = True


@dataclass
class FunctionSummary:
    """One-hop interface of a function, as seen from its call sites."""

    returns_taint: TaintLabel | None = None
    #: Parameter name -> description of the sink it reaches.
    sink_params: dict[str, str] = field(default_factory=dict)


#: Callback receiving ``(node, taint_of)`` for every Call and JoinedStr
#: encountered in statement order; ``taint_of`` evaluates any expression
#: against the environment at that point.
SinkVisitor = Callable[[ast.AST, Callable[[ast.expr], TaintLabel | None]], None]


class TaintTracker:
    """Forward taint pass over one function body."""

    def __init__(
        self,
        ctx: FileContext,
        spec: TaintSpec,
        resolve_summary: Callable[[ast.Call], FunctionSummary | None] | None = None,
        param_taints: dict[str, TaintLabel] | None = None,
    ) -> None:
        self.ctx = ctx
        self.spec = spec
        self.resolve_summary = resolve_summary
        self.env: dict[str, TaintLabel] = dict(param_taints or {})

    # -- expression taint ------------------------------------------------------

    def taint_of(self, node: ast.expr) -> TaintLabel | None:
        spec = self.spec
        if isinstance(node, ast.Name):
            return self.env.get(node.id) or spec.source_expr(node)
        if isinstance(node, ast.Attribute):
            direct = spec.source_expr(node)
            if direct is not None:
                return direct
            base = self.taint_of(node.value)
            if base is not None:
                return spec.propagate_access(node.attr, base)
            return None
        if isinstance(node, ast.Subscript):
            direct = spec.source_expr(node)
            if direct is not None:
                return direct
            base = self.taint_of(node.value)
            if base is None:
                return None
            key = node.slice
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                return spec.propagate_access(key.value, base)
            return base
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        if isinstance(node, ast.JoinedStr):
            # An f-string *containing* tainted text is tainted text.
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    label = self.taint_of(value.value)
                    if label is not None:
                        return label
            return None
        if isinstance(node, (ast.BinOp, ast.BoolOp)):
            operands = (
                [node.left, node.right] if isinstance(node, ast.BinOp) else node.values
            )
            for operand in operands:
                label = self.taint_of(operand)
                if label is not None:
                    return label
            return None
        if isinstance(node, ast.UnaryOp):
            return self.taint_of(node.operand)
        if isinstance(node, ast.IfExp):
            return self.taint_of(node.body) or self.taint_of(node.orelse)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            for element in node.elts:
                label = self.taint_of(element)
                if label is not None:
                    return label
            return None
        if isinstance(node, ast.Dict):
            for value in node.values:
                if value is not None:
                    label = self.taint_of(value)
                    if label is not None:
                        return label
            return None
        if isinstance(node, ast.Starred):
            return self.taint_of(node.value)
        if isinstance(node, ast.Await):
            return self.taint_of(node.value)
        if isinstance(node, ast.NamedExpr):
            label = self.taint_of(node.value)
            self._assign_name(node.target, label)
            return label
        # Compare/Lambda/comprehensions/constants: boolean or fresh values.
        return None

    def _call_taint(self, node: ast.Call) -> TaintLabel | None:
        spec = self.spec
        origin = self.ctx.resolve(node.func)
        if spec.sanitizer(origin, node):
            return None
        label = spec.source_call(origin, node)
        if label is not None:
            return label
        if self.resolve_summary is not None:
            summary = self.resolve_summary(node)
            if summary is not None and summary.returns_taint is not None:
                return summary.returns_taint
        # Method call on a tainted object keeps the taint unless the
        # method name itself sanitizes (handled above via `sanitizer`).
        if isinstance(node.func, ast.Attribute):
            base = self.taint_of(node.func.value)
            if base is not None:
                propagated = spec.propagate_access(node.func.attr, base)
                if propagated is not None:
                    return propagated
        if spec.propagate_call_args:
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                label = self.taint_of(arg)
                if label is not None:
                    return label
        return None

    # -- environment updates ---------------------------------------------------

    def _assign_name(self, target: ast.expr, label: TaintLabel | None) -> None:
        if isinstance(target, ast.Name):
            if label is None:
                self.env.pop(target.id, None)
            else:
                self.env[target.id] = label
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                inner = element.value if isinstance(element, ast.Starred) else element
                self._assign_name(inner, label)
        # Attribute / Subscript targets: the spec's source_expr already
        # decides whether such locations are sources when read back.

    def _handle_assign(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            value_taints: TaintLabel | None = self.taint_of(node.value)
            for target in node.targets:
                if (
                    isinstance(target, (ast.Tuple, ast.List))
                    and isinstance(node.value, (ast.Tuple, ast.List))
                    and len(target.elts) == len(node.value.elts)
                    and not any(isinstance(e, ast.Starred) for e in target.elts)
                ):
                    for element, value in zip(
                        target.elts, node.value.elts, strict=True
                    ):
                        self._assign_name(element, self.taint_of(value))
                else:
                    self._assign_name(target, value_taints)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._assign_name(node.target, self.taint_of(node.value))
        elif isinstance(node, ast.AugAssign):
            label = self.taint_of(node.value)
            if label is not None:
                self._assign_name(node.target, label)

    # -- statement walk --------------------------------------------------------

    def run(self, fn: FunctionNode, visitor: SinkVisitor | None = None) -> None:
        """Walk ``fn``'s body in order, updating taint and firing sinks."""
        self._walk_block(fn.body, visitor)

    def _walk_block(self, body: list[ast.stmt], visitor: SinkVisitor | None) -> None:
        for stmt in body:
            self._walk_stmt(stmt, visitor)

    def _walk_stmt(self, stmt: ast.stmt, visitor: SinkVisitor | None) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions are analyzed as their own functions
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._assign_name(stmt.target, self.taint_of(stmt.iter))
        self._handle_assign(stmt)
        if visitor is not None:
            self._visit_sinks(stmt, visitor)
        nested = list(self._nested_blocks(stmt))
        # Loop bodies run twice so loop-carried taint reaches sinks on the
        # second traversal; conditional/try blocks run once.
        repeats = 2 if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)) else 1
        for _ in range(repeats):
            for block in nested:
                self._walk_block(block, visitor)

    @staticmethod
    def _nested_blocks(stmt: ast.stmt) -> Iterator[list[ast.stmt]]:
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(stmt, attr, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                yield block
        for handler in getattr(stmt, "handlers", []) or []:
            yield handler.body

    def _visit_sinks(self, stmt: ast.stmt, visitor: SinkVisitor) -> None:
        """Fire the visitor for sink-shaped nodes owned by this statement.

        Only the statement's *own* expressions are visited (a compound
        statement's header — the ``if`` test, the ``for`` iterable); nested
        statement blocks are visited when the walk reaches them, so no sink
        is reported from two nesting levels at once.
        """
        for _name, value in ast.iter_fields(stmt):
            values = value if isinstance(value, list) else [value]
            for item in values:
                if not isinstance(item, ast.expr):
                    continue
                for node in ast.walk(item):
                    if isinstance(node, (ast.Call, ast.JoinedStr)):
                        visitor(node, self.taint_of)

    # -- return taint ----------------------------------------------------------

    def returned_taint(self, fn: FunctionNode) -> TaintLabel | None:
        """Label of any tainted ``return``/``yield`` value after the walk."""
        for node in ast.walk(fn):
            if isinstance(node, ast.Return) and node.value is not None:
                label = self.taint_of(node.value)
                if label is not None:
                    return label
            elif isinstance(node, (ast.Yield, ast.YieldFrom)) and node.value is not None:
                label = self.taint_of(node.value)
                if label is not None:
                    return label
        return None


class SummaryTable:
    """One-hop :class:`FunctionSummary` per indexed function, per rule."""

    def __init__(
        self,
        index: ProjectIndex,
        spec: TaintSpec,
        sink_probe: Callable[[TaintTracker, ast.AST], str | None] | None = None,
    ) -> None:
        """``sink_probe(tracker, node)`` names the sink ``node`` feeds, if any."""
        self.index = index
        self.spec = spec
        self._summaries: dict[tuple[str, str], FunctionSummary] = {}
        self._build(sink_probe)

    def _build(
        self, sink_probe: Callable[[TaintTracker, ast.AST], str | None] | None
    ) -> None:
        for info, qualname, fn in self.index.iter_functions():
            summary = FunctionSummary()
            tracker = TaintTracker(info.ctx, self.spec)
            tracker.run(fn)
            summary.returns_taint = tracker.returned_taint(fn)
            if sink_probe is not None:
                summary.sink_params = self._probe_params(
                    info, fn, sink_probe
                )
            self._summaries[(info.name, qualname)] = summary

    def _probe_params(
        self,
        info: ModuleInfo,
        fn: FunctionNode,
        sink_probe: Callable[[TaintTracker, ast.AST], str | None],
    ) -> dict[str, str]:
        params = [
            arg.arg
            for arg in [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]
            if arg.arg not in ("self", "cls")
        ]
        if not params:
            return {}
        marker = "param:"
        tracker = TaintTracker(
            info.ctx, self.spec, param_taints={p: f"{marker}{p}" for p in params}
        )
        hits: dict[str, str] = {}

        def visitor(node: ast.AST, taint_of: Callable[[ast.expr], str | None]) -> None:
            sink = sink_probe(tracker, node)
            if sink is None:
                return
            for label in tainted_labels(node, taint_of):
                if label.startswith(marker):
                    hits.setdefault(label[len(marker):], sink)

        tracker.run(fn, visitor)
        return hits

    def lookup(
        self, module: ModuleInfo, call: ast.Call, current_class: str | None
    ) -> FunctionSummary | None:
        resolved = self.index.resolve_call(module, call, current_class)
        if resolved is None:
            return None
        target, qualname = resolved
        return self._summaries.get((target.name, qualname))


def tainted_labels(
    node: ast.AST, taint_of: Callable[[ast.expr], str | None]
) -> Iterator[str]:
    """Labels of tainted immediate operands of a sink node."""
    if isinstance(node, ast.Call):
        for arg in [*node.args, *(kw.value for kw in node.keywords)]:
            label = taint_of(arg)
            if label is not None:
                yield label
    elif isinstance(node, ast.JoinedStr):
        for value in node.values:
            if isinstance(value, ast.FormattedValue):
                label = taint_of(value.value)
                if label is not None:
                    yield label
