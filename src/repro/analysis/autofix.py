"""``--add-noqa``: mechanically baseline findings in place.

Mirrors ruff's ``--add-noqa``: for every finding, append
``# repro: noqa[RULE]`` to the offending line (merging rule ids into an
existing ``# repro: noqa[...]`` comment when one is already there).  The
intended use is adopting a new rule on a legacy codebase — run the
analyzer, let the autofix annotate every accepted finding, review the
diff, commit.  Lines carrying a *bare* ``# repro: noqa`` already suppress
everything and are left untouched.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable

from repro.analysis.base import Finding

_NOQA_EDIT_RE = re.compile(
    r"(?P<prefix>#\s*repro:\s*noqa)\[(?P<rules>[A-Za-z0-9_,\s]+)\]"
)
_BARE_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?!\[)")


def _merge_line(text: str, rules: set[str]) -> str | None:
    """``text`` with ``rules`` suppressed, or None if already covered."""
    match = _NOQA_EDIT_RE.search(text)
    if match is not None:
        existing = {r.strip().upper() for r in match.group("rules").split(",") if r.strip()}
        missing = rules - existing
        if not missing:
            return None
        merged = ",".join(sorted(existing | rules))
        return (
            text[: match.start()]
            + f"{match.group('prefix')}[{merged}]"
            + text[match.end() :]
        )
    if _BARE_NOQA_RE.search(text):
        return None  # bare noqa already silences every rule
    return f"{text.rstrip()}  # repro: noqa[{','.join(sorted(rules))}]"


def add_noqa(findings: Iterable[Finding]) -> dict[str, int]:
    """Insert suppression comments for ``findings``; returns edits per file.

    Findings are grouped by file and line so one line hit by several rules
    gets a single combined comment.  Files are rewritten in place.
    """
    by_file: dict[str, dict[int, set[str]]] = {}
    for finding in findings:
        by_file.setdefault(finding.path, {}).setdefault(finding.line, set()).add(
            finding.rule.upper()
        )

    edits: dict[str, int] = {}
    for path, per_line in sorted(by_file.items()):
        source = Path(path).read_text(encoding="utf-8")
        lines = source.splitlines()
        changed = 0
        for lineno, rules in per_line.items():
            if not 1 <= lineno <= len(lines):
                continue
            merged = _merge_line(lines[lineno - 1], rules)
            if merged is not None:
                lines[lineno - 1] = merged
                changed += 1
        if changed:
            trailer = "\n" if source.endswith("\n") else ""
            Path(path).write_text("\n".join(lines) + trailer, encoding="utf-8")
            edits[path] = changed
    return edits
