"""Checker framework: findings, per-file context, and ``# repro: noqa``.

A *checker* is a small class with a rule id that walks one file's AST and
yields :class:`Finding` records.  The framework owns everything rules
should not re-implement: parsing, import resolution (so ``from time import
monotonic as mono`` still resolves to ``time.monotonic``), line-level
suppression, and stable ordering of results.
"""

from __future__ import annotations

import ast
import re
from dataclasses import asdict, dataclass
from pathlib import PurePath
from typing import Iterable, Iterator, Sequence

from repro.errors import ConfigurationError

#: Severity levels, mirroring compiler convention.  Both fail ``repro
#: analyze``; the split exists so consumers can triage JSON output.
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
Severity = str

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")

#: Sentinel meaning "a bare ``# repro: noqa`` suppresses every rule here".
_ALL_RULES = "*"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    message: str
    hint: str = ""

    def sort_key(self) -> tuple[str, int, str]:
        return (self.path, self.line, self.rule)

    def render(self) -> str:
        text = f"{self.path}:{self.line}: {self.rule} [{self.severity}] {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict:
        return asdict(self)


class FileContext:
    """Everything a checker may ask about one source file.

    The context pre-computes the AST, a line-indexed suppression table and
    an import alias map, so individual rules stay declarative.
    """

    def __init__(self, path: str, source: str) -> None:
        self.path = PurePath(path).as_posix()
        self.source = source
        self.lines: list[str] = source.splitlines()
        self.tree = ast.parse(source, filename=self.path)
        self._noqa: dict[int, set[str]] = self._parse_noqa(self.lines)
        self.imports: dict[str, str] = self._collect_imports(self.tree)

    # -- suppression -----------------------------------------------------------

    @staticmethod
    def _parse_noqa(lines: Sequence[str]) -> dict[int, set[str]]:
        table: dict[int, set[str]] = {}
        for lineno, text in enumerate(lines, start=1):
            match = _NOQA_RE.search(text)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                table[lineno] = {_ALL_RULES}
            else:
                table[lineno] = {r.strip().upper() for r in rules.split(",") if r.strip()}
        return table

    def suppressed(self, rule: str, line: int) -> bool:
        """True if ``# repro: noqa`` on ``line`` silences ``rule``."""
        rules = self._noqa.get(line)
        return rules is not None and (_ALL_RULES in rules or rule.upper() in rules)

    # -- imports ---------------------------------------------------------------

    @staticmethod
    def _collect_imports(tree: ast.Module) -> dict[str, str]:
        aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    aliases[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        return aliases

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted origin of a name chain, following import aliases.

        ``mono`` (after ``from time import monotonic as mono``) resolves to
        ``"time.monotonic"``; ``self.rng.random`` resolves to ``None``
        because the chain is not rooted in a module-level name.
        """
        if isinstance(node, ast.Name):
            return self.imports.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            return f"{base}.{node.attr}" if base is not None else None
        return None

    # -- path scoping ----------------------------------------------------------

    def in_package_dir(self, *dirs: str) -> bool:
        """True if this file lives under ``repro/<dir>/`` for any given dir."""
        return any(f"repro/{d}/" in self.path for d in dirs)

    def is_module(self, rel: str) -> bool:
        """True if this file *is* ``repro/<rel>`` (e.g. ``sim/random.py``)."""
        return self.path.endswith(f"repro/{rel}")

    # -- finding construction --------------------------------------------------

    def finding(
        self,
        checker: "Checker",
        node: ast.AST,
        message: str,
        hint: str = "",
    ) -> Finding:
        return Finding(
            rule=checker.rule,
            severity=checker.severity,
            path=self.path,
            line=getattr(node, "lineno", 1),
            message=message,
            hint=hint or checker.default_hint,
        )


class Checker:
    """Base class for one lint rule.

    Subclasses set :attr:`rule` (the id findings and ``noqa`` comments
    use), :attr:`description`, a :attr:`severity` and optionally a
    :attr:`default_hint`, then implement :meth:`check`.
    """

    rule: str = ""
    description: str = ""
    severity: Severity = SEVERITY_ERROR
    default_hint: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError  # the one builtin ERR01 permits: abstract method

    def applies_to(self, ctx: FileContext) -> bool:
        """Rules may exempt whole files (e.g. the RandomStreams module)."""
        return True


def run_checkers(ctx: FileContext, checkers: Iterable[Checker]) -> list[Finding]:
    """All unsuppressed findings from ``checkers`` over one file, sorted."""
    findings = [
        finding
        for checker in checkers
        if checker.applies_to(ctx)
        for finding in checker.check(ctx)
        if not ctx.suppressed(finding.rule, finding.line)
    ]
    return sorted(findings, key=Finding.sort_key)


def analyze_source(
    source: str,
    path: str = "<string>",
    checkers: Iterable[Checker] | None = None,
) -> list[Finding]:
    """Analyze one in-memory source blob (the test-fixture entry point).

    ``path`` participates in rule scoping — pass a representative path such
    as ``src/repro/sim/example.py`` to exercise directory-scoped rules.
    """
    if checkers is None:
        from repro.analysis.rules import default_checkers

        checkers = default_checkers()
    try:
        ctx = FileContext(path, source)
    except SyntaxError as exc:
        raise ConfigurationError(f"cannot parse {path}: {exc}") from exc
    return run_checkers(ctx, checkers)
