"""Findings baseline: the ratchet that lets counts only go down.

A freshly adopted project-wide rule usually surfaces legacy findings that
are understood, documented, and not worth churning the code for — the
classic example here is WIRE01's ``key_distribution`` kind, which is
dispatched by *topic* rather than by ``kind`` and therefore legitimately
has no kind handler.  The baseline records those accepted findings as
per-``(rule, path)`` counts; ``repro analyze --baseline FILE`` then fails
only when a count *rises* (a new finding appeared), never when it falls.
Shrinking is rewarded: ``--update-baseline`` rewrites the file so the
freed budget cannot silently refill.

Counts — not line numbers — are the ledger currency on purpose: an
unrelated edit above a baselined finding must not break the gate.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.base import Finding
from repro.errors import ConfigurationError

BASELINE_SCHEMA_VERSION = 1

#: ``rule -> {normalized path -> accepted finding count}``.
BaselineCounts = dict[str, dict[str, int]]


def normalize_path(path: str) -> str:
    """Repo-relative form of a finding path, stable across invocations.

    The self-check test analyzes by absolute path while CI analyzes
    ``src/...`` relative — slicing from the last ``src/`` segment makes
    both spell a finding in ``src/repro/x.py`` identically.
    """
    posix = Path(path).as_posix()
    idx = posix.rfind("/src/")
    if idx >= 0:
        return posix[idx + 1 :]
    return posix.lstrip("/")


def baseline_counts(findings: Iterable[Finding]) -> BaselineCounts:
    """Current findings folded into the baseline's count shape."""
    counts: BaselineCounts = {}
    for finding in findings:
        per_rule = counts.setdefault(finding.rule, {})
        path = normalize_path(finding.path)
        per_rule[path] = per_rule.get(path, 0) + 1
    return counts


def write_baseline(findings: Iterable[Finding], path: str | Path) -> None:
    """Serialize the accepted-findings ledger (sorted, diff-friendly)."""
    payload = {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "counts": {
            rule: dict(sorted(paths.items()))
            for rule, paths in sorted(baseline_counts(findings).items())
        },
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: str | Path) -> BaselineCounts:
    """Read a baseline file, validating shape and schema version."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError as exc:
        raise ConfigurationError(f"baseline file not found: {path}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "counts" not in payload:
        raise ConfigurationError(f"baseline {path} has no 'counts' table")
    version = payload.get("schema_version")
    if version != BASELINE_SCHEMA_VERSION:
        raise ConfigurationError(
            f"baseline {path} has schema_version {version!r}; "
            f"this build reads {BASELINE_SCHEMA_VERSION}"
        )
    return {
        str(rule): {str(p): int(n) for p, n in paths.items()}
        for rule, paths in payload["counts"].items()
    }


def compare_to_baseline(
    findings: Sequence[Finding], baseline: BaselineCounts
) -> tuple[list[str], list[str]]:
    """``(regressions, improvements)`` of current findings vs the ledger.

    A regression is any ``(rule, path)`` whose count exceeds its accepted
    budget (missing entries have budget 0).  An improvement is a count
    below budget — allowed, but worth re-baselining so it stays down.
    """
    current = baseline_counts(findings)
    regressions: list[str] = []
    improvements: list[str] = []
    tracked = {
        (rule, path)
        for table in (current, baseline)
        for rule, paths in table.items()
        for path in paths
    }
    for rule, path in sorted(tracked):
        now = current.get(rule, {}).get(path, 0)
        accepted = baseline.get(rule, {}).get(path, 0)
        if now > accepted:
            regressions.append(
                f"{rule} at {path}: {now} finding(s), baseline accepts {accepted}"
            )
        elif now < accepted:
            improvements.append(
                f"{rule} at {path}: down to {now} from {accepted} — "
                "run --update-baseline to lock it in"
            )
    return regressions, improvements
