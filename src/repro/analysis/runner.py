"""Running the checkers over trees of files, and rendering the results.

Three output shapes, one per consumer: ``text`` for humans at a terminal,
``json`` (stable schema — see :func:`format_findings_json`) for CI and
tooling, and :func:`record_stats` for the metrics registry so linter
trends can be cited in snapshots like any other instrument
(``analysis.findings.<rule>``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.base import Checker, FileContext, Finding, run_checkers
from repro.analysis.project import ProjectChecker, ProjectIndex, run_project_checkers
from repro.analysis.rules import default_checkers
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry

#: Directories never worth parsing.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache", ".pytest_cache"})

#: Version of the JSON output schema; bump on breaking shape changes.
JSON_SCHEMA_VERSION = 1


def all_rule_ids() -> list[str]:
    """Shipped rule ids in catalogue order."""
    return [checker.rule for checker in default_checkers()]


def select_checkers(rules: Sequence[str] | None) -> list[Checker]:
    """The default checkers, optionally restricted to ``rules`` ids."""
    checkers = default_checkers()
    if rules is None:
        return checkers
    wanted = {rule.upper() for rule in rules}
    known = {checker.rule for checker in checkers}
    unknown = wanted - known
    if unknown:
        raise ConfigurationError(
            f"unknown rule(s) {sorted(unknown)}; known: {sorted(known)}"
        )
    return [checker for checker in checkers if checker.rule in wanted]


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            candidates: Iterable[Path] = [path]
        elif path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not (_SKIP_DIRS & set(part for part in p.parts))
            )
        else:
            raise ConfigurationError(f"no such file or directory: {path}")
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def _now_ms() -> float:
    """Analyzer wall-clock for self-instrumentation (not simulation code)."""
    return time.perf_counter() * 1000.0  # repro: noqa[DET01]


def analyze_paths(
    paths: Iterable[str | Path],
    checkers: Iterable[Checker] | None = None,
    registry: MetricsRegistry | None = None,
) -> list[Finding]:
    """All findings over every Python file reachable from ``paths``.

    Per-file rules run file by file; :class:`ProjectChecker` rules run
    once over a shared :class:`ProjectIndex` of every file in the run.
    With a ``registry``, the analyzer instruments itself:
    ``analysis.project.files`` (files indexed),
    ``analysis.project.index_ms`` (index build time) and
    ``analysis.project.ms.<rule>`` (per-rule wall time).
    """
    active = list(checkers) if checkers is not None else default_checkers()
    file_checkers = [c for c in active if not isinstance(c, ProjectChecker)]
    project_checkers = [c for c in active if isinstance(c, ProjectChecker)]

    contexts: list[FileContext] = []
    for path in iter_python_files(paths):
        try:
            contexts.append(FileContext(str(path), path.read_text(encoding="utf-8")))
        except SyntaxError as exc:
            raise ConfigurationError(f"cannot parse {path}: {exc}") from exc

    findings: list[Finding] = []
    for checker in file_checkers:
        started = _now_ms()
        for ctx in contexts:
            findings.extend(run_checkers(ctx, [checker]))
        _observe_rule_ms(registry, checker.rule, _now_ms() - started)

    if project_checkers:
        started = _now_ms()
        index = ProjectIndex()
        for ctx in contexts:
            index.add(ctx)
        if registry is not None:
            registry.gauge("analysis.project.files").set(len(contexts))
            registry.histogram("analysis.project.index_ms").observe(
                _now_ms() - started
            )
        for checker in project_checkers:
            started = _now_ms()
            findings.extend(run_project_checkers(index, [checker]))
            _observe_rule_ms(registry, checker.rule, _now_ms() - started)

    return sorted(_drop_shadowed(findings), key=Finding.sort_key)


def _observe_rule_ms(
    registry: MetricsRegistry | None, rule: str, elapsed_ms: float
) -> None:
    if registry is not None:
        registry.histogram(f"analysis.project.ms.{rule.lower()}").observe(elapsed_ms)


def _drop_shadowed(findings: list[Finding]) -> list[Finding]:
    """Drop CRY01 key-material findings that CRY02 re-reports flow-sensitively.

    In a project run CRY02 subsumes CRY01's name-at-sink heuristic; keeping
    both would double-count every direct leak.  CRY01's cipher-shape
    findings (constant IV / ECB) are its own and always survive.
    """
    cry02_sites = {
        (f.path, f.line) for f in findings if f.rule == "CRY02"
    }
    if not cry02_sites:
        return findings
    return [
        f
        for f in findings
        if not (
            f.rule == "CRY01"
            and "key material" in f.message
            and (f.path, f.line) in cry02_sites
        )
    ]


def rule_counts(findings: Iterable[Finding], rules: Iterable[str]) -> dict[str, int]:
    """Finding count per rule id, zero-filled for quiet rules."""
    counts = {rule: 0 for rule in rules}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return counts


def format_findings_text(findings: Sequence[Finding]) -> str:
    """One line per finding plus a summary tail line."""
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun}")
    return "\n".join(lines)


def format_findings_json(findings: Sequence[Finding], rules: Sequence[str]) -> str:
    """Stable machine-readable report.

    Schema (version 1)::

        {"schema_version": 1,
         "findings": [{"rule", "severity", "path", "line", "message", "hint"}],
         "counts": {"<rule>": <int>, ...}}
    """
    return json.dumps(
        {
            "schema_version": JSON_SCHEMA_VERSION,
            "findings": [finding.to_dict() for finding in findings],
            "counts": rule_counts(findings, rules),
        },
        indent=2,
        sort_keys=True,
    )


def record_stats(
    findings: Iterable[Finding],
    registry: MetricsRegistry,
    rules: Sequence[str] | None = None,
) -> None:
    """Publish per-rule finding counts as ``analysis.findings.<rule>``.

    Quiet rules get a zero-valued counter so snapshot consumers can tell
    "rule ran clean" from "rule never ran".
    """
    counts = rule_counts(findings, rules if rules is not None else all_rule_ids())
    for rule, count in counts.items():
        registry.counter(f"analysis.findings.{rule.lower()}").inc(count)
