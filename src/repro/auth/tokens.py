"""Authorization tokens (section 4.3).

A traced entity explicitly authorizes its hosting broker to publish traces
by handing it a token containing:

1. the trace-topic information,
2. a *randomly generated* public key (the matching private key is what the
   broker uses to prove possession — random so that no other broker can
   tell which broker the entity is connected to),
3. the delegated rights (publish, for a broker),
4. the validity duration (kept short; refreshed near expiry),

all signed by the entity.  Every trace message a broker publishes carries
the token; routing brokers discard messages without a valid one.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.crypto.keys import KeyPair
from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey
from repro.crypto.signing import SignedEnvelope, sign_payload, verify_payload
from repro.errors import SignatureError, TokenError
from repro.tdn.advertisement import TopicAdvertisement
from repro.util.identifiers import UUID128


class TokenRights(enum.Enum):
    """Rights a token delegates."""

    PUBLISH = "publish"
    SUBSCRIBE = "subscribe"


@dataclass(frozen=True, slots=True)
class AuthorizationToken:
    """A signed delegation of rights over a trace topic."""

    advertisement: TopicAdvertisement
    token_public_key: RSAPublicKey
    rights: TokenRights
    valid_from_ms: float
    valid_until_ms: float
    owner_signature: SignedEnvelope

    # -- creation ---------------------------------------------------------------

    @staticmethod
    def signed_fields(
        advertisement: TopicAdvertisement,
        token_public_key: RSAPublicKey,
        rights: TokenRights,
        valid_from_ms: float,
        valid_until_ms: float,
    ) -> dict:
        """The exact field dict the owner signature covers (§4.2)."""
        return {
            "trace_topic": advertisement.trace_topic.hex,
            "token_n": token_public_key.n,
            "token_e": token_public_key.e,
            "rights": rights.value,
            "valid_from_ms": valid_from_ms,
            "valid_until_ms": valid_until_ms,
        }

    @classmethod
    def create(
        cls,
        advertisement: TopicAdvertisement,
        owner_private_key: RSAPrivateKey,
        rights: TokenRights,
        now_ms: float,
        duration_ms: float,
        rng: random.Random,
    ) -> tuple["AuthorizationToken", RSAPrivateKey]:
        """Generate the random key pair, build and sign the token.

        Returns the token and the private half of the random key pair,
        which the entity hands to its broker over the secured channel.
        """
        token_keys = KeyPair.generate(rng)
        valid_until = now_ms + duration_ms
        fields = cls.signed_fields(
            advertisement, token_keys.public, rights, now_ms, valid_until
        )
        signature = sign_payload(fields, owner_private_key)
        token = cls(
            advertisement=advertisement,
            token_public_key=token_keys.public,
            rights=rights,
            valid_from_ms=now_ms,
            valid_until_ms=valid_until,
            owner_signature=signature,
        )
        return token, token_keys.private

    # -- validation ----------------------------------------------------------------

    def expired(self, now_ms: float, skew_tolerance_ms: float = 100.0) -> bool:
        """Expiry check with NTP skew tolerance (the paper's 30-100 ms)."""
        return now_ms > self.valid_until_ms + skew_tolerance_ms

    def not_yet_valid(self, now_ms: float, skew_tolerance_ms: float = 100.0) -> bool:
        """Early-use check, skew-tolerant like :meth:`expired`."""
        return now_ms < self.valid_from_ms - skew_tolerance_ms

    def verify_owner_signature(self) -> None:
        """Check the token was signed by the trace-topic owner.

        The owner's public key comes from the TDN-signed advertisement the
        token carries, so a forger would also need to forge the TDN
        signature (verified separately by :class:`TokenVerifier`).
        """
        expected = self.signed_fields(
            self.advertisement,
            self.token_public_key,
            self.rights,
            self.valid_from_ms,
            self.valid_until_ms,
        )
        if self.owner_signature.payload != expected:
            raise TokenError("token signature covers different fields")
        try:
            verify_payload(self.owner_signature, self.advertisement.owner_public_key)
        except SignatureError as exc:
            raise TokenError(f"token not signed by topic owner: {exc}") from exc

    @property
    def trace_topic(self) -> UUID128:
        """The trace topic this token authorizes (from the advertisement)."""
        return self.advertisement.trace_topic

    # -- wire form ----------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready wire form; ``from_dict`` round-trips it."""
        return {
            "advertisement": self.advertisement.to_dict(),
            "token_n": self.token_public_key.n,
            "token_e": self.token_public_key.e,
            "rights": self.rights.value,
            "valid_from_ms": self.valid_from_ms,
            "valid_until_ms": self.valid_until_ms,
            "owner_signature": self.owner_signature.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AuthorizationToken":
        """Parse a wire-form token; raises ``TokenError`` when malformed."""
        try:
            return cls(
                advertisement=TopicAdvertisement.from_dict(data["advertisement"]),
                token_public_key=RSAPublicKey(int(data["token_n"]), int(data["token_e"])),
                rights=TokenRights(data["rights"]),
                valid_from_ms=float(data["valid_from_ms"]),
                valid_until_ms=float(data["valid_until_ms"]),
                owner_signature=SignedEnvelope.from_dict(data["owner_signature"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TokenError(f"malformed token: {exc}") from exc
