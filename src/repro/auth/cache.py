"""Validity-window-aware LRU cache of verified authorization tokens.

Token verification costs a calibrated ``TOKEN_VERIFY`` charge (about 2 ms
of virtual time, Table 3) and the paper requires it on *every* constrained
trace frame at *every* hop (section 4.3).  Tokens, however, are stable for
their whole validity window: the same byte-identical token rides thousands
of consecutive frames.  This cache extends the per-topic advertisement
cache of :mod:`repro.auth.verification` down to whole tokens — a broker
(or tracker) pays the full verification once per distinct token and then
answers from the cache until the token expires, is revoked, or is evicted.

Cache keys are the SHA-1 digest of the token's canonical wire form, so a
refreshed token (new validity window, new bytes) can never alias a stale
entry.  Every ``lookup``/``store`` outcome is counted on the deployment
registry (``auth.token.cache.{hit,miss,evicted}``) so perf PRs can cite
hit rates straight from a snapshot (docs/PERFORMANCE.md).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.auth.tokens import AuthorizationToken
from repro.crypto.digest import sha1_digest
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.util.serialization import canonical_encode

#: Default entry capacity; sized for "every live session on one broker".
DEFAULT_TOKEN_CACHE_CAPACITY = 256


def token_digest(token_dict: dict) -> bytes:
    """Stable cache key: SHA-1 over the token's canonical wire form."""
    return sha1_digest(canonical_encode(token_dict))


class TokenVerificationCache:
    """LRU map of token digest -> verified :class:`AuthorizationToken`.

    The cache never *extends* trust: entries are only written after a full
    :meth:`TokenVerifier.verify` pass, and :meth:`lookup` re-checks the
    validity window on every read, so an expired token is a miss (and is
    dropped) no matter how recently it verified.  Revocation and broker
    restarts invalidate entries via :meth:`discard` / :meth:`clear`.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_TOKEN_CACHE_CAPACITY,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"token cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._entries: OrderedDict[bytes, AuthorizationToken] = OrderedDict()
        self._metrics = metrics
        if metrics is not None:
            # materialize the counters so snapshots show explicit zeros
            metrics.counter("auth.token.cache.hit")
            metrics.counter("auth.token.cache.miss")
            metrics.counter("auth.token.cache.evicted")

    # -- recording helpers -----------------------------------------------------

    def _count(self, outcome: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(f"auth.token.cache.{outcome}").inc()

    # -- cache protocol --------------------------------------------------------

    def lookup(
        self, digest: bytes, now_ms: float, skew_tolerance_ms: float = 0.0
    ) -> AuthorizationToken | None:
        """The cached token, or None (counted as a miss) when absent/expired."""
        token = self._entries.get(digest)
        if token is None:
            self._count("miss")
            return None
        if token.expired(now_ms, skew_tolerance_ms):
            # validity window over: the entry is dead weight, not a hit
            del self._entries[digest]
            self._count("miss")
            return None
        self._entries.move_to_end(digest)
        self._count("hit")
        return token

    def store(self, digest: bytes, token: AuthorizationToken) -> None:
        """Remember a fully verified token, evicting the LRU entry if full."""
        if digest in self._entries:
            self._entries.move_to_end(digest)
            self._entries[digest] = token
            return
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self._count("evicted")
        self._entries[digest] = token

    def discard(self, digest: bytes) -> None:
        """Drop one entry (revocation); a no-op when absent."""
        self._entries.pop(digest, None)

    def clear(self) -> None:
        """Forget everything — a restarted broker starts cold."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: bytes) -> bool:
        return digest in self._entries
