"""Authorization (section 4): credentials, delegation tokens, enforcement.

Three mechanisms combine to ensure that only authorized entities generate,
route and consume traces:

* every trace-related message initiated by an entity is signed with the
  entity's credentials (section 4.2);
* brokers publishing traces must present an authorization token the traced
  entity delegated to them, and every routing broker verifies it before
  forwarding (section 4.3);
* trace topics are unguessable 128-bit UUIDs whose discovery is restricted
  at the TDN (section 4.1).

Repeat verifications of a byte-identical token are answered by the
:class:`TokenVerificationCache` (docs/PERFORMANCE.md) until expiry,
revocation, or a broker restart clears it.
"""

from repro.auth.cache import TokenVerificationCache, token_digest
from repro.auth.credentials import EntityCredentials
from repro.auth.tokens import AuthorizationToken, TokenRights
from repro.auth.verification import TokenVerifier, TraceAuthorizationGuard

__all__ = [
    "EntityCredentials",
    "AuthorizationToken",
    "TokenRights",
    "TokenVerificationCache",
    "TokenVerifier",
    "TraceAuthorizationGuard",
    "token_digest",
]
