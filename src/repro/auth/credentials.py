"""Entity credentials: a key pair plus its CA-issued certificate."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.crypto.certificates import Certificate, CertificateAuthority
from repro.crypto.keys import KeyPair
from repro.crypto.signing import SignedEnvelope, sign_payload, verify_payload


@dataclass(slots=True)
class EntityCredentials:
    """The credential bundle an entity holds.

    The certificate is what travels in messages ("the entity includes its
    credentials — a X.509 certificate", section 3.1); the private key stays
    local and produces the signatures that demonstrate possession
    (section 3.2).
    """

    subject: str
    keys: KeyPair
    certificate: Certificate

    @classmethod
    def issue(
        cls,
        subject: str,
        ca: CertificateAuthority,
        rng: random.Random,
        not_after_ms: float = float("inf"),
    ) -> "EntityCredentials":
        """Generate keys and obtain a certificate from ``ca``."""
        keys = KeyPair.generate(rng)
        certificate = ca.issue(subject, keys.public, not_after_ms=not_after_ms)
        return cls(subject=subject, keys=keys, certificate=certificate)

    def sign(self, payload: Any) -> SignedEnvelope:
        """Sign ``payload``, demonstrating possession of the private key."""
        return sign_payload(payload, self.keys.private)

    def verify_own(self, envelope: SignedEnvelope) -> Any:
        """Verify an envelope allegedly signed by *this* entity."""
        return verify_payload(envelope, self.keys.public)

    @property
    def public_key(self):
        """This entity's RSA public key (the certificate's subject key)."""
        return self.keys.public

    def __repr__(self) -> str:
        return f"<EntityCredentials {self.subject}>"
