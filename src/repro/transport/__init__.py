"""Simulated transports.

The paper stresses transport independence: entities never deal with the
underlying transport, the brokers do (characteristic #2, section 1).  Here
a :class:`TransportProfile` captures the timing/reliability semantics of a
transport, and a :class:`Link` is one directed channel between two simulated
nodes carrying opaque payloads with those semantics.
"""

from repro.transport.base import TransportProfile, DeliveryReceipt, wire_size
from repro.transport.disruption import LinkDisruption
from repro.transport.link import Link, DuplexLink
from repro.transport.tcp import tcp_profile, TCP_CLUSTER
from repro.transport.udp import udp_profile, UDP_CLUSTER

__all__ = [
    "TransportProfile",
    "DeliveryReceipt",
    "wire_size",
    "Link",
    "DuplexLink",
    "LinkDisruption",
    "tcp_profile",
    "TCP_CLUSTER",
    "udp_profile",
    "UDP_CLUSTER",
]
