"""UDP transport profile.

Lower latency than TCP (no stream/ack machinery) but unreliable and
unordered: a loss sample drops the datagram, and independent jitter draws
can reorder deliveries — exactly the behaviours the broker's ping protocol
measures (loss rates and out-of-order delivery, section 3.3).
"""

from __future__ import annotations

from repro.transport.base import TransportProfile
from repro.transport.tcp import LAN_PER_KB_MS


def udp_profile(
    base_latency_ms: float = 0.95,
    jitter_ms: float = 0.30,
    per_kb_ms: float = LAN_PER_KB_MS,
    loss_probability: float = 0.0,
) -> TransportProfile:
    """A UDP-like profile: lossy, unordered, lower base latency."""
    return TransportProfile(
        name="UDP",
        base_latency_ms=base_latency_ms,
        jitter_ms=jitter_ms,
        per_kb_ms=per_kb_ms,
        loss_probability=loss_probability,
        reliable=False,
        ordered=False,
    )


#: Default cluster-LAN UDP profile (clean LAN: loss injected per-experiment).
UDP_CLUSTER = udp_profile()
