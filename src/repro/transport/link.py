"""Directed and duplex links between simulated nodes."""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.sim.engine import Simulator
from repro.sim.monitor import Monitor
from repro.transport.base import DeliveryReceipt, TransportProfile

Handler = Callable[[Any], None]


class Link:
    """One directed channel delivering payloads to a receiver callback.

    Ordering: for an ``ordered`` profile the link enforces FIFO by never
    scheduling a delivery earlier than the previously scheduled one (models
    TCP's in-order byte stream).  For unordered profiles each payload's
    latency is sampled independently, so reordering happens naturally.

    Reliability: for a ``reliable`` profile, each loss sample adds one
    retransmission penalty instead of dropping.  For unreliable profiles a
    loss sample silently drops the payload (the receiver sees nothing).

    Sizing: every send is sized through the link's wire codec
    (``codec`` argument, else ``profile.codec``, else ``json``) via the
    memoized hot path in :mod:`repro.wire.codec` — a message forwarded
    over many links is rendered once per codec, not once per send.
    """

    def __init__(
        self,
        sim: Simulator,
        profile: TransportProfile,
        receiver: Handler,
        rng: random.Random,
        name: str = "",
        monitor: Monitor | None = None,
        codec: str | None = None,
    ) -> None:
        # Deferred import: repro.wire reaches back into the messaging
        # package, which imports repro.transport during its own init.
        from repro.wire.codec import frame_size, resolve_codec

        self.sim = sim
        self.profile = profile
        self.receiver = receiver
        self.name = name or f"link-{id(self):x}"
        self.codec = resolve_codec(codec or profile.codec)
        self._frame_size = frame_size
        self._rng = rng
        self._monitor = monitor
        self._metrics = monitor.metrics if monitor is not None else None
        self._last_arrival = 0.0
        self._latest_arrival = 0.0
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0
        self.retransmit_count = 0
        # Optional fault window installed by repro.faults; ``None`` on the
        # healthy path so no extra RNG draws happen outside a chaos run.
        self.disruption: Any = None

    def send(self, payload: Any) -> DeliveryReceipt:
        """Send ``payload``; schedules receiver callback in virtual time."""
        size = self._frame_size(payload, self.codec, self._metrics)
        self.sent_count += 1
        metrics = self._metrics
        if metrics:
            metrics.counter("transport.msgs.sent").inc()
            metrics.counter("transport.bytes.sent").inc(size)
            metrics.counter(f"codec.bytes.{self.codec.name}").inc(size)
        latency = self.profile.sample_latency_ms(size, self._rng)
        retransmits = 0

        disruption = self.disruption
        if disruption is not None:
            drop, extra_delay_ms = disruption.sample()
            if drop:
                # An injected drop is a blackhole: it bypasses the reliable
                # retransmission path on purpose (see transport/disruption.py).
                self.dropped_count += 1
                if self._monitor:
                    self._monitor.increment(f"{self.name}.dropped")
                    metrics.counter("transport.msgs.dropped").inc()
                    self._monitor.journal.record(
                        self.sim.now,
                        "link.drop",
                        size_bytes=size,
                        link=self.name,
                        injected=True,
                    )
                return DeliveryReceipt(False, latency, 0, size)
            latency += extra_delay_ms

        if self.profile.sample_loss(self._rng):
            if not self.profile.reliable:
                self.dropped_count += 1
                if self._monitor:
                    self._monitor.increment(f"{self.name}.dropped")
                    metrics.counter("transport.msgs.dropped").inc()
                    self._monitor.journal.record(
                        self.sim.now, "link.drop", size_bytes=size, link=self.name
                    )
                return DeliveryReceipt(False, latency, 0, size)
            # reliable: pay retransmission penalties until a send survives
            while retransmits < self.profile.max_retransmits:
                retransmits += 1
                latency += self.profile.retransmit_timeout_ms
                if not self.profile.sample_loss(self._rng):
                    break
            self.retransmit_count += retransmits
            if metrics:
                metrics.counter("transport.retransmits").inc(retransmits)

        arrival = self.sim.now + latency
        if self.profile.ordered and arrival < self._last_arrival:
            arrival = self._last_arrival
            latency = arrival - self.sim.now
        if self.profile.ordered:
            self._last_arrival = arrival
        elif arrival < self._latest_arrival and self._monitor:
            # this payload overtakes one sent earlier: a reordered delivery
            metrics.counter("transport.msgs.reordered").inc()
            self._monitor.journal.record(
                self.sim.now, "link.reorder", size_bytes=size, link=self.name
            )
        self._latest_arrival = max(self._latest_arrival, arrival)

        self.delivered_count += 1
        if self._monitor:
            self._monitor.increment(f"{self.name}.delivered")
            self._monitor.record(f"{self.name}.latency_ms", self.sim.now, latency)
            metrics.counter("transport.msgs.delivered").inc()
            metrics.histogram("transport.latency_ms").observe(latency)
            metrics.gauge("transport.inflight").inc()
        self.sim.call_at(arrival, lambda: self._deliver(payload))
        return DeliveryReceipt(True, latency, retransmits, size)

    def _deliver(self, payload: Any) -> None:
        if self._metrics:
            self._metrics.gauge("transport.inflight").dec()
        self.receiver(payload)


class DuplexLink:
    """A symmetric pair of directed links between two endpoints."""

    def __init__(
        self,
        sim: Simulator,
        profile: TransportProfile,
        receiver_a: Handler,
        receiver_b: Handler,
        rng: random.Random,
        name: str = "",
        monitor: Monitor | None = None,
        codec: str | None = None,
    ) -> None:
        self.name = name or f"duplex-{id(self):x}"
        self.a_to_b = Link(
            sim, profile, receiver_b, rng, f"{self.name}.a2b", monitor, codec=codec
        )
        self.b_to_a = Link(
            sim, profile, receiver_a, rng, f"{self.name}.b2a", monitor, codec=codec
        )

    @property
    def profile(self) -> TransportProfile:
        return self.a_to_b.profile
