"""Link-level fault windows: extra loss and delay injected by `repro.faults`.

A :class:`LinkDisruption` is the transport-side half of the fault-injection
contract: the :class:`~repro.faults.controller.FaultController` constructs
one per packet-loss / delay-spike fault window and installs it on the
affected :class:`~repro.transport.link.Link` objects; ``Link.send``
consults it for every payload while it is installed and removes nothing
else about the link's behaviour.

Design constraints:

* **Determinism** — a disruption draws from its *own* seeded stream
  (``faults.links`` by convention), never from the link's stream, so a
  healthy run and a chaos run agree on every draw the healthy path makes
  (the RandomStreams independence property).
* **Beyond-transport faults** — an injected drop discards the payload even
  on ``reliable`` profiles.  Profile-level loss models congestion the
  transport can recover from; an injected drop models a blackhole the
  retransmission logic never sees (switch buffer loss, a dead middlebox),
  which is exactly the condition section 3.3's miss counting must survive.
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError


class LinkDisruption:
    """One active loss/delay window on a link.

    ``sample()`` is called once per payload offered to the link while the
    disruption is installed; it returns ``(drop, extra_delay_ms)``.  The
    ``drops`` / ``delayed`` counters let the fault controller journal what
    the window actually did when it is reverted.
    """

    __slots__ = ("rng", "loss_probability", "extra_delay_ms", "drops", "delayed")

    def __init__(
        self,
        rng: random.Random,
        loss_probability: float = 0.0,
        extra_delay_ms: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_probability <= 1.0:
            raise ConfigurationError(
                f"loss_probability must be in [0, 1], got {loss_probability}"
            )
        if extra_delay_ms < 0.0:
            raise ConfigurationError(
                f"extra_delay_ms must be >= 0, got {extra_delay_ms}"
            )
        self.rng = rng
        self.loss_probability = loss_probability
        self.extra_delay_ms = extra_delay_ms
        self.drops = 0
        self.delayed = 0

    def sample(self) -> tuple[bool, float]:
        """Judge one payload: ``(drop it?, extra latency to add)``."""
        if self.loss_probability > 0.0 and self.rng.random() < self.loss_probability:
            self.drops += 1
            return True, 0.0
        if self.extra_delay_ms > 0.0:
            self.delayed += 1
            return False, self.extra_delay_ms
        return False, 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LinkDisruption loss={self.loss_probability} "
            f"delay={self.extra_delay_ms}ms drops={self.drops}>"
        )
