"""Transport profile: the timing and reliability contract of a channel."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class TransportProfile:
    """Parameters describing one transport's behaviour on one link.

    Latency of a single payload is::

        base_latency_ms + jitter + per_kb_ms * size_kb  (+ retransmits)

    ``reliable`` transports never lose payloads; a loss sample instead costs
    one ``retransmit_timeout_ms`` penalty (the simulated retransmission).
    ``ordered`` transports deliver FIFO per link; unordered ones may deliver
    a later send before an earlier one when jitter reorders them.
    """

    name: str
    base_latency_ms: float
    jitter_ms: float
    per_kb_ms: float
    loss_probability: float
    reliable: bool
    ordered: bool
    retransmit_timeout_ms: float = 0.0
    max_retransmits: int = 8
    #: Wire codec links on this transport size payloads with (a name in the
    #: ``repro.wire`` registry).  ``None`` defers to the link's own setting
    #: and ultimately to the ``json`` default.
    codec: str | None = None

    def __post_init__(self) -> None:
        if self.base_latency_ms < 0 or self.jitter_ms < 0 or self.per_kb_ms < 0:
            raise ConfigurationError("latency parameters must be non-negative")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ConfigurationError(
                f"loss probability must be in [0, 1): {self.loss_probability}"
            )
        if self.reliable and self.loss_probability > 0 and self.retransmit_timeout_ms <= 0:
            raise ConfigurationError(
                "reliable transport with loss needs a retransmit timeout"
            )

    def sample_latency_ms(self, size_bytes: int, rng: random.Random) -> float:
        """One latency draw for a payload of ``size_bytes``."""
        jitter = rng.gauss(0.0, self.jitter_ms) if self.jitter_ms else 0.0
        latency = self.base_latency_ms + jitter + self.per_kb_ms * (size_bytes / 1024.0)
        return max(0.01, latency)

    def sample_loss(self, rng: random.Random) -> bool:
        """True if this packet instance is lost."""
        return self.loss_probability > 0 and rng.random() < self.loss_probability


@dataclass(frozen=True, slots=True)
class DeliveryReceipt:
    """What a link reports about one send attempt."""

    delivered: bool
    latency_ms: float
    retransmits: int
    size_bytes: int


def wire_size(payload: Any, codec: str | None = None) -> int:
    """Bytes the payload occupies on the wire under ``codec``.

    Delegates to :func:`repro.wire.codec.frame_size`: message envelopes are
    sized through the named codec (default ``json`` — the canonical
    encoding, byte-identical to the pre-codec behaviour) with memoized
    per-message sizes; plain values must be canonically encodable.

    The import is deferred because ``repro.wire`` imports the messaging
    package, which imports this module back through the broker fabric.
    """
    from repro.wire.codec import frame_size

    return frame_size(payload, codec)
