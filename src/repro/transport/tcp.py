"""TCP transport profile.

Calibration targets the paper's testbed: a 100 Mbps switched LAN where
"per-hop communications latency is around 1-2 milliseconds in cluster
settings" (section 6.1), with TCP consistently 2-4 ms more expensive than
UDP at every hop count (Table 3) due to ack/stream overhead.
"""

from __future__ import annotations

from repro.transport.base import TransportProfile

#: 100 Mbps serialization cost: 1 KB / (100 Mbit/s) ~= 0.082 ms per KB.
LAN_PER_KB_MS = 0.082


def tcp_profile(
    base_latency_ms: float = 1.55,
    jitter_ms: float = 0.35,
    per_kb_ms: float = LAN_PER_KB_MS,
    loss_probability: float = 0.0,
    retransmit_timeout_ms: float = 40.0,
) -> TransportProfile:
    """A TCP-like profile: reliable, ordered, slightly higher latency."""
    return TransportProfile(
        name="TCP",
        base_latency_ms=base_latency_ms,
        jitter_ms=jitter_ms,
        per_kb_ms=per_kb_ms,
        loss_probability=loss_probability,
        reliable=True,
        ordered=True,
        retransmit_timeout_ms=retransmit_timeout_ms,
    )


#: The default cluster-LAN TCP profile used by the benchmark harness.
TCP_CLUSTER = tcp_profile()
