"""Interest gauging (section 3.5).

"Traces are issued by a broker only if there are entities that are
interested in receiving traces corresponding to a traced entity."  The
broker publishes GUAGE_INTEREST; trackers respond with any combination of
change notifications, all-updates, state transitions, load information or
network metrics.  The registry below records those responses with a TTL so
a tracker that disappears stops costing trace publications.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import InterestError


class InterestCategory(enum.Enum):
    """The five selectable trace streams of section 3.5."""

    CHANGE_NOTIFICATIONS = "change_notifications"
    ALL_UPDATES = "all_updates"
    STATE_TRANSITIONS = "state_transitions"
    LOAD = "load"
    NETWORK_METRICS = "network_metrics"

    @classmethod
    def parse_many(cls, names: list[str]) -> frozenset["InterestCategory"]:
        try:
            return frozenset(cls(name) for name in names)
        except ValueError as exc:
            raise InterestError(f"unknown interest category: {exc}") from exc


ALL_CATEGORIES = frozenset(InterestCategory)


@dataclass(slots=True)
class _TrackerInterest:
    categories: frozenset[InterestCategory]
    expires_ms: float
    response_topic: str | None = None
    credential_subject: str | None = None


@dataclass(slots=True)
class InterestRegistry:
    """Per-session record of which trackers want which trace streams."""

    ttl_ms: float = 120_000.0
    _trackers: dict[str, _TrackerInterest] = field(default_factory=dict)

    def record(
        self,
        tracker_id: str,
        categories: frozenset[InterestCategory],
        now_ms: float,
        response_topic: str | None = None,
        credential_subject: str | None = None,
    ) -> None:
        """Record (or refresh) one tracker's interest response."""
        if not categories:
            # an empty response is a retraction
            self._trackers.pop(tracker_id, None)
            return
        self._trackers[tracker_id] = _TrackerInterest(
            categories=categories,
            expires_ms=now_ms + self.ttl_ms,
            response_topic=response_topic,
            credential_subject=credential_subject,
        )

    def retract(self, tracker_id: str) -> None:
        self._trackers.pop(tracker_id, None)

    def _reap(self, now_ms: float) -> None:
        expired = [t for t, i in self._trackers.items() if i.expires_ms < now_ms]
        for tracker in expired:
            del self._trackers[tracker]

    def interested_in(self, category: InterestCategory, now_ms: float) -> bool:
        """Is anyone currently interested in ``category``?"""
        self._reap(now_ms)
        return any(category in i.categories for i in self._trackers.values())

    def any_interest(self, now_ms: float) -> bool:
        self._reap(now_ms)
        return bool(self._trackers)

    def trackers_for(self, category: InterestCategory, now_ms: float) -> list[str]:
        self._reap(now_ms)
        return sorted(
            t for t, i in self._trackers.items() if category in i.categories
        )

    def response_topic_of(self, tracker_id: str) -> str | None:
        interest = self._trackers.get(tracker_id)
        return interest.response_topic if interest else None

    def subject_of(self, tracker_id: str) -> str | None:
        interest = self._trackers.get(tracker_id)
        return interest.credential_subject if interest else None

    def active_categories(self, now_ms: float) -> frozenset[InterestCategory]:
        self._reap(now_ms)
        categories: set[InterestCategory] = set()
        for interest in self._trackers.values():
            categories |= interest.categories
        return frozenset(categories)

    def __len__(self) -> int:
        return len(self._trackers)
