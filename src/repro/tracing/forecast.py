"""NWS-style forecasting over NETWORK_METRICS traces.

The Network Weather Service (the paper's Ref [4]) popularized forecasting
future network performance from measurement streams by running several
simple predictors in parallel and using whichever has the lowest recent
error.  This module applies the same idea to the NETWORK_METRICS traces a
tracker receives, so a consumer can ask "what RTT should I expect to this
entity?" instead of reading the last raw sample.

Predictors: last value, windowed mean, windowed median, and an
exponentially-weighted moving average.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.tracing.tracker import ReceivedTrace, Tracker
from repro.tracing.traces import TraceType


def _last(values: list[float]) -> float:
    return values[-1]


def _mean(values: list[float]) -> float:
    return sum(values) / len(values)


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


@dataclass(slots=True)
class _Predictor:
    name: str
    fn: Callable[[list[float]], float]
    squared_error: float = 0.0
    predictions: int = 0

    def mse(self) -> float:
        return self.squared_error / self.predictions if self.predictions else 0.0


class SeriesForecaster:
    """Adaptive multi-predictor forecaster for one numeric series."""

    def __init__(self, window: int = 10, ewma_alpha: float = 0.3) -> None:
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ConfigurationError("ewma_alpha must be in (0, 1]")
        self.window = window
        self.ewma_alpha = ewma_alpha
        self._values: deque[float] = deque(maxlen=window)
        self._ewma: float | None = None
        self._predictors = [
            _Predictor("last", _last),
            _Predictor("mean", _mean),
            _Predictor("median", _median),
            _Predictor("ewma", lambda values: self._ewma if self._ewma is not None else values[-1]),
        ]

    def observe(self, value: float) -> None:
        """Feed one observation; predictor errors update first."""
        if self._values:
            values = list(self._values)
            for predictor in self._predictors:
                prediction = predictor.fn(values)
                predictor.squared_error += (prediction - value) ** 2
                predictor.predictions += 1
        self._values.append(value)
        if self._ewma is None:
            self._ewma = value
        else:
            self._ewma = self.ewma_alpha * value + (1 - self.ewma_alpha) * self._ewma

    @property
    def sample_count(self) -> int:
        return len(self._values)

    def best_predictor(self) -> str:
        """Name of the predictor with the lowest mean squared error."""
        scored = [p for p in self._predictors if p.predictions > 0]
        if not scored:
            return "last"
        return min(scored, key=lambda p: p.mse()).name

    def forecast(self) -> float | None:
        """Prediction from the currently-best predictor; None if no data."""
        if not self._values:
            return None
        best = self.best_predictor()
        for predictor in self._predictors:
            if predictor.name == best:
                return predictor.fn(list(self._values))
        raise AssertionError("unreachable")  # pragma: no cover

    def errors(self) -> dict[str, float]:
        return {p.name: p.mse() for p in self._predictors}


class NetworkForecaster:
    """Attach to a tracker; forecast RTT and loss per traced entity.

    With ``store`` given (an :class:`~repro.analytics.AnalyticsStore`),
    every NETWORK_METRICS sample is also persisted as a
    ``network.metrics`` analytics event (``value`` = mean RTT,
    ``loss_rate`` in the fields), so forecasts can be reproduced offline
    from the same log the availability reports read.
    """

    def __init__(self, tracker: Tracker, window: int = 10, store=None) -> None:
        self.tracker = tracker
        self.window = window
        self.store = store
        self.rtt: dict[str, SeriesForecaster] = {}
        self.loss: dict[str, SeriesForecaster] = {}
        self._previous_hook = tracker.on_trace
        tracker.on_trace = self._observe

    def _observe(self, trace: ReceivedTrace) -> None:
        if trace.trace_type is TraceType.NETWORK_METRICS:
            entity = trace.entity_id
            if entity not in self.rtt:
                self.rtt[entity] = SeriesForecaster(self.window)
                self.loss[entity] = SeriesForecaster(self.window)
            rtt_ms = float(trace.payload["mean_rtt_ms"])
            loss_rate = float(trace.payload["loss_rate"])
            self.rtt[entity].observe(rtt_ms)
            self.loss[entity].observe(loss_rate)
            if self.store is not None:
                self.store.append(
                    trace.received_ms,
                    "network.metrics",
                    entity=entity,
                    value=rtt_ms,
                    loss_rate=loss_rate,
                )
        if self._previous_hook is not None:
            self._previous_hook(trace)

    def forecast_rtt_ms(self, entity_id: str) -> float | None:
        forecaster = self.rtt.get(entity_id)
        return forecaster.forecast() if forecaster else None

    def forecast_loss_rate(self, entity_id: str) -> float | None:
        forecaster = self.loss.get(entity_id)
        return forecaster.forecast() if forecaster else None
