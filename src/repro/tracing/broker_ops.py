"""Broker-side tracing operations (sections 3.2-3.5, 4, 5.1).

The :class:`TraceManager` is the component a broker runs to host traced
entities: it validates registrations, mints sessions, polls entities with
adaptively-scheduled pings, detects failures, gauges tracker interest, and
publishes typed traces over the Table 2 topics — signed with the
authorization token the entity delegated, encrypted with the secret trace
key when the entity asked for confidentiality.
"""

from __future__ import annotations

from typing import Generator

from repro.auth.credentials import EntityCredentials
from repro.auth.tokens import AuthorizationToken
from repro.crypto.certificates import CertificateAuthority
from repro.crypto.costmodel import CryptoOp
from repro.crypto.keys import SymmetricKey
from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey
from repro.crypto.signing import (
    SealedPayload,
    SignedEnvelope,
    open_sealed,
    seal_for,
    sign_payload,
    verify_payload,
)
from repro.errors import (
    CertificateError,
    DecryptionError,
    RegistrationError,
    SignatureError,
    TopicError,
)
from repro.messaging.broker import Broker
from repro.messaging.message import Message
from repro.security.confidentiality import wrap_trace_body
from repro.security.keydist import build_key_payload
from repro.sim.engine import Event
from repro.sim.monitor import Monitor
from repro.tracing.coalesce import DEFAULT_COALESCE_WINDOW_MS, PingCoalescer
from repro.tracing.failure import AdaptivePingPolicy, DetectorVerdict, FailureDetector
from repro.tracing.interest import InterestCategory, InterestRegistry
from repro.tracing.pings import Ping, PingResponse
from repro.tracing.registration import (
    RegistrationError_Response,
    RegistrationResponse,
    TraceRegistrationRequest,
)
from repro.tracing.session import TraceSession
from repro.tracing.topics import REGISTRATION_TOPIC, TraceTopicSet
from repro.tracing.traces import (
    CHANGE_NOTIFICATION_TYPES,
    STATE_TRANSITION_TYPES,
    EntityState,
    LoadInformation,
    TraceType,
)
from repro.util.identifiers import SessionId, UUIDGenerator
from repro.util.serialization import canonical_decode

#: Ping responses per derived NETWORK_METRICS trace.
DEFAULT_METRICS_EVERY = 5

#: How often the broker re-gauges tracker interest.
DEFAULT_GAUGE_INTERVAL_MS = 60_000.0


def category_of(trace_type: TraceType) -> InterestCategory:
    """Which interest category gates a trace type (Table 2 mapping)."""
    if trace_type in CHANGE_NOTIFICATION_TYPES:
        return InterestCategory.CHANGE_NOTIFICATIONS
    if trace_type in STATE_TRANSITION_TYPES:
        return InterestCategory.STATE_TRANSITIONS
    if trace_type is TraceType.ALLS_WELL:
        return InterestCategory.ALL_UPDATES
    if trace_type is TraceType.LOAD_INFORMATION:
        return InterestCategory.LOAD
    if trace_type is TraceType.NETWORK_METRICS:
        return InterestCategory.NETWORK_METRICS
    raise TopicError(f"{trace_type} has no gating category")


class TraceManager:
    """Hosts traced entities on one broker."""

    def __init__(
        self,
        broker: Broker,
        ca: CertificateAuthority,
        tdn_public_keys: dict[str, RSAPublicKey],
        monitor: Monitor | None = None,
        ping_policy: AdaptivePingPolicy | None = None,
        gauge_interval_ms: float = DEFAULT_GAUGE_INTERVAL_MS,
        metrics_every: int = DEFAULT_METRICS_EVERY,
        interest_ttl_ms: float = 120_000.0,
        detector_factory=FailureDetector,
        ping_jitter_frac: float = 0.05,
        gate_by_interest: bool = True,
        ping_coalescing: bool = False,
        coalesce_window_ms: float = DEFAULT_COALESCE_WINDOW_MS,
        client_locator=None,
    ) -> None:
        self.broker = broker
        self.sim = broker.sim
        self.machine = broker.machine
        self.ca = ca
        self.tdn_public_keys = dict(tdn_public_keys)
        self.monitor = monitor or broker.monitor
        self.ping_policy = ping_policy or AdaptivePingPolicy()
        self.gauge_interval_ms = gauge_interval_ms
        self.metrics_every = metrics_every
        self.interest_ttl_ms = interest_ttl_ms
        self.detector_factory = detector_factory
        self.ping_jitter_frac = ping_jitter_frac
        # section 3.5 gating; disable only for the EXP-A4 ablation
        self.gate_by_interest = gate_by_interest
        # batch same-window pings to co-located entities into one frame;
        # client_locator maps an entity id to its host (machine name) so
        # the coalescer knows who shares a wire (docs/PERFORMANCE.md)
        self.coalescer = (
            PingCoalescer(
                self, window_ms=coalesce_window_ms, locate_host=client_locator
            )
            if ping_coalescing
            else None
        )
        # installed by a fault controller; when present, FAILED verdicts
        # open a recovery window and successful registrations close it
        self.recovery_probe = None

        self.credentials = EntityCredentials.issue(
            f"broker-cred-{broker.broker_id}", ca, self.machine.rng
        )
        self._session_ids = UUIDGenerator(
            seed=self.machine.rng.getrandbits(64)
        )
        self.sessions: dict[str, TraceSession] = {}          # by session hex
        self.sessions_by_entity: dict[str, TraceSession] = {}
        self._keyed_trackers: dict[str, set[str]] = {}        # session hex -> trackers
        self._response_counts: dict[str, int] = {}
        self._session_queues: dict[str, object] = {}

        self.broker.subscribe_local(
            REGISTRATION_TOPIC.canonical, self._on_registration_message
        )

    # ------------------------------------------------------------- registration

    def _on_registration_message(self, message: Message) -> None:
        self.sim.process(
            self._handle_registration(message),
            name=f"{self.broker.broker_id}.register",
        )

    def _handle_registration(self, message: Message) -> Generator[Event, None, None]:
        try:
            request = TraceRegistrationRequest.from_dict(message.body)
        except RegistrationError:
            self.monitor.increment("trace.registration_malformed")
            return

        # Registration is an exchange between an entity and the broker it is
        # connected to; every broker subscribes to the Registration topic,
        # but only the hosting broker (the one holding the client link)
        # processes the request.
        if str(request.entity_id) not in self.broker.client_ids:
            self.monitor.increment("trace.registration_not_local")
            return

        response_topic = TraceTopicSet(
            request.advertisement.trace_topic, request.entity_id
        ).registration_response(request.entity_id, request.request_id.value)

        # 1. credentials must verify against the trust anchor
        yield from self.machine.charge(CryptoOp.CERT_VERIFY)
        try:
            self.ca.verify(request.credentials, now_ms=self.machine.now())
        except CertificateError as exc:
            yield from self._reject_registration(request, response_topic, str(exc))
            return

        # 2. proof of possession: the signature must decrypt with the
        #    entity's public key and match the message digest (section 3.2)
        yield from self.machine.charge(CryptoOp.TRACE_VERIFY)
        if request.signature.payload != request.expected_payload():
            yield from self._reject_registration(
                request, response_topic, "signature covers different fields"
            )
            return
        try:
            verify_payload(request.signature, request.credentials.public_key)
        except SignatureError as exc:
            yield from self._reject_registration(request, response_topic, str(exc))
            return

        # 3. the advertisement must be TDN-signed and owned by the requester
        yield from self.machine.charge(CryptoOp.CERT_VERIFY)
        advertisement = request.advertisement
        tdn_key = self.tdn_public_keys.get(advertisement.issuing_tdn)
        if tdn_key is None:
            yield from self._reject_registration(
                request, response_topic, "advertisement from unknown TDN"
            )
            return
        if advertisement.signature.payload != advertisement.signed_fields():
            yield from self._reject_registration(
                request, response_topic, "advertisement fields mismatch"
            )
            return
        try:
            verify_payload(advertisement.signature, tdn_key)
        except SignatureError:
            yield from self._reject_registration(
                request, response_topic, "advertisement signature invalid"
            )
            return
        if advertisement.owner_subject != request.credentials.subject:
            yield from self._reject_registration(
                request, response_topic, "trace topic owned by another entity"
            )
            return
        if not advertisement.lifetime.alive_at(self.machine.now()):
            yield from self._reject_registration(
                request, response_topic, "trace topic lifetime expired"
            )
            return

        # a re-registration supersedes the entity's previous session: the
        # old ping loop winds down and the new session takes over (this is
        # how a recovered entity resumes tracing, section 3.2)
        previous = self.sessions_by_entity.get(str(request.entity_id))
        if previous is not None and previous.active:
            previous.active = False
            self.monitor.increment("trace.sessions_superseded")

        # success: mint a session and wire the topics
        session_id = SessionId(self._session_ids.next())
        topics = TraceTopicSet(advertisement.trace_topic, request.entity_id)
        # interest continuity: trackers that were following the superseded
        # session are still subscribed (publication topics derive from the
        # trace topic), so the new session inherits their registrations
        if previous is not None:
            interest = previous.interest
        else:
            interest = InterestRegistry(ttl_ms=self.interest_ttl_ms)
        session = TraceSession(
            entity_id=request.entity_id,
            session_id=session_id,
            advertisement=advertisement,
            topics=topics,
            started_ms=self.sim.now,
            ping_policy=self.ping_policy,
            detector=self.detector_factory(),
            interest=interest,
        )
        session.history.metrics = self.monitor.metrics
        key = session_id.value.hex
        self.sessions[key] = session
        self.sessions_by_entity[str(request.entity_id)] = session
        self._keyed_trackers[key] = set()
        self._response_counts[key] = 0

        # entity messages are handled strictly in arrival order per session
        # (verification times differ per message kind, so concurrent
        # handlers could otherwise reorder, e.g. a state report overtaking
        # the token delivery it depends on)
        work_queue = self.sim.queue(name=f"session-{key[:8]}")
        self._session_queues[key] = work_queue
        self.sim.process(
            self._session_worker(session, work_queue),
            name=f"{self.broker.broker_id}.worker.{request.entity_id}",
        )

        # the broker subscribes to the entity->broker session topic ...
        self.broker.subscribe_local(
            topics.entity_to_broker(session_id).canonical,
            lambda msg, s=session: self._on_entity_message(s, msg),
        )
        # ... and to the interest-response topic (section 3.5)
        self.broker.subscribe_local(
            topics.interest_response.canonical,
            lambda msg, s=session: self._on_interest_response(s, msg),
        )

        # sealed response: only the entity can read the session id
        yield from self.machine.charge(CryptoOp.SEAL_PAYLOAD)
        response = RegistrationResponse(
            request_id=request.request_id,
            session_id=session_id,
            broker_id=self.broker.broker_id,
            broker_public_key_n=self.credentials.public_key.n,
            broker_public_key_e=self.credentials.public_key.e,
        )
        sealed = seal_for(
            response.to_dict(), request.credentials.public_key, self.machine.rng
        )
        self._publish_plain(response_topic.canonical, sealed.to_dict())
        self.monitor.increment("trace.sessions_created")
        # audit evidence: every session the counter above counts must be
        # reconstructible from the journal (repro.analytics.audit)
        self.monitor.journal.record(
            self.sim.now,
            "session.created",
            principal=str(request.entity_id),
            entity=str(request.entity_id),
            broker=self.broker.broker_id,
            session=key[:8],
            superseded_previous=previous is not None,
        )
        if self.recovery_probe is not None:
            self.recovery_probe.mark_reregistered(
                str(request.entity_id), self.sim.now
            )

    def _reject_registration(
        self, request: TraceRegistrationRequest, response_topic, reason: str
    ) -> Generator[Event, None, None]:
        yield from self.machine.compute(0.1)
        error = RegistrationError_Response(request.request_id, reason)
        self._publish_plain(response_topic.canonical, error.to_dict())
        self.monitor.increment("trace.registrations_rejected")
        self.monitor.log(self.sim.now, "registration_rejected", reason=reason)

    def _publish_plain(self, topic: str, body: dict) -> None:
        from repro.messaging.topics import Topic

        message = Message(
            topic=Topic.parse(topic),
            body=body,
            source=self.broker.broker_id,
            created_ms=self.machine.now(),
        )
        self.broker.publish_from_broker(message)

    # --------------------------------------------------------- entity messages

    def _on_entity_message(self, session: TraceSession, message: Message) -> None:
        queue = self._session_queues.get(session.session_id.value.hex)
        if queue is None:  # pragma: no cover - sessions always get a worker
            self.sim.process(
                self._handle_entity_message(session, message),
                name=f"{self.broker.broker_id}.entity_msg",
            )
            return
        queue.put(message)

    def _session_worker(self, session: TraceSession, queue) -> None:
        """FIFO handler loop for one session's entity messages."""
        while True:
            message = yield queue.get()
            yield from self._handle_entity_message(session, message)

    def _handle_entity_message(
        self, session: TraceSession, message: Message
    ) -> Generator[Event, None, None]:
        body = yield from self._authenticate_entity_message(session, message)
        if body is None:
            self.monitor.increment("trace.entity_messages_rejected")
            return
        kind = body.get("kind")
        if kind == "ping_response":
            yield from self._handle_ping_response(session, body)
        elif kind == "state_transition":
            yield from self._handle_state_report(session, body)
        elif kind == "load":
            yield from self._handle_load_report(session, body)
        elif kind == "token_delivery":
            yield from self._handle_token_delivery(session, body)
        elif kind == "trace_key":
            yield from self._handle_trace_key(session, body)
        elif kind == "channel_key":
            yield from self._handle_channel_key(session, body)
        elif kind == "disable_tracing":
            yield from self._handle_disable(session)
        else:
            self.monitor.increment("trace.entity_messages_unknown")

    def _authenticate_entity_message(
        self, session: TraceSession, message: Message
    ) -> Generator[Event, None, dict | None]:
        """Verify source and tamper-evidence of an entity-initiated message.

        Two modes: a signature verified against the trace-topic owner's key
        (section 4.2), or — with the 6.3 optimization — decryption under
        the shared channel key, whose success is itself proof of origin.
        """
        body = message.body
        if isinstance(body, dict) and body.get("kind") == "sym":
            if session.channel_key is None:
                return None
            yield from self.machine.charge(CryptoOp.TRACE_DECRYPT)
            try:
                plaintext = session.channel_key.decrypt(bytes(body["ciphertext"]))
                decoded = canonical_decode(plaintext)
            except (DecryptionError, ValueError, KeyError, TypeError):
                return None
            return decoded if isinstance(decoded, dict) else None

        if message.signature is None or not isinstance(body, dict):
            return None
        yield from self.machine.charge(CryptoOp.TRACE_VERIFY)
        envelope = SignedEnvelope.from_dict(message.signature)
        if envelope.payload != body:
            return None
        try:
            verify_payload(envelope, session.advertisement.owner_public_key)
        except SignatureError:
            return None
        return body

    # ------------------------------------------------------------ message kinds

    def _open_sealed_control(
        self, session: TraceSession, body: dict
    ) -> Generator[Event, None, dict | None]:
        yield from self.machine.charge(CryptoOp.OPEN_SEALED)
        try:
            sealed = SealedPayload.from_dict(body["sealed"])
            payload = open_sealed(sealed, self.credentials.keys.private)
        except (DecryptionError, KeyError, TypeError, ValueError):
            self.monitor.increment("trace.sealed_control_rejected")
            return None
        return payload if isinstance(payload, dict) else None

    def _handle_token_delivery(
        self, session: TraceSession, body: dict
    ) -> Generator[Event, None, None]:
        payload = yield from self._open_sealed_control(session, body)
        if payload is None:
            return
        try:
            token = AuthorizationToken.from_dict(payload["token"])
            private = payload["token_private"]
            token_private = RSAPrivateKey(
                n=int(private["n"]), e=int(private["e"]), d=int(private["d"]),
                p=int(private["p"]), q=int(private["q"]),
                d_p=int(private["d_p"]), d_q=int(private["d_q"]),
                q_inv=int(private["q_inv"]),
            )
        except (KeyError, TypeError, ValueError):
            self.monitor.increment("trace.token_delivery_malformed")
            return
        first_token = session.token is None
        session.token = token
        session.token_private_key = token_private
        self.monitor.increment("trace.tokens_received")
        if first_token:
            # the very first registration triggers the JOIN trace and the
            # ping + gauge loops (section 3.3, 3.5)
            yield from self.publish_trace(
                session, TraceType.JOIN, {"entity_id": str(session.entity_id)},
                force=True,
            )
            self.sim.process(
                self._ping_loop(session),
                name=f"{self.broker.broker_id}.ping.{session.entity_id}",
            )
            self.sim.process(
                self._gauge_loop(session),
                name=f"{self.broker.broker_id}.gauge.{session.entity_id}",
            )

    def _handle_trace_key(
        self, session: TraceSession, body: dict
    ) -> Generator[Event, None, None]:
        payload = yield from self._open_sealed_control(session, body)
        if payload is None:
            return
        try:
            session.trace_key = SymmetricKey.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            self.monitor.increment("trace.trace_key_malformed")
            return
        self.monitor.increment("trace.trace_keys_received")

    def _handle_channel_key(
        self, session: TraceSession, body: dict
    ) -> Generator[Event, None, None]:
        payload = yield from self._open_sealed_control(session, body)
        if payload is None:
            return
        try:
            session.channel_key = SymmetricKey.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            self.monitor.increment("trace.channel_key_malformed")
            return
        self.monitor.increment("trace.channel_keys_received")

    def _handle_ping_response(
        self, session: TraceSession, body: dict
    ) -> Generator[Event, None, None]:
        try:
            response = PingResponse.from_dict(body)
        except (KeyError, TypeError, ValueError):
            self.monitor.increment("trace.ping_responses_malformed")
            return
        matched = session.history.record_response(response, self.machine.now())
        if not matched:
            self.monitor.increment("trace.ping_responses_unmatched")
            return
        self.monitor.increment("trace.ping_responses")

        # a response clears suspicion
        if session.suspicion_announced and session.detector.verdict is not DetectorVerdict.FAILED:
            session.suspicion_announced = False

        yield from self.publish_trace(
            session,
            TraceType.ALLS_WELL,
            {
                "ping_number": response.number,
                "rtt_ms": self.machine.now() - response.issued_ms,
            },
            origin_stamp_ms=response.entity_stamp_ms,
        )

        key = session.session_id.value.hex
        self._response_counts[key] = self._response_counts.get(key, 0) + 1
        if self._response_counts[key] % self.metrics_every == 0:
            metrics = session.history.network_metrics(
                self.machine.now(), self.ping_policy.response_deadline_ms
            )
            if metrics is not None:
                yield from self.publish_trace(
                    session, TraceType.NETWORK_METRICS, metrics.to_dict()
                )

    def _handle_state_report(
        self, session: TraceSession, body: dict
    ) -> Generator[Event, None, None]:
        try:
            state = EntityState(body["state"])
        except (KeyError, ValueError):
            self.monitor.increment("trace.state_reports_malformed")
            return
        session.entity_state = state
        yield from self.publish_trace(
            session,
            TraceType.for_state(state),
            {"state": state.value},
            origin_stamp_ms=body.get("stamp_ms"),
        )
        if state is EntityState.SHUTDOWN:
            session.active = False

    def _handle_load_report(
        self, session: TraceSession, body: dict
    ) -> Generator[Event, None, None]:
        try:
            load = LoadInformation.from_dict(body["load"])
        except (KeyError, TypeError, ValueError):
            self.monitor.increment("trace.load_reports_malformed")
            return
        yield from self.publish_trace(
            session,
            TraceType.LOAD_INFORMATION,
            load.to_dict(),
            origin_stamp_ms=body.get("stamp_ms"),
        )

    def _handle_disable(self, session: TraceSession) -> Generator[Event, None, None]:
        session.active = False
        yield from self.publish_trace(
            session,
            TraceType.REVERTING_TO_SILENT_MODE,
            {"entity_id": str(session.entity_id)},
            force=True,
        )

    def handle_client_disconnect(self, entity_id: str) -> None:
        """Announce a dropped entity connection with a DISCONNECT trace."""
        session = self.sessions_by_entity.get(entity_id)
        if session is None or not session.active:
            return
        session.active = False
        self.sim.process(
            self.publish_trace(
                session, TraceType.DISCONNECT, {"entity_id": entity_id}, force=True
            ),
            name=f"{self.broker.broker_id}.disconnect",
        )

    def handle_broker_restart(self) -> None:
        """Reset per-session windowed state after this broker's crash heals.

        The broker object survives a simulated crash/restart, but every
        ping record, answered-watermark and suspicion verdict in it
        describes the dead incarnation.  Without this reset the stale
        unanswered records count as trailing misses the moment the loop
        thaws, and the old watermark misclassifies the first fresh
        responses — the restart bug this method and
        ``PingHistory.reset_incarnation`` exist to fix.
        """
        for session in self.sessions.values():
            if not session.active:
                continue
            session.history.reset_incarnation()
            if not session.declared_failed:
                session.detector.reset()
                session.suspicion_announced = False

    # ------------------------------------------------------------------ pinging

    def _ping_loop(self, session: TraceSession) -> Generator[Event, None, None]:
        """Poll the entity until shutdown, silent mode, or declared failure."""
        deadline = self.ping_policy.response_deadline_ms
        # random initial phase: colocated sessions must not ping in lockstep
        # (their registration times are often harmonically related)
        if self.ping_jitter_frac:
            yield self.sim.timeout(
                self.machine.rng.uniform(0.0, session.current_interval_ms)
            )
        while session.active and not session.declared_failed:
            if self.broker.failed:
                # the broker process is down: a dead host issues no pings
                # and judges no misses.  Idle until the fabric recovers us;
                # handle_broker_restart() clears the stale window then.
                yield self.sim.timeout(session.current_interval_ms)
                continue
            if self.coalescer is not None:
                # hand the due ping to the coalescer and sleep until its
                # flush; the flush (scheduled first, so it fires first on
                # the tie) issues, records and numbers the ping for us
                delay = self.coalescer.submit(session)
                if delay > 0.0:
                    yield self.sim.timeout(delay)
                if not session.active or session.declared_failed:
                    break
                if self.broker.failed:
                    # died inside the flush window: nothing was issued
                    continue
            else:
                ping = Ping(
                    number=session.next_ping_number(), issued_ms=self.machine.now()
                )
                session.history.record_ping(ping)
                self._publish_plain(
                    session.topics.broker_to_entity(session.session_id).canonical,
                    ping.to_dict(),
                )
                self.monitor.increment("trace.pings_sent")
                self.monitor.metrics.counter("tracker.pings.sent").inc()

            # wait until this ping can be judged, but never longer than the
            # ping interval itself (a deadline above the interval must not
            # slow the cadence; young in-flight pings are simply skipped by
            # the miss counter)
            judge_wait = min(deadline, session.current_interval_ms)
            yield self.sim.timeout(judge_wait)
            if not session.active:
                break
            if self.broker.failed:
                # crashed between issuing the ping and judging it — the
                # response (if any) was dropped by the dead broker, so
                # judging now would count phantom misses
                continue
            now = self.machine.now()
            misses = session.history.consecutive_misses(now, deadline)
            verdict = session.detector.judge(misses)

            if verdict is DetectorVerdict.SUSPECT and not session.suspicion_announced:
                session.suspicion_announced = True
                yield from self.publish_trace(
                    session,
                    TraceType.FAILURE_SUSPICION,
                    {"entity_id": str(session.entity_id), "missed_pings": misses},
                )
                self.monitor.log(
                    self.sim.now, "failure_suspicion", entity=str(session.entity_id)
                )
            elif verdict is DetectorVerdict.FAILED:
                session.declared_failed = True
                session.active = False
                # detection latency: time from the last sign of life (or
                # session start, if the entity never answered) to the
                # declaration — the Figure 5 quantity
                last_alive = session.history.last_response_ms()
                if last_alive is None:
                    last_alive = session.started_ms
                self.monitor.metrics.histogram(
                    "tracker.detection.latency_ms"
                ).observe(now - last_alive)
                if self.recovery_probe is not None:
                    self.recovery_probe.mark_detected(
                        str(session.entity_id), now, cause="failed_verdict"
                    )
                yield from self.publish_trace(
                    session,
                    TraceType.FAILED,
                    {"entity_id": str(session.entity_id), "missed_pings": misses},
                )
                self.monitor.log(
                    self.sim.now, "failure_declared", entity=str(session.entity_id)
                )
                break

            session.current_interval_ms = self.ping_policy.next_interval_ms(
                session.current_interval_ms,
                session.history,
                session.active_duration_ms(now),
                now,
            )
            remaining = max(0.0, session.current_interval_ms - judge_wait)
            if remaining:
                # real schedulers drift: a few percent of timer jitter also
                # keeps colocated sessions from phase-locking their bursts.
                # With the coalescer the flush slack plays that role instead,
                # and phase lock is *wanted*: same-interval sessions flushed
                # together stay merged and keep sharing one wire frame.
                if self.ping_jitter_frac and self.coalescer is None:
                    remaining *= 1.0 + self.machine.rng.uniform(
                        -self.ping_jitter_frac, self.ping_jitter_frac
                    )
                yield self.sim.timeout(remaining)

    # ----------------------------------------------------------- interest (3.5)

    def _gauge_loop(self, session: TraceSession) -> Generator[Event, None, None]:
        while session.active and not session.declared_failed:
            yield from self.gauge_interest(session)
            yield self.sim.timeout(self.gauge_interval_ms)

    def gauge_interest(self, session: TraceSession) -> Generator[Event, None, None]:
        """Publish one GUAGE_INTEREST request (token attached, §5.1 flag)."""
        yield from self.publish_trace(
            session,
            TraceType.GUAGE_INTEREST,
            {"secured": session.secured, "entity_id": str(session.entity_id)},
            force=True,
        )

    def _on_interest_response(self, session: TraceSession, message: Message) -> None:
        self.sim.process(
            self._handle_interest_response(session, message),
            name=f"{self.broker.broker_id}.interest",
        )

    def _handle_interest_response(
        self, session: TraceSession, message: Message
    ) -> Generator[Event, None, None]:
        body = message.body
        if not isinstance(body, dict):
            return
        if message.signature is None:
            self.monitor.increment("trace.interest_unsigned")
            return
        yield from self.machine.charge(CryptoOp.TRACE_VERIFY)
        envelope = SignedEnvelope.from_dict(message.signature)
        if envelope.payload != body:
            self.monitor.increment("trace.interest_tampered")
            return
        try:
            cred = body["credentials"]
            tracker_key = RSAPublicKey(int(cred["n"]), int(cred["e"]))
            verify_payload(envelope, tracker_key)
        except (KeyError, TypeError, ValueError, SignatureError):
            self.monitor.increment("trace.interest_bad_signature")
            return
        try:
            from repro.tracing.interest import InterestCategory as IC

            categories = frozenset(IC(c) for c in body["categories"])
            tracker_id = str(body["tracker_id"])
        except (KeyError, TypeError, ValueError):
            self.monitor.increment("trace.interest_malformed")
            return

        session.interest.record(
            tracker_id,
            categories,
            self.machine.now(),
            response_topic=body.get("response_topic"),
            credential_subject=str(cred.get("subject", "")),
        )
        self.monitor.increment("trace.interest_recorded")

        # secured sessions: distribute the trace key once per tracker (§5.1)
        key = session.session_id.value.hex
        if (
            session.secured
            and session.trace_key is not None
            and tracker_id not in self._keyed_trackers.get(key, set())
            and body.get("response_topic")
        ):
            self._keyed_trackers.setdefault(key, set()).add(tracker_id)
            yield from self._distribute_trace_key(
                session, tracker_id, tracker_key, str(body["response_topic"])
            )

    def _distribute_trace_key(
        self,
        session: TraceSession,
        tracker_id: str,
        tracker_key: RSAPublicKey,
        response_topic: str,
    ) -> Generator[Event, None, None]:
        yield from self.machine.charge(CryptoOp.CERT_VERIFY)
        yield from self.machine.charge(CryptoOp.SEAL_PAYLOAD)
        payload = build_key_payload(
            session.trace_key,
            session.advertisement.trace_topic.hex,
            tracker_key,
            self.machine.rng,
        )
        self._publish_plain(response_topic, payload.to_dict())
        self.monitor.increment("trace.keys_distributed")
        # audit evidence for the key hand-off (repro.analytics.audit)
        self.monitor.journal.record(
            self.machine.now(),
            "key.distributed",
            principal=str(session.entity_id),
            entity=str(session.entity_id),
            broker=self.broker.broker_id,
            tracker=tracker_id,
        )

    # --------------------------------------------------------------- publication

    def publish_trace(
        self,
        session: TraceSession,
        trace_type: TraceType,
        payload: dict,
        origin_stamp_ms: float | None = None,
        force: bool = False,
    ) -> Generator[Event, None, None]:
        """Sign (and optionally encrypt) one trace and publish it.

        ``force`` bypasses interest gating for bootstrap/lifecycle traces
        (JOIN, GUAGE_INTEREST, DISCONNECT, REVERTING_TO_SILENT_MODE).
        """
        if session.token is None or session.token_private_key is None:
            self.monitor.increment("trace.publish_without_token")
            return
        now = self.machine.now()
        if session.token.expired(now):
            self.monitor.increment("trace.token_expired")
            return
        if not force and self.gate_by_interest:
            category = category_of(trace_type)
            if not session.interest.interested_in(category, now):
                self.monitor.increment("trace.suppressed_no_interest")
                return
            # a tracker can unsubscribe (or its broker can detach it) while
            # its gauged interest is still inside the TTL window; the
            # indexed matcher makes "anyone subscribed at all?" an
            # O(topic-depth) check, so skip the signing cost for traces
            # no subscriber anywhere would receive
            topic = session.topics.topic_for_trace(trace_type)
            if not self.broker.has_any_subscriber(topic.canonical):
                self.monitor.increment("trace.suppressed_no_subscriber")
                return

        body = {
            "trace_type": trace_type.value,
            "entity_id": str(session.entity_id),
            "trace_topic": session.advertisement.trace_topic.hex,
            "session": session.session_id.value.hex,
            "seq": session.next_trace_seq(),
            "payload": payload,
            "origin_stamp_ms": origin_stamp_ms,
            "broker_stamp_ms": now,
        }

        secured = session.secured and trace_type is not TraceType.GUAGE_INTEREST
        if secured:
            yield from self.machine.charge(CryptoOp.SECURE_WRAP)
            body = wrap_trace_body(body, session.trace_key, self.machine.rng)
            yield from self.machine.charge(CryptoOp.TRACE_SIGN_ENCRYPTED)
        else:
            yield from self.machine.charge(CryptoOp.TRACE_SIGN)
        envelope = sign_payload(body, session.token_private_key)

        from repro.messaging.topics import Topic

        topic = session.topics.topic_for_trace(trace_type)
        message = Message(
            topic=Topic.parse(topic.canonical),
            body=body,
            source=self.broker.broker_id,
            created_ms=now,
            signature=envelope.to_dict(),
            auth_token=session.token.to_dict(),
            encrypted=secured,
        )
        self.broker.publish_from_broker(message)
        self.monitor.increment(f"trace.published.{trace_type.value}")
        self.monitor.increment("trace.published_total")

    # ------------------------------------------------------------------- lookup

    def session_of(self, entity_id: str) -> TraceSession | None:
        return self.sessions_by_entity.get(entity_id)

    def active_sessions(self) -> list[TraceSession]:
        return [s for s in self.sessions.values() if s.active]
