"""Trace types (Table 1) and trace payloads.

The paper's table — including its charming ``GUAGE_INTEREST`` spelling,
which we preserve verbatim for fidelity — enumerates every trace a broker
reports to trackers, from entity state information through failure
detection to load and network metrics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ValidationError


class EntityState(enum.Enum):
    """States a traced entity passes through (section 3.3)."""

    INITIALIZING = "INITIALIZING"
    RECOVERING = "RECOVERING"
    READY = "READY"
    SHUTDOWN = "SHUTDOWN"


#: Legal state transitions of the traced-entity state machine.
VALID_TRANSITIONS: dict[EntityState, frozenset[EntityState]] = {
    EntityState.INITIALIZING: frozenset({EntityState.READY, EntityState.SHUTDOWN}),
    EntityState.READY: frozenset({EntityState.RECOVERING, EntityState.SHUTDOWN}),
    EntityState.RECOVERING: frozenset({EntityState.READY, EntityState.SHUTDOWN}),
    EntityState.SHUTDOWN: frozenset(),
}


class TraceType(enum.Enum):
    """Every trace type of Table 1."""

    # state information reported by the traced entity
    INITIALIZING = "INITIALIZING"
    RECOVERING = "RECOVERING"
    READY = "READY"
    SHUTDOWN = "SHUTDOWN"
    # broker-generated failure detection
    FAILURE_SUSPICION = "FAILURE_SUSPICION"
    FAILED = "FAILED"
    DISCONNECT = "DISCONNECT"
    # interest gauging (paper's spelling)
    GUAGE_INTEREST = "GUAGE_INTEREST"
    # tracing lifecycle
    JOIN = "JOIN"
    REVERTING_TO_SILENT_MODE = "REVERTING_TO_SILENT_MODE"
    # heartbeat
    ALLS_WELL = "ALLS_WELL"
    # load & network
    LOAD_INFORMATION = "LOAD_INFORMATION"
    NETWORK_METRICS = "NETWORK_METRICS"

    @classmethod
    def for_state(cls, state: EntityState) -> "TraceType":
        """The trace type announcing a state."""
        return cls(state.value)


#: Trace types that signal a change in the status of the traced entity and
#: are therefore published on the ChangeNotifications topic (Table 2).
CHANGE_NOTIFICATION_TYPES = frozenset(
    {
        TraceType.JOIN,
        TraceType.FAILURE_SUSPICION,
        TraceType.FAILED,
        TraceType.DISCONNECT,
        TraceType.REVERTING_TO_SILENT_MODE,
    }
)

#: Trace types carrying entity state transitions (StateTransitions topic).
STATE_TRANSITION_TYPES = frozenset(
    {
        TraceType.INITIALIZING,
        TraceType.RECOVERING,
        TraceType.READY,
        TraceType.SHUTDOWN,
    }
)


@dataclass(frozen=True, slots=True)
class LoadInformation:
    """Load at the traced entity's host: CPU, memory and workload."""

    cpu_utilization: float
    memory_used_mb: float
    memory_total_mb: float
    workload: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.cpu_utilization <= 1.0:
            raise ValidationError(f"cpu_utilization out of [0,1]: {self.cpu_utilization}")
        if self.memory_used_mb < 0 or self.memory_total_mb <= 0:
            raise ValidationError("memory figures must be non-negative / positive")
        if self.memory_used_mb > self.memory_total_mb:
            raise ValidationError("memory_used_mb exceeds memory_total_mb")
        if self.workload < 0:
            raise ValidationError("workload must be non-negative")

    @property
    def memory_utilization(self) -> float:
        return self.memory_used_mb / self.memory_total_mb

    def to_dict(self) -> dict:
        return {
            "cpu_utilization": self.cpu_utilization,
            "memory_used_mb": self.memory_used_mb,
            "memory_total_mb": self.memory_total_mb,
            "workload": self.workload,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LoadInformation":
        return cls(
            cpu_utilization=float(data["cpu_utilization"]),
            memory_used_mb=float(data["memory_used_mb"]),
            memory_total_mb=float(data["memory_total_mb"]),
            workload=int(data["workload"]),
        )


@dataclass(frozen=True, slots=True)
class NetworkMetrics:
    """Metrics about the network realm linking broker and entity.

    Derived by the broker from its ping stream: loss rates, transit delay
    and bandwidth (section 3.3); out-of-order rate comes with UDP.
    """

    loss_rate: float
    mean_rtt_ms: float
    jitter_ms: float
    out_of_order_rate: float
    bandwidth_estimate_kbps: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValidationError(f"loss_rate out of [0,1]: {self.loss_rate}")
        if not 0.0 <= self.out_of_order_rate <= 1.0:
            raise ValidationError(
                f"out_of_order_rate out of [0,1]: {self.out_of_order_rate}"
            )
        if self.mean_rtt_ms < 0 or self.jitter_ms < 0:
            raise ValidationError("delay metrics must be non-negative")

    def to_dict(self) -> dict:
        return {
            "loss_rate": self.loss_rate,
            "mean_rtt_ms": self.mean_rtt_ms,
            "jitter_ms": self.jitter_ms,
            "out_of_order_rate": self.out_of_order_rate,
            "bandwidth_estimate_kbps": self.bandwidth_estimate_kbps,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NetworkMetrics":
        return cls(
            loss_rate=float(data["loss_rate"]),
            mean_rtt_ms=float(data["mean_rtt_ms"]),
            jitter_ms=float(data["jitter_ms"]),
            out_of_order_rate=float(data["out_of_order_rate"]),
            bandwidth_estimate_kbps=float(data["bandwidth_estimate_kbps"]),
        )
