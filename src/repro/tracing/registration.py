"""Traced-entity registration messages and recovery timing (section 3.2).

The registration request carries: the entity's identifier and credentials,
the trace topic advertisement (provenance), a request identifier for
response correlation, and the entity's signature over all of it
(demonstrating possession of the credentials and providing tamper
evidence).  The success response carries the request identifier and the
broker-minted session identifier, sealed so only the entity can read it.

Re-registration is also the system's recovery path: a crashed entity, or
an entity whose broker died, comes back by registering again (with a new
broker if necessary).  :class:`RecoveryProbe` times that loop — from the
moment a failure is *detected* (FAILED verdict, or a fault controller
initiating failover) to the moment the entity's re-registration succeeds
— and publishes it as the ``trace.recovery_ms`` histogram.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.certificates import Certificate
from repro.crypto.rsa import RSAPublicKey
from repro.crypto.signing import SignedEnvelope
from repro.errors import RegistrationError
from repro.obs import EventJournal, MetricsRegistry
from repro.tdn.advertisement import TopicAdvertisement
from repro.util.identifiers import EntityId, RequestId, SessionId, UUID128


@dataclass(slots=True)
class RecoveryProbe:
    """Measures detection → re-registration latency per entity.

    One probe is shared by every :class:`~repro.tracing.broker_ops.TraceManager`
    in a deployment (installed by the fault controller).  ``mark_detected``
    is first-wins per entity — the earliest of "the tracker declared FAILED"
    and "the fault controller started failover" opens the window; the next
    successful registration for that entity closes it and observes
    ``trace.recovery_ms``.
    """

    metrics: MetricsRegistry
    journal: EventJournal | None = None
    _detected_at: dict[str, float] = field(default_factory=dict)
    _causes: dict[str, str] = field(default_factory=dict)

    def mark_detected(self, entity_id: str, at_ms: float, cause: str) -> None:
        """Open the recovery window for an entity (first signal wins)."""
        if entity_id in self._detected_at:
            return
        self._detected_at[entity_id] = at_ms
        self._causes[entity_id] = cause
        self.metrics.counter("trace.recovery.detected").inc()
        if self.journal is not None:
            self.journal.record(
                at_ms, "recovery.detected", entity=entity_id, cause=cause
            )

    def mark_reregistered(self, entity_id: str, at_ms: float) -> None:
        """Close the window on a successful registration, if one is open."""
        detected = self._detected_at.pop(entity_id, None)
        if detected is None:
            return
        cause = self._causes.pop(entity_id, "")
        elapsed = at_ms - detected
        self.metrics.histogram("trace.recovery_ms").observe(elapsed)
        self.metrics.counter("trace.recovery.completed").inc()
        if self.journal is not None:
            self.journal.record(
                at_ms,
                "recovery.completed",
                entity=entity_id,
                cause=cause,
                recovery_ms=elapsed,
            )

    def pending(self) -> tuple[str, ...]:
        """Entities whose recovery window is still open (sorted)."""
        return tuple(sorted(self._detected_at))


@dataclass(frozen=True, slots=True)
class TraceRegistrationRequest:
    """What an entity publishes on the Registration topic."""

    entity_id: EntityId
    credentials: Certificate
    advertisement: TopicAdvertisement
    request_id: RequestId
    signature: SignedEnvelope

    @staticmethod
    def signing_payload(
        entity_id: EntityId,
        credentials: Certificate,
        advertisement: TopicAdvertisement,
        request_id: RequestId,
    ) -> dict:
        """The canonical fields the entity signs."""
        return {
            "entity_id": str(entity_id),
            "credential_fingerprint": credentials.fingerprint(),
            "trace_topic": advertisement.trace_topic.hex,
            "request_id": request_id.value,
        }

    def expected_payload(self) -> dict:
        return self.signing_payload(
            self.entity_id, self.credentials, self.advertisement, self.request_id
        )

    def to_dict(self) -> dict:
        return {
            "entity_id": str(self.entity_id),
            "credentials": {
                "subject": self.credentials.subject,
                "issuer": self.credentials.issuer,
                "n": self.credentials.public_key.n,
                "e": self.credentials.public_key.e,
                "serial": self.credentials.serial,
                "not_before_ms": self.credentials.not_before_ms,
                "not_after_ms": self.credentials.not_after_ms,
                "signature": self.credentials.signature,
            },
            "advertisement": self.advertisement.to_dict(),
            "request_id": self.request_id.value,
            "signature": self.signature.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceRegistrationRequest":
        try:
            cred = data["credentials"]
            certificate = Certificate(
                subject=str(cred["subject"]),
                issuer=str(cred["issuer"]),
                public_key=RSAPublicKey(int(cred["n"]), int(cred["e"])),
                serial=int(cred["serial"]),
                not_before_ms=float(cred["not_before_ms"]),
                not_after_ms=float(cred["not_after_ms"]),
                signature=bytes(cred["signature"]),
            )
            return cls(
                entity_id=EntityId(str(data["entity_id"])),
                credentials=certificate,
                advertisement=TopicAdvertisement.from_dict(data["advertisement"]),
                request_id=RequestId(int(data["request_id"])),
                signature=SignedEnvelope.from_dict(data["signature"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RegistrationError(f"malformed registration request: {exc}") from exc


@dataclass(frozen=True, slots=True)
class RegistrationResponse:
    """Success response: request id + fresh session id (sealed in transit)."""

    request_id: RequestId
    session_id: SessionId
    broker_id: str
    broker_public_key_n: int
    broker_public_key_e: int

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id.value,
            "session_id": self.session_id.value.hex,
            "broker_id": self.broker_id,
            "broker_n": self.broker_public_key_n,
            "broker_e": self.broker_public_key_e,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RegistrationResponse":
        return cls(
            request_id=RequestId(int(data["request_id"])),
            session_id=SessionId(UUID128.from_hex(data["session_id"])),
            broker_id=str(data["broker_id"]),
            broker_public_key_n=int(data["broker_n"]),
            broker_public_key_e=int(data["broker_e"]),
        )

    @property
    def broker_public_key(self) -> RSAPublicKey:
        return RSAPublicKey(self.broker_public_key_n, self.broker_public_key_e)


@dataclass(frozen=True, slots=True)
class RegistrationError_Response:
    """Error response returned when verification fails (section 3.2)."""

    request_id: RequestId
    reason: str

    def to_dict(self) -> dict:
        return {"request_id": self.request_id.value, "error": self.reason}
