"""Traced-entity registration messages (section 3.2).

The registration request carries: the entity's identifier and credentials,
the trace topic advertisement (provenance), a request identifier for
response correlation, and the entity's signature over all of it
(demonstrating possession of the credentials and providing tamper
evidence).  The success response carries the request identifier and the
broker-minted session identifier, sealed so only the entity can read it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.certificates import Certificate
from repro.crypto.rsa import RSAPublicKey
from repro.crypto.signing import SignedEnvelope
from repro.errors import RegistrationError
from repro.tdn.advertisement import TopicAdvertisement
from repro.util.identifiers import EntityId, RequestId, SessionId, UUID128


@dataclass(frozen=True, slots=True)
class TraceRegistrationRequest:
    """What an entity publishes on the Registration topic."""

    entity_id: EntityId
    credentials: Certificate
    advertisement: TopicAdvertisement
    request_id: RequestId
    signature: SignedEnvelope

    @staticmethod
    def signing_payload(
        entity_id: EntityId,
        credentials: Certificate,
        advertisement: TopicAdvertisement,
        request_id: RequestId,
    ) -> dict:
        """The canonical fields the entity signs."""
        return {
            "entity_id": str(entity_id),
            "credential_fingerprint": credentials.fingerprint(),
            "trace_topic": advertisement.trace_topic.hex,
            "request_id": request_id.value,
        }

    def expected_payload(self) -> dict:
        return self.signing_payload(
            self.entity_id, self.credentials, self.advertisement, self.request_id
        )

    def to_dict(self) -> dict:
        return {
            "entity_id": str(self.entity_id),
            "credentials": {
                "subject": self.credentials.subject,
                "issuer": self.credentials.issuer,
                "n": self.credentials.public_key.n,
                "e": self.credentials.public_key.e,
                "serial": self.credentials.serial,
                "not_before_ms": self.credentials.not_before_ms,
                "not_after_ms": self.credentials.not_after_ms,
                "signature": self.credentials.signature,
            },
            "advertisement": self.advertisement.to_dict(),
            "request_id": self.request_id.value,
            "signature": self.signature.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceRegistrationRequest":
        try:
            cred = data["credentials"]
            certificate = Certificate(
                subject=str(cred["subject"]),
                issuer=str(cred["issuer"]),
                public_key=RSAPublicKey(int(cred["n"]), int(cred["e"])),
                serial=int(cred["serial"]),
                not_before_ms=float(cred["not_before_ms"]),
                not_after_ms=float(cred["not_after_ms"]),
                signature=bytes(cred["signature"]),
            )
            return cls(
                entity_id=EntityId(str(data["entity_id"])),
                credentials=certificate,
                advertisement=TopicAdvertisement.from_dict(data["advertisement"]),
                request_id=RequestId(int(data["request_id"])),
                signature=SignedEnvelope.from_dict(data["signature"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RegistrationError(f"malformed registration request: {exc}") from exc


@dataclass(frozen=True, slots=True)
class RegistrationResponse:
    """Success response: request id + fresh session id (sealed in transit)."""

    request_id: RequestId
    session_id: SessionId
    broker_id: str
    broker_public_key_n: int
    broker_public_key_e: int

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id.value,
            "session_id": self.session_id.value.hex,
            "broker_id": self.broker_id,
            "broker_n": self.broker_public_key_n,
            "broker_e": self.broker_public_key_e,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RegistrationResponse":
        return cls(
            request_id=RequestId(int(data["request_id"])),
            session_id=SessionId(UUID128.from_hex(data["session_id"])),
            broker_id=str(data["broker_id"]),
            broker_public_key_n=int(data["broker_n"]),
            broker_public_key_e=int(data["broker_e"]),
        )

    @property
    def broker_public_key(self) -> RSAPublicKey:
        return RSAPublicKey(self.broker_public_key_n, self.broker_public_key_e)


@dataclass(frozen=True, slots=True)
class RegistrationError_Response:
    """Error response returned when verification fails (section 3.2)."""

    request_id: RequestId
    reason: str

    def to_dict(self) -> dict:
        return {"request_id": self.request_id.value, "error": self.reason}
