"""Ping coalescing: one wire frame for co-located traced entities.

A broker hosting many entities on the same machine pays per-frame costs —
ingress processing, per-delivery charges, and ``transport.bytes.sent`` —
for pings that differ only in their session envelope.  The
:class:`PingCoalescer` batches pings that come due within a short window
(``DEFAULT_COALESCE_WINDOW_MS``) and whose target entities share a host
into a single ``ping_batch`` frame, delivered to one delegate entity and
demultiplexed host-side to its co-located siblings.

Detection semantics are unchanged: every session still gets its own
monotonically numbered :class:`~repro.tracing.pings.Ping`, its history
records the ping at the (common) flush instant, and each entity answers —
or fails to answer — independently, so miss counting, suspicion and
failure verdicts behave exactly as with per-session frames.  The relay
below lives at the *host* level: a crashed delegate still demultiplexes
the batch (its host agent is alive even when the entity process is not),
only its own response is suppressed.

Singleton groups are published as plain legacy ``ping`` frames, so a
deployment with no co-location sends bit-identical bytes per ping and
differs from the uncoalesced build only by the flush-window delay.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable
from weakref import WeakKeyDictionary

from repro.tracing.pings import Ping

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.sim.machine import Machine
    from repro.tracing.broker_ops import TraceManager
    from repro.tracing.session import TraceSession

#: Upper bound on how long a due ping may wait for co-located company
#: before flushing.  The effective slack per flush is
#: ``SLACK_FRAC * current_interval_ms`` capped at this value — the timer
#: coalescing model operating systems use: every timer may fire a little
#: late, and timers that land in the same slack window share one wakeup.
DEFAULT_COALESCE_WINDOW_MS = 50.0

#: Fraction of the ping interval a ping may be delayed to join a batch,
#: keeping cadence and detection-timing shift under 5% at any interval.
SLACK_FRAC = 0.05

#: Wire ``kind`` of a batched ping frame.
PING_BATCH_KIND = "ping_batch"

#: Host-level demultiplexers: machine -> entity id -> ping sink.  Keyed
#: weakly so dead deployments do not pin their machines (and sinks) alive.
_PING_SINKS: "WeakKeyDictionary[Machine, dict[str, Callable[[Ping], None]]]" = (
    WeakKeyDictionary()
)


def register_ping_sink(
    machine: "Machine", entity_id: str, sink: Callable[[Ping], None]
) -> None:
    """Register the host-level ping demultiplexer for one entity.

    Called by :class:`~repro.tracing.entity.TracedEntity` when it
    subscribes to its broker->entity session topic; a re-registration for
    the same id overwrites (latest session wins).
    """
    _PING_SINKS.setdefault(machine, {})[entity_id] = sink


def unregister_ping_sink(machine: "Machine", entity_id: str) -> None:
    """Forget an entity's ping sink; a no-op when absent."""
    sinks = _PING_SINKS.get(machine)
    if sinks is not None:
        sinks.pop(entity_id, None)


def relay_ping_batch(machine: "Machine", body: dict) -> int:
    """Demultiplex one ``ping_batch`` frame to the host's registered sinks.

    Returns how many entries found a sink.  Entries for entities not on
    this machine (or long gone) are dropped silently — the broker judges
    the missing responses exactly as it judges any lost ping.
    """
    sinks = _PING_SINKS.get(machine)
    delivered = 0
    for entry in body.get("pings", ()):
        sink = sinks.get(str(entry.get("entity_id"))) if sinks else None
        if sink is None:
            continue
        try:
            ping = Ping(
                number=int(entry["number"]), issued_ms=float(entry["issued_ms"])
            )
        except (KeyError, TypeError, ValueError):
            continue
        sink(ping)
        delivered += 1
    return delivered


class PingCoalescer:
    """Batches due pings from one broker's sessions into shared frames.

    Ping loops :meth:`submit` their session when a ping comes due and then
    sleep until the returned flush delay elapses.  At flush time the
    pending sessions are grouped by host (via ``locate_host``), each group
    gets one frame — a legacy ``ping`` for singleton groups, a
    ``ping_batch`` for co-located ones — and every member session records
    its own freshly numbered ping.
    """

    def __init__(
        self,
        manager: "TraceManager",
        window_ms: float = DEFAULT_COALESCE_WINDOW_MS,
        locate_host: Callable[[str], str | None] | None = None,
    ) -> None:
        self.manager = manager
        self.window_ms = window_ms
        self.locate_host = locate_host
        self._pending: list["TraceSession"] = []
        self._flush_at: float | None = None

    def submit(self, session: "TraceSession") -> float:
        """Queue one session's due ping; returns the delay until its flush.

        The first submitter of a window opens it with slack proportional
        to its own ping interval (capped at ``window_ms``); later
        submitters whose pings come due before the flush join for free.
        Sessions flushed together resume together, so same-interval
        co-located sessions that merge once stay merged.
        """
        sim = self.manager.sim
        if self._flush_at is None:
            slack = min(self.window_ms, SLACK_FRAC * session.current_interval_ms)
            self._flush_at = sim.now + slack
            sim.call_at(self._flush_at, self._flush)
        self._pending.append(session)
        return max(0.0, self._flush_at - sim.now)

    def _flush(self) -> None:
        manager = self.manager
        pending, self._pending = self._pending, []
        self._flush_at = None
        if manager.broker.failed:
            # the host died inside the window: a dead broker issues no
            # pings; the loops thaw via their own broker.failed branch
            return
        live = [s for s in pending if s.active and not s.declared_failed]

        groups: dict[str, list["TraceSession"]] = {}
        for session in live:
            entity_id = str(session.entity_id)
            host = self.locate_host(entity_id) if self.locate_host else None
            # entities whose host is unknown never share a frame
            key = f"host:{host}" if host else f"solo:{entity_id}"
            groups.setdefault(key, []).append(session)

        metrics = manager.monitor.metrics
        for key in sorted(groups):
            sessions = sorted(groups[key], key=lambda s: str(s.entity_id))
            now = manager.machine.now()
            issued: list[tuple["TraceSession", Ping]] = []
            for session in sessions:
                ping = Ping(number=session.next_ping_number(), issued_ms=now)
                session.history.record_ping(ping)
                issued.append((session, ping))
                manager.monitor.increment("trace.pings_sent")
                metrics.counter("tracker.pings.sent").inc()
            if len(issued) == 1:
                session, ping = issued[0]
                manager._publish_plain(
                    session.topics.broker_to_entity(session.session_id).canonical,
                    ping.to_dict(),
                )
                continue
            delegate = self._choose_delegate(sessions)
            body = {
                "kind": PING_BATCH_KIND,
                "pings": [
                    {
                        "entity_id": str(session.entity_id),
                        "number": ping.number,
                        "issued_ms": ping.issued_ms,
                    }
                    for session, ping in issued
                ],
            }
            manager._publish_plain(
                delegate.topics.broker_to_entity(delegate.session_id).canonical,
                body,
            )
            metrics.counter("tracker.pings.coalesced").inc(len(issued) - 1)
            metrics.histogram("tracker.ping.batch_size").observe(float(len(issued)))

    def _choose_delegate(self, sessions: list["TraceSession"]) -> "TraceSession":
        """First (by entity id) session whose client link is still attached.

        A detached delegate would swallow the whole batch for its
        co-located siblings; falling back to the first session keeps the
        choice deterministic when every link is gone.
        """
        broker = self.manager.broker
        for session in sessions:
            if broker.has_client(str(session.entity_id)):
                return session
        return sessions[0]
