"""Derived trace topics (Table 2 and sections 3.1-3.2, 3.5).

All derivative topics combine static prefixes/suffixes with the entity's
UUID trace topic.  Because the UUID is unguessable and its discovery is
TDN-restricted, knowing these topic strings *is* the capability to interact
with the trace stream (section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TopicError
from repro.messaging.topics import Topic
from repro.tracing.interest import InterestCategory
from repro.tracing.traces import (
    CHANGE_NOTIFICATION_TYPES,
    STATE_TRANSITION_TYPES,
    TraceType,
)
from repro.util.identifiers import EntityId, SessionId, UUID128

#: The topic every traced entity uses to register with a broker (§3.2).
REGISTRATION_TOPIC = Topic.parse(
    "Constrained/Traces/Broker/Subscribe-Only/Registration"
)


@dataclass(frozen=True, slots=True)
class TraceTopicSet:
    """All derived topics for one traced entity's trace topic."""

    trace_topic: UUID128
    entity_id: EntityId

    # ---- broker -> trackers publication topics (Table 2) ----------------------

    def _publish_topic(self, suffix: str) -> Topic:
        return Topic.of(
            "Constrained", "Traces", "Broker", "Publish-Only",
            self.trace_topic.hex, suffix,
        )

    @property
    def change_notifications(self) -> Topic:
        """JOIN, FAILURE_SUSPICION, FAILED, DISCONNECT, REVERTING_TO_SILENT_MODE."""
        return self._publish_topic("ChangeNotifications")

    @property
    def all_updates(self) -> Topic:
        """ALLS_WELL heartbeats."""
        return self._publish_topic("AllUpdates")

    @property
    def state_transitions(self) -> Topic:
        """INITIALIZING / RECOVERING / READY / SHUTDOWN reports."""
        return self._publish_topic("StateTransitions")

    @property
    def load(self) -> Topic:
        """LOAD_INFORMATION reports."""
        return self._publish_topic("Load")

    @property
    def network_metrics(self) -> Topic:
        """NETWORK_METRICS reports."""
        return self._publish_topic("NetworkMetrics")

    # ---- interest gauging (§3.5) ------------------------------------------------

    @property
    def interest_request(self) -> Topic:
        """Broker publishes GUAGE_INTEREST here."""
        return self._publish_topic("Interest")

    @property
    def interest_response(self) -> Topic:
        """Trackers publish their interest sets here (broker subscribes)."""
        return Topic.of(
            "Constrained", "Traces", "Broker", "Subscribe-Only",
            self.trace_topic.hex, "Interest",
        )

    # ---- session topics (§3.2) ----------------------------------------------------

    def entity_to_broker(self, session: SessionId) -> Topic:
        """Entity-initiated traffic (ping responses, state reports, keys).

        ``Limited`` distribution keeps the hosting broker's subscription
        local — no other broker learns which broker hosts the entity.
        """
        return Topic.of(
            "Constrained", "Traces", "Broker", "Subscribe-Only", "Limited",
            self.trace_topic.hex, session.topic_segment,
        )

    def broker_to_entity(self, session: SessionId) -> Topic:
        """Broker-initiated traffic to the entity (pings)."""
        return Topic.of(
            "Constrained", "Traces", str(self.entity_id), "Subscribe-Only",
            self.trace_topic.hex, session.topic_segment,
        )

    # ---- registration response (per request) ------------------------------------

    def registration_response(self, entity_id: EntityId, request_value: int) -> Topic:
        """Where the broker sends the (sealed) registration response."""
        return Topic.of(
            "Constrained", "Traces", str(entity_id), "Subscribe-Only",
            "Registration-Response", str(request_value),
        )

    # ---- tracker key distribution (§5.1) -------------------------------------------

    def key_delivery(self, tracker_id: str) -> Topic:
        """Per-tracker topic for secure trace-key payloads."""
        return Topic.of(
            "Constrained", "Traces", tracker_id, "Subscribe-Only",
            self.trace_topic.hex, "KeyDelivery",
        )

    # ---- lookup helpers -----------------------------------------------------------

    def topic_for_trace(self, trace_type: TraceType) -> Topic:
        """The publication topic Table 2 assigns to a trace type."""
        if trace_type in CHANGE_NOTIFICATION_TYPES:
            return self.change_notifications
        if trace_type in STATE_TRANSITION_TYPES:
            return self.state_transitions
        if trace_type is TraceType.ALLS_WELL:
            return self.all_updates
        if trace_type is TraceType.LOAD_INFORMATION:
            return self.load
        if trace_type is TraceType.NETWORK_METRICS:
            return self.network_metrics
        if trace_type is TraceType.GUAGE_INTEREST:
            return self.interest_request
        raise TopicError(f"no publication topic for {trace_type}")

    def topic_for_category(self, category: InterestCategory) -> Topic:
        return {
            InterestCategory.CHANGE_NOTIFICATIONS: self.change_notifications,
            InterestCategory.ALL_UPDATES: self.all_updates,
            InterestCategory.STATE_TRANSITIONS: self.state_transitions,
            InterestCategory.LOAD: self.load,
            InterestCategory.NETWORK_METRICS: self.network_metrics,
        }[category]

    def all_publication_topics(self) -> list[Topic]:
        return [
            self.change_notifications,
            self.all_updates,
            self.state_transitions,
            self.load,
            self.network_metrics,
        ]
