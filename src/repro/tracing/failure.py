"""Adaptive ping scheduling and failure detection (section 3.3).

"An entity is pinged based on whether the ping interval has elapsed.
Depending on the history of the past pings and the duration for which a
traced entity has been active, this ping interval is varied.  If
consecutive pings do not have responses associated with them, the ping
interval is reduced to hasten the failure detection of the entity."

"If a ping response is not received for a set of successive pings ... a
FAILURE_SUSPICION trace is reported.  Lack of responses ... for additional
pings ... is taken as a sign that the traced entity has failed, and a
FAILED trace is issued."

Detection thresholds from the paper, as encoded by the defaults below:

* a response is *missed* once it is **400 ms** overdue
  (``AdaptivePingPolicy.response_deadline_ms``);
* **3** consecutive misses → FAILURE_SUSPICION
  (``FailureDetector.suspicion_threshold``);
* **6** consecutive misses → FAILED, monotone — only re-registration
  creates a fresh session (``FailureDetector.failure_threshold``);
* the adaptive interval moves between **125 ms** and **8000 ms** around a
  **1000 ms** base: x1.25 growth after a clean mature window (30 s),
  x0.5 shrink per trailing miss.

Misses are counted over the last-10-pings window kept by
``tracing/pings.py``; ``tracker.detection.latency_ms`` records the span
from the last sign of life to the FAILED declaration (Figure 5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tracing.pings import PingHistory


@dataclass(frozen=True, slots=True)
class AdaptivePingPolicy:
    """How the ping interval evolves with observed behaviour.

    * A stable entity (no losses in the window, active longer than
      ``maturity_ms``) earns a longer interval, up to ``max_interval_ms``.
    * Any missed response shrinks the interval by ``shrink_factor`` per
      trailing miss, down to ``min_interval_ms``, hastening detection.
    """

    base_interval_ms: float = 1000.0
    min_interval_ms: float = 125.0
    max_interval_ms: float = 8000.0
    growth_factor: float = 1.25
    shrink_factor: float = 0.5
    maturity_ms: float = 30_000.0
    response_deadline_ms: float = 400.0

    def __post_init__(self) -> None:
        if not (0 < self.min_interval_ms <= self.base_interval_ms <= self.max_interval_ms):
            raise ConfigurationError("require min <= base <= max interval")
        if self.growth_factor < 1.0:
            raise ConfigurationError("growth_factor must be >= 1")
        if not 0.0 < self.shrink_factor < 1.0:
            raise ConfigurationError("shrink_factor must be in (0, 1)")

    def next_interval_ms(
        self,
        current_interval_ms: float,
        history: PingHistory,
        active_duration_ms: float,
        now_ms: float,
    ) -> float:
        """The interval to use for the next ping."""
        misses = history.consecutive_misses(now_ms, self.response_deadline_ms)
        if misses > 0:
            shrunk = current_interval_ms * (self.shrink_factor ** misses)
            return max(self.min_interval_ms, shrunk)
        if (
            active_duration_ms >= self.maturity_ms
            and history.loss_rate(now_ms, self.response_deadline_ms) == 0.0
            and len(history) >= history.window
        ):
            return min(self.max_interval_ms, current_interval_ms * self.growth_factor)
        # young or mildly lossy entity: drift back toward the base interval
        if current_interval_ms < self.base_interval_ms:
            return min(self.base_interval_ms, current_interval_ms / self.shrink_factor)
        return current_interval_ms


class DetectorVerdict(enum.Enum):
    """Failure-detector output after each judged ping."""

    ALIVE = "alive"
    SUSPECT = "suspect"
    FAILED = "failed"


@dataclass(slots=True)
class FailureDetector:
    """Escalating miss-count detector.

    ``suspicion_threshold`` consecutive unanswered pings raise suspicion;
    ``failure_threshold`` consecutive misses declare failure.  Any response
    resets to ALIVE (entities can come back from suspicion, not from
    declared failure — a recovered entity re-registers, section 3.2).
    """

    suspicion_threshold: int = 3
    failure_threshold: int = 6
    _verdict: DetectorVerdict = DetectorVerdict.ALIVE

    def __post_init__(self) -> None:
        from repro.tracing.pings import PING_HISTORY_WINDOW

        if not (0 < self.suspicion_threshold < self.failure_threshold):
            raise ConfigurationError(
                "require 0 < suspicion_threshold < failure_threshold"
            )
        if self.failure_threshold > PING_HISTORY_WINDOW:
            # the miss counter is computed over the last-10-pings window
            # (section 3.3), so a larger threshold could never be reached
            raise ConfigurationError(
                f"failure_threshold {self.failure_threshold} exceeds the "
                f"ping-history window ({PING_HISTORY_WINDOW}) and would "
                "never fire"
            )

    @property
    def verdict(self) -> DetectorVerdict:
        return self._verdict

    def judge(self, consecutive_misses: int) -> DetectorVerdict:
        """Update the verdict from the current trailing-miss count.

        Monotone towards failure: once FAILED, the verdict stays FAILED.
        """
        if self._verdict is DetectorVerdict.FAILED:
            return self._verdict
        if consecutive_misses >= self.failure_threshold:
            self._verdict = DetectorVerdict.FAILED
        elif consecutive_misses >= self.suspicion_threshold:
            self._verdict = DetectorVerdict.SUSPECT
        else:
            self._verdict = DetectorVerdict.ALIVE
        return self._verdict

    def reset(self) -> None:
        """Fresh detector for a re-registered entity."""
        self._verdict = DetectorVerdict.ALIVE
