"""Broker-side session state for one traced entity."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.auth.tokens import AuthorizationToken
from repro.crypto.keys import SymmetricKey
from repro.crypto.rsa import RSAPrivateKey
from repro.tdn.advertisement import TopicAdvertisement
from repro.tracing.failure import AdaptivePingPolicy, FailureDetector
from repro.tracing.interest import InterestRegistry
from repro.tracing.pings import PingHistory
from repro.tracing.topics import TraceTopicSet
from repro.tracing.traces import EntityState
from repro.util.identifiers import EntityId, SessionId


@dataclass(slots=True)
class TraceSession:
    """Everything the hosting broker knows about one traced entity."""

    entity_id: EntityId
    session_id: SessionId
    advertisement: TopicAdvertisement
    topics: TraceTopicSet
    started_ms: float
    ping_policy: AdaptivePingPolicy = field(default_factory=AdaptivePingPolicy)
    detector: FailureDetector = field(default_factory=FailureDetector)
    history: PingHistory = field(default_factory=PingHistory)
    interest: InterestRegistry = field(default_factory=InterestRegistry)

    # delegation (section 4.3)
    token: AuthorizationToken | None = None
    token_private_key: RSAPrivateKey | None = None

    # confidentiality (section 5.1)
    trace_key: SymmetricKey | None = None

    # signing-cost optimization (section 6.3): shared entity<->broker key
    channel_key: SymmetricKey | None = None

    # liveness bookkeeping
    entity_state: EntityState = EntityState.INITIALIZING
    current_interval_ms: float = 0.0
    ping_number: int = 0
    trace_seq: int = 0
    active: bool = True            # set False on silent mode / shutdown
    declared_failed: bool = False
    suspicion_announced: bool = False

    def __post_init__(self) -> None:
        if self.current_interval_ms <= 0:
            self.current_interval_ms = self.ping_policy.base_interval_ms

    @property
    def secured(self) -> bool:
        """Are this session's traces confidentiality-protected?"""
        return self.trace_key is not None

    @property
    def uses_symmetric_channel(self) -> bool:
        """Is the section-6.3 signing optimization active?"""
        return self.channel_key is not None

    def next_ping_number(self) -> int:
        number = self.ping_number
        self.ping_number += 1
        return number

    def next_trace_seq(self) -> int:
        """Session-scoped sequence number stamped into published traces,
        letting trackers detect missed traces on lossy transports."""
        seq = self.trace_seq
        self.trace_seq += 1
        return seq

    def active_duration_ms(self, now_ms: float) -> float:
        return now_ms - self.started_ms
