"""Pings, ping responses and the broker's ping history (section 3.3).

"The ping message issued by a broker contains a monotonically increasing
message number and the timestamp at which it was issued.  A ping response
must include both. The message number allows a broker to keep track of
message losses and out-of-order delivery, while the timestamp allows the
broker to compute network latencies."

"For every traced entity, a broker maintains ... the response times (and
loss rates) associated with the last 10 pings."

Paper detection thresholds encoded here and in ``tracing/failure.py``:

* history window: the last **10** pings (``PING_HISTORY_WINDOW``);
* a ping is judged *missed* once its response is **400 ms** overdue
  (``AdaptivePingPolicy.response_deadline_ms``);
* **3** consecutive misses raise a FAILURE_SUSPICION trace, **6** declare
  the entity FAILED (``FailureDetector`` defaults, section 3.3);
* the ping interval adapts between **125 ms** and **8000 ms** around a
  1000 ms base (growth x1.25 on answered, shrink x0.5 on missed).

Broker-restart incarnations: a broker that crashes and recovers keeps its
``PingHistory`` objects, but their windowed state describes the *previous*
incarnation — in particular the highest-answered watermark and the stale
unanswered records issued before the crash.  ``reset_incarnation()`` clears
that windowed state (records, watermark, last-ping timestamp) while
preserving cumulative out-of-order statistics, so the first post-restart
responses are judged on their own merits instead of being suppressed or
mis-matched against pre-crash pings.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.obs import MetricsRegistry
from repro.tracing.traces import NetworkMetrics

#: Window size of the broker's per-entity ping history.
PING_HISTORY_WINDOW = 10


@dataclass(frozen=True, slots=True)
class Ping:
    """Broker-to-entity ping."""

    number: int
    issued_ms: float

    def to_dict(self) -> dict:
        return {"kind": "ping", "number": self.number, "issued_ms": self.issued_ms}

    @classmethod
    def from_dict(cls, data: dict) -> "Ping":
        return cls(number=int(data["number"]), issued_ms=float(data["issued_ms"]))


@dataclass(frozen=True, slots=True)
class PingResponse:
    """Entity-to-broker response echoing number and timestamp.

    ``entity_stamp_ms`` is the entity's local send time — opaque to the
    broker (clocks differ) but copied into derived traces so a colocated
    tracker can compute end-to-end latency without clock synchronization,
    exactly the measurement setup of section 6.1.
    """

    number: int
    issued_ms: float
    entity_stamp_ms: float

    def to_dict(self) -> dict:
        return {
            "kind": "ping_response",
            "number": self.number,
            "issued_ms": self.issued_ms,
            "entity_stamp_ms": self.entity_stamp_ms,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PingResponse":
        return cls(
            number=int(data["number"]),
            issued_ms=float(data["issued_ms"]),
            entity_stamp_ms=float(data["entity_stamp_ms"]),
        )

    def matches(self, ping: Ping) -> bool:
        return self.number == ping.number and self.issued_ms == ping.issued_ms


@dataclass(slots=True)
class _PingRecord:
    number: int
    issued_ms: float
    response_ms: float | None = None  # broker receive time

    @property
    def answered(self) -> bool:
        return self.response_ms is not None

    @property
    def rtt_ms(self) -> float | None:
        if self.response_ms is None:
            return None
        return self.response_ms - self.issued_ms


@dataclass(slots=True)
class PingHistory:
    """Sliding window over the last N pings issued to one entity."""

    window: int = PING_HISTORY_WINDOW
    _records: deque = field(default_factory=deque)
    _highest_response_number: int = -1
    _out_of_order: int = 0
    _responses: int = 0
    last_ping_ms: float | None = None
    #: Deployment registry, set by the owning TraceManager; when present,
    #: ping intervals and RTTs flow into ``tracker.ping.*`` histograms.
    metrics: MetricsRegistry | None = None

    def record_ping(self, ping: Ping) -> None:
        if self.metrics is not None and self.last_ping_ms is not None:
            self.metrics.histogram("tracker.ping.interval_ms").observe(
                ping.issued_ms - self.last_ping_ms
            )
        self._records.append(_PingRecord(ping.number, ping.issued_ms))
        while len(self._records) > self.window:
            self._records.popleft()
        self.last_ping_ms = ping.issued_ms

    def record_response(self, response: PingResponse, received_ms: float) -> bool:
        """Mark the matching ping answered; returns False for unmatched.

        Also tracks out-of-order arrivals: a response whose number is below
        the highest number already answered arrived out of order.  Only
        responses that match a recorded, still-unanswered ping enter the
        statistics — unmatched or duplicate responses would otherwise
        inflate the denominator of ``out_of_order_rate()`` (and a
        duplicate must not advance the highest-answered watermark), which
        skewed the NETWORK_METRICS traces of section 3.3.

        A response must echo both the number *and* the issue timestamp of
        a recorded ping (the pair the paper says every response carries);
        matching on the number alone let a stale record from a pre-restart
        incarnation swallow a fresh response that reused its number.
        """
        for record in self._records:
            if (
                record.number == response.number
                and record.issued_ms == response.issued_ms
                and not record.answered
            ):
                record.response_ms = received_ms
                self._responses += 1
                if response.number < self._highest_response_number:
                    self._out_of_order += 1
                else:
                    self._highest_response_number = response.number
                if self.metrics is not None and record.rtt_ms is not None:
                    self.metrics.histogram("tracker.ping.rtt_ms").observe(
                        record.rtt_ms
                    )
                return True
        return False

    def reset_incarnation(self) -> None:
        """Forget windowed state from a previous broker incarnation.

        Called when the owning broker restarts after a crash: every
        recorded ping (answered or not) belongs to the dead incarnation,
        and the highest-answered watermark would misclassify the first
        post-restart responses as out of order.  Cumulative statistics
        (``_out_of_order`` / ``_responses``) survive — they describe the
        entity's link, not the broker's process lifetime.
        """
        self._records.clear()
        self._highest_response_number = -1
        self.last_ping_ms = None

    def last_response_ms(self) -> float | None:
        """Broker receive time of the most recent answered ping, if any."""
        best: float | None = None
        for record in self._records:
            if record.response_ms is not None:
                if best is None or record.response_ms > best:
                    best = record.response_ms
        return best

    # -- windowed statistics -------------------------------------------------------

    def consecutive_misses(self, now_ms: float, deadline_ms: float) -> int:
        """Trailing unanswered pings whose response deadline has passed."""
        misses = 0
        for record in reversed(self._records):
            if record.answered:
                break
            if now_ms - record.issued_ms < deadline_ms:
                # too early to judge this ping; skip it without resetting
                continue
            misses += 1
        return misses

    def loss_rate(self, now_ms: float, deadline_ms: float) -> float:
        """Fraction of judged pings in the window that went unanswered."""
        judged = 0
        lost = 0
        for record in self._records:
            if record.answered:
                judged += 1
            elif now_ms - record.issued_ms >= deadline_ms:
                judged += 1
                lost += 1
        return lost / judged if judged else 0.0

    def rtts(self) -> list[float]:
        return [r.rtt_ms for r in self._records if r.rtt_ms is not None]

    def mean_rtt_ms(self) -> float | None:
        rtts = self.rtts()
        return sum(rtts) / len(rtts) if rtts else None

    def jitter_ms(self) -> float:
        rtts = self.rtts()
        if len(rtts) < 2:
            return 0.0
        mean = sum(rtts) / len(rtts)
        return (sum((r - mean) ** 2 for r in rtts) / (len(rtts) - 1)) ** 0.5

    def out_of_order_rate(self) -> float:
        return self._out_of_order / self._responses if self._responses else 0.0

    def network_metrics(
        self,
        now_ms: float,
        deadline_ms: float,
        bandwidth_estimate_kbps: float = 100_000.0,
    ) -> NetworkMetrics | None:
        """Derive a NETWORK_METRICS trace body; None if no data yet."""
        mean_rtt = self.mean_rtt_ms()
        if mean_rtt is None:
            return None
        return NetworkMetrics(
            loss_rate=self.loss_rate(now_ms, deadline_ms),
            mean_rtt_ms=mean_rtt,
            jitter_ms=self.jitter_ms(),
            out_of_order_rate=self.out_of_order_rate(),
            bandwidth_estimate_kbps=bandwidth_estimate_kbps,
        )

    def __len__(self) -> int:
        return len(self._records)
