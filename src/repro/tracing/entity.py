"""The traced entity (sections 3.1-3.2, 4.3, 5.1, 6.3).

Lifecycle:

1. create the trace topic at the TDN (signed creation request),
2. discover a valid broker and connect,
3. register for tracing over the Registration constrained topic (signed),
4. receive the sealed registration response (session id),
5. delegate publication: generate the authorization token and hand the
   token plus its private key to the broker, sealed,
6. optionally establish a secret trace key (confidentiality, section 5.1)
   and/or a symmetric channel key (signing-cost optimization, section 6.3),
7. answer pings and report state transitions / load until shutdown.
"""

from __future__ import annotations

from typing import Generator

from repro.auth.credentials import EntityCredentials
from repro.auth.tokens import AuthorizationToken, TokenRights
from repro.crypto.costmodel import CryptoOp
from repro.crypto.keys import SymmetricKey
from repro.crypto.rsa import RSAPublicKey
from repro.crypto.signing import open_sealed, seal_for
from repro.errors import RegistrationError, ValidationError
from repro.messaging.broker_network import BrokerNetwork
from repro.messaging.message import Message
from repro.sim.engine import Event, Simulator
from repro.sim.machine import Machine
from repro.sim.monitor import Monitor
from repro.tdn.advertisement import TopicCreationRequest
from repro.tdn.node import TDNCluster
from repro.tdn.query import DiscoveryRestrictions, trace_descriptor
from repro.tracing.pings import Ping, PingResponse
from repro.tracing.registration import (
    RegistrationResponse,
    TraceRegistrationRequest,
)
from repro.tracing.topics import REGISTRATION_TOPIC, TraceTopicSet
from repro.tracing.traces import EntityState, VALID_TRANSITIONS, LoadInformation
from repro.util.identifiers import EntityId, SequenceCounter, SessionId
from repro.util.serialization import canonical_encode

#: Default trace-topic lifetime: one hour.
DEFAULT_TOPIC_LIFETIME_MS = 3_600_000.0
#: Default authorization-token validity: kept short per section 4.3.
DEFAULT_TOKEN_VALIDITY_MS = 600_000.0


class TracedEntity:
    """An entity that has requested to be traced."""

    def __init__(
        self,
        sim: Simulator,
        entity_id: EntityId | str,
        network: BrokerNetwork,
        machine: Machine,
        credentials: EntityCredentials,
        tdn: TDNCluster,
        monitor: Monitor | None = None,
        restrictions: DiscoveryRestrictions | None = None,
        secured: bool = False,
        use_symmetric_channel: bool = False,
        topic_lifetime_ms: float = DEFAULT_TOPIC_LIFETIME_MS,
        token_validity_ms: float = DEFAULT_TOKEN_VALIDITY_MS,
        registration_timeout_ms: float = 10_000.0,
        registration_attempts: int = 3,
    ) -> None:
        self.sim = sim
        self.entity_id = (
            entity_id if isinstance(entity_id, EntityId) else EntityId(entity_id)
        )
        self.network = network
        self.machine = machine
        self.credentials = credentials
        self.tdn = tdn
        self.monitor = monitor or Monitor()
        self.restrictions = restrictions or DiscoveryRestrictions.open_to_authenticated()
        self.secured = secured
        self.use_symmetric_channel = use_symmetric_channel
        self.topic_lifetime_ms = topic_lifetime_ms
        self.token_validity_ms = token_validity_ms
        self.registration_timeout_ms = registration_timeout_ms
        self.registration_attempts = registration_attempts

        self.state = EntityState.INITIALIZING
        self.advertisement = None
        self.topics: TraceTopicSet | None = None
        self.session_id: SessionId | None = None
        self.broker_public_key: RSAPublicKey | None = None
        self.token: AuthorizationToken | None = None
        self.trace_key: SymmetricKey | None = None
        self.channel_key: SymmetricKey | None = None

        self.client = None
        self._requests = SequenceCounter()
        self._crashed = False
        self._silent = False
        self._registration_event: Event | None = None

    # ------------------------------------------------------------------ lifecycle

    def start(self, broker_id: str, transport_profile=None):
        """Spawn the full startup protocol; returns the Process (joinable)."""
        return self.sim.process(
            self.run_startup(broker_id, transport_profile),
            name=f"entity.{self.entity_id}.startup",
        )

    def start_discovered(self, discovery, policy=None, transport_profile=None):
        """Spawn startup using the broker discovery service (Ref [3]).

        ``discovery`` is a
        :class:`~repro.messaging.discovery.BrokerDiscoveryService`;
        ``policy`` a :class:`~repro.messaging.discovery.PlacementPolicy`
        (round-robin by default).
        """
        return self.sim.process(
            self._run_startup_discovered(discovery, policy, transport_profile),
            name=f"entity.{self.entity_id}.startup",
        )

    def _run_startup_discovered(
        self, discovery, policy, transport_profile
    ) -> Generator[Event, None, SessionId]:
        from repro.messaging.discovery import PlacementPolicy

        broker = yield from discovery.discover(
            policy or PlacementPolicy.ROUND_ROBIN
        )
        session = yield from self.run_startup(broker.broker_id, transport_profile)
        return session

    def run_startup(
        self, broker_id: str, transport_profile=None
    ) -> Generator[Event, None, SessionId]:
        """Process body: create topic, connect, register, delegate."""
        yield from self.create_trace_topic()
        self.connect(broker_id, transport_profile)
        yield from self.register()
        yield from self.deliver_token()
        if self.use_symmetric_channel:
            yield from self.establish_channel_key()
        if self.secured:
            yield from self.establish_trace_key()
        yield from self.report_state(EntityState.READY)
        assert self.session_id is not None
        return self.session_id

    def create_trace_topic(self) -> Generator[Event, None, None]:
        """Step 1: signed topic-creation request to the TDN (section 3.1)."""
        request = TopicCreationRequest(
            credentials=self.credentials.certificate,
            descriptor=trace_descriptor(self.entity_id),
            restrictions=self.restrictions,
            lifetime_ms=self.topic_lifetime_ms,
            request_id=self._requests.next_request_id(),
        )
        yield from self.machine.charge(CryptoOp.TRACE_SIGN)
        signature = self.credentials.sign(request.signing_payload())
        self.advertisement = yield from self.tdn.create_topic(request, signature)
        self.topics = TraceTopicSet(
            trace_topic=self.advertisement.trace_topic, entity_id=self.entity_id
        )
        self.monitor.increment("entity.topics_created")

    def connect(self, broker_id: str, transport_profile=None) -> None:
        """Step 2-3: connect a client to the (discovered) broker."""
        self.client = self.network.add_client(
            str(self.entity_id), machine_name=self.machine.name
        )
        self.network.connect_client(self.client, broker_id, transport_profile)

    def register(self) -> Generator[Event, None, None]:
        """Step 4-5: the registration exchange of section 3.2.

        Retried up to ``registration_attempts`` times: the request or its
        response can be lost on unreliable transports, and a silent broker
        is indistinguishable from a lost message.
        """
        if self.topics is None or self.client is None or self.advertisement is None:
            raise RegistrationError("must create topic and connect before registering")

        message: Message | None = None
        for attempt in range(self.registration_attempts):
            request_id = self._requests.next_request_id()
            payload = TraceRegistrationRequest.signing_payload(
                self.entity_id, self.credentials.certificate,
                self.advertisement, request_id,
            )
            yield from self.machine.charge(CryptoOp.TRACE_SIGN)
            signature = self.credentials.sign(payload)
            request = TraceRegistrationRequest(
                entity_id=self.entity_id,
                credentials=self.credentials.certificate,
                advertisement=self.advertisement,
                request_id=request_id,
                signature=signature,
            )

            # listen for the response before sending the request
            response_topic = self.topics.registration_response(
                self.entity_id, request_id.value
            )
            self._registration_event = self.sim.event("registration_response")
            self.client.subscribe(response_topic, self._on_registration_response)

            self.client.publish(REGISTRATION_TOPIC, request.to_dict())
            self.monitor.increment("entity.registrations_sent")

            outcome = self.sim.any_of(
                [
                    self._registration_event,
                    self.sim.timeout(self.registration_timeout_ms),
                ]
            )
            index, value = yield outcome
            self.client.unsubscribe(response_topic)
            if index == 0:
                message = value
                break
            self.monitor.increment("entity.registration_retries")
        if message is None:
            raise RegistrationError(
                f"registration of {self.entity_id} timed out after "
                f"{self.registration_attempts} attempts"
            )
        if isinstance(message.body, dict) and "error" in message.body:
            raise RegistrationError(
                f"broker rejected registration: {message.body['error']}"
            )
        from repro.crypto.signing import SealedPayload

        yield from self.machine.charge(CryptoOp.OPEN_SEALED)
        response_dict = open_sealed(
            SealedPayload.from_dict(message.body), self.credentials.keys.private
        )
        response = RegistrationResponse.from_dict(response_dict)
        if response.request_id != request_id:
            raise RegistrationError("response correlates to a different request")
        self.session_id = response.session_id
        self.broker_public_key = response.broker_public_key
        self.monitor.increment("entity.registered")

        # subscribe to the broker->entity session topic for pings, and
        # register the host-level sink so pings multiplexed into a
        # co-located sibling's ping_batch frame still reach this entity
        self.client.subscribe(
            self.topics.broker_to_entity(self.session_id), self._on_broker_message
        )
        from repro.tracing.coalesce import register_ping_sink

        register_ping_sink(self.machine, str(self.entity_id), self._on_relayed_ping)

    def _on_registration_response(self, message: Message) -> None:
        if self._registration_event is not None and not self._registration_event.triggered:
            self._registration_event.succeed(message)

    # ------------------------------------------------------- delegation & keys

    def deliver_token(self) -> Generator[Event, None, None]:
        """Step 5: generate the authorization token and seal it to the broker."""
        self._require_session()
        yield from self.machine.charge(CryptoOp.TOKEN_GENERATE_AND_SIGN)
        token, token_private = AuthorizationToken.create(
            advertisement=self.advertisement,
            owner_private_key=self.credentials.keys.private,
            rights=TokenRights.PUBLISH,
            now_ms=self.machine.now(),
            duration_ms=self.token_validity_ms,
            rng=self.machine.rng,
        )
        self.token = token
        yield from self._send_sealed(
            "token_delivery",
            {
                "token": token.to_dict(),
                "token_private": {
                    "n": token_private.n, "e": token_private.e, "d": token_private.d,
                    "p": token_private.p, "q": token_private.q,
                    "d_p": token_private.d_p, "d_q": token_private.d_q,
                    "q_inv": token_private.q_inv,
                },
            },
        )
        self.monitor.increment("entity.tokens_delivered")

    def refresh_token(self) -> Generator[Event, None, None]:
        """Generate and deliver a fresh token (near-expiry renewal, §4.3)."""
        yield from self.deliver_token()

    def renew_topic(
        self, additional_lifetime_ms: float
    ) -> Generator[Event, None, None]:
        """Extend the trace topic's lifetime at the TDN before it expires."""
        if self.advertisement is None:
            raise RegistrationError("no trace topic to renew")
        payload = {
            "renew": self.advertisement.trace_topic.hex,
            "additional_lifetime_ms": additional_lifetime_ms,
        }
        yield from self.machine.charge(CryptoOp.TRACE_SIGN)
        signature = self.credentials.sign(payload)
        self.advertisement = yield from self.tdn.renew_topic(
            self.advertisement, signature, additional_lifetime_ms
        )
        self.monitor.increment("entity.topics_renewed")

    def establish_trace_key(self) -> Generator[Event, None, None]:
        """Section 5.1: generate the secret trace key and send it securely."""
        self._require_session()
        yield from self.machine.charge(CryptoOp.SYM_KEYGEN)
        self.trace_key = SymmetricKey.generate(self.machine.rng)
        yield from self._send_sealed("trace_key", self.trace_key.to_dict())
        self.monitor.increment("entity.trace_keys_established")

    def establish_channel_key(self) -> Generator[Event, None, None]:
        """Section 6.3: shared symmetric key replacing per-message signing."""
        self._require_session()
        yield from self.machine.charge(CryptoOp.SYM_KEYGEN)
        self.channel_key = SymmetricKey.generate(self.machine.rng)
        yield from self._send_sealed("channel_key", self.channel_key.to_dict())
        self.monitor.increment("entity.channel_keys_established")

    def _send_sealed(self, kind: str, payload: dict) -> Generator[Event, None, None]:
        """Seal a control payload to the broker and send it, signed."""
        if self.broker_public_key is None:
            raise RegistrationError("no broker public key (not registered)")
        yield from self.machine.charge(CryptoOp.SEAL_PAYLOAD)
        sealed = seal_for(payload, self.broker_public_key, self.machine.rng)
        body = {"kind": kind, "sealed": sealed.to_dict()}
        yield from self._send_session_message(body, force_sign=True)

    # ------------------------------------------------------------- session traffic

    def _send_session_message(
        self, body: dict, force_sign: bool = False
    ) -> Generator[Event, None, None]:
        """Authenticate and publish one message on the entity->broker topic.

        Default authentication is a signature (section 4.2); with the 6.3
        optimization active (and not forced), the body is instead encrypted
        under the shared channel key — cheaper by ~24 ms per message.
        """
        self._require_session()
        topic = self.topics.entity_to_broker(self.session_id)
        body = dict(body)
        body["stamp_ms"] = self.machine.now()
        if self.channel_key is not None and not force_sign:
            yield from self.machine.charge(CryptoOp.TRACE_ENCRYPT)
            ciphertext = self.channel_key.encrypt(
                canonical_encode(body), self.machine.rng
            )
            self.client.publish(
                topic, {"kind": "sym", "ciphertext": ciphertext}, encrypted=True
            )
        else:
            yield from self.machine.charge(CryptoOp.TRACE_SIGN)
            envelope = self.credentials.sign(body)
            self.client.publish(topic, body, signature=envelope.to_dict())

    def _on_broker_message(self, message: Message) -> None:
        """Pings (and future broker-initiated control) arrive here."""
        body = message.body
        if isinstance(body, dict) and body.get("kind") == "ping_batch":
            # host-level demultiplexing happens *before* the crash/silent
            # check: the host agent relays co-located siblings' pings even
            # when this entity's own process is down; each sink applies its
            # own entity's liveness gates
            from repro.tracing.coalesce import relay_ping_batch

            relay_ping_batch(self.machine, body)
            return
        if self._crashed or self._silent:
            return
        if isinstance(body, dict) and body.get("kind") == "ping":
            self._on_relayed_ping(Ping.from_dict(body))

    def _on_relayed_ping(self, ping: Ping) -> None:
        """Answer one ping (direct or relayed) unless crashed or silent."""
        if self._crashed or self._silent:
            return
        self.sim.process(
            self._answer_ping(ping), name=f"entity.{self.entity_id}.pong"
        )

    def _answer_ping(self, ping: Ping) -> Generator[Event, None, None]:
        response = PingResponse(
            number=ping.number,
            issued_ms=ping.issued_ms,
            entity_stamp_ms=self.machine.now(),
        )
        yield from self._send_session_message(response.to_dict())
        self.monitor.increment("entity.pings_answered")

    # ------------------------------------------------------------------- reports

    def report_state(self, new_state: EntityState) -> Generator[Event, None, None]:
        """Transition the state machine and notify the broker (section 3.3)."""
        if new_state is not self.state:
            if new_state not in VALID_TRANSITIONS[self.state]:
                raise ValidationError(
                    f"illegal transition {self.state.value} -> {new_state.value}"
                )
            self.state = new_state
        yield from self._send_session_message(
            {"kind": "state_transition", "state": new_state.value}
        )
        self.monitor.increment("entity.state_reports")

    def report_load(self, load: LoadInformation) -> Generator[Event, None, None]:
        """Report host load (section 3.3)."""
        yield from self._send_session_message(
            {"kind": "load", "load": load.to_dict()}
        )
        self.monitor.increment("entity.load_reports")

    def disable_tracing(self) -> Generator[Event, None, None]:
        """Revert to silent mode; the broker announces and stops pinging."""
        yield from self._send_session_message({"kind": "disable_tracing"})
        self._silent = True
        self.monitor.increment("entity.silent_mode")

    def shutdown(self) -> Generator[Event, None, None]:
        """Graceful shutdown: report SHUTDOWN, then go silent."""
        yield from self.report_state(EntityState.SHUTDOWN)
        self._silent = True

    # ------------------------------------------------------------------ failures

    def crash(self) -> None:
        """Simulate abrupt failure: stop answering pings immediately."""
        self._crashed = True

    def recover_from_crash(self) -> None:
        """Come back after a crash (the broker may already have FAILED us;
        a really-failed entity re-registers — see section 3.2)."""
        self._crashed = False

    def reregister(self) -> Generator[Event, None, SessionId]:
        """Run the registration protocol again on the current connection.

        Used after the hosting broker declared this entity FAILED: a fresh
        session supersedes the dead one, a fresh token is delegated, and
        any confidentiality/channel keys are re-established.  The trace
        topic (and therefore every tracker subscription) is unchanged.
        """
        self._crashed = False
        self._silent = False
        yield from self.register()
        yield from self.deliver_token()
        if self.use_symmetric_channel:
            yield from self.establish_channel_key()
        if self.secured:
            yield from self.establish_trace_key()
        if self.state is not EntityState.READY:
            yield from self.report_state(EntityState.READY)
        else:
            yield from self.report_state(EntityState.RECOVERING)
            yield from self.report_state(EntityState.READY)
        assert self.session_id is not None
        return self.session_id

    def migrate(self, new_broker_id: str, transport_profile=None
                ) -> Generator[Event, None, SessionId]:
        """Move to a different broker (e.g. after the hosting broker died).

        Disconnects, re-discovers connectivity at ``new_broker_id``, and
        re-runs registration there.  Trackers keep their subscriptions:
        the publication topics derive from the trace topic, not from the
        hosting broker.
        """
        if self.client is not None:
            self.client.disconnect()
            self.network.remove_client(str(self.entity_id))
        self.connect(new_broker_id, transport_profile)
        session = yield from self.reregister()
        return session

    @property
    def crashed(self) -> bool:
        return self._crashed

    # --------------------------------------------------------------------- misc

    def _require_session(self) -> None:
        if self.session_id is None or self.topics is None or self.client is None:
            raise RegistrationError(f"{self.entity_id} has no active session")

    def __repr__(self) -> str:
        return f"<TracedEntity {self.entity_id} state={self.state.value}>"
