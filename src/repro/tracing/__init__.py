"""The tracing scheme (section 3) — the paper's core contribution.

A traced entity creates a trace topic at the TDN, registers with a broker,
and delegates trace publication to that broker via an authorization token.
The broker polls the entity (pull), detects failures adaptively, and
publishes typed traces (push) over derived constrained topics — but only
when trackers have expressed interest.  Trackers discover the trace topic
(if authorized), subscribe to the trace types they care about, and verify
every trace they receive.
"""

from repro.tracing.traces import TraceType, EntityState, LoadInformation, NetworkMetrics
from repro.tracing.topics import TraceTopicSet
from repro.tracing.pings import Ping, PingResponse, PingHistory
from repro.tracing.failure import AdaptivePingPolicy, FailureDetector, DetectorVerdict
from repro.tracing.interest import InterestCategory, InterestRegistry
from repro.tracing.registration import TraceRegistrationRequest, RegistrationResponse
from repro.tracing.session import TraceSession
from repro.tracing.entity import TracedEntity
from repro.tracing.broker_ops import TraceManager
from repro.tracing.tracker import Tracker
from repro.tracing.archive import AvailabilityArchive, EntityRecord
from repro.tracing.forecast import NetworkForecaster, SeriesForecaster

__all__ = [
    "TraceType",
    "EntityState",
    "LoadInformation",
    "NetworkMetrics",
    "TraceTopicSet",
    "Ping",
    "PingResponse",
    "PingHistory",
    "AdaptivePingPolicy",
    "FailureDetector",
    "DetectorVerdict",
    "InterestCategory",
    "InterestRegistry",
    "TraceRegistrationRequest",
    "RegistrationResponse",
    "TraceSession",
    "TracedEntity",
    "TraceManager",
    "Tracker",
    "AvailabilityArchive",
    "EntityRecord",
    "NetworkForecaster",
    "SeriesForecaster",
]
