"""The tracker: authorized consumption of traces (sections 3.4, 3.5, 5.1).

A tracker discovers the trace topic through the TDN (presenting its
credentials; no response means it cannot proceed), subscribes to the
constrained topics carrying the trace types it selected, answers the
broker's GUAGE_INTEREST requests, and verifies every trace it receives:
the authorization token (once per trace topic) and the per-message
signature made with the token's key.  For secured sessions it receives the
secret trace key via the sealed key-distribution payload and decrypts
trace bodies with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator

from repro.auth.credentials import EntityCredentials
from repro.auth.verification import TokenVerifier
from repro.crypto.costmodel import CryptoOp
from repro.crypto.keys import SymmetricKey
from repro.crypto.rsa import RSAPublicKey
from repro.crypto.signing import SignedEnvelope, verify_payload
from repro.errors import DecryptionError, DiscoveryError, SignatureError, TokenError
from repro.messaging.broker_network import BrokerNetwork
from repro.messaging.message import Message
from repro.security.confidentiality import unwrap_trace_body
from repro.security.keydist import KeyDistributionPayload, open_key_payload
from repro.sim.engine import Event, Simulator
from repro.sim.machine import Machine
from repro.sim.monitor import Monitor
from repro.tdn.advertisement import TopicAdvertisement
from repro.tdn.node import TDNCluster
from repro.tdn.query import DiscoveryQuery
from repro.tracing.interest import ALL_CATEGORIES, InterestCategory
from repro.tracing.topics import TraceTopicSet
from repro.tracing.traces import TraceType
from repro.util.identifiers import EntityId


@dataclass(frozen=True, slots=True)
class ReceivedTrace:
    """One verified (and decrypted) trace as seen by a tracker."""

    trace_type: TraceType
    entity_id: str
    received_ms: float
    latency_ms: float | None  # end-to-end, when an origin stamp was present
    payload: dict


@dataclass(slots=True)
class _WatchedEntity:
    advertisement: TopicAdvertisement
    topics: TraceTopicSet
    trace_key: SymmetricKey | None = None
    key_received_ms: float | None = None
    last_gauge_stamp_ms: float | None = None
    keydist_latency_ms: float | None = None
    last_response_ms: float | None = None
    categories: frozenset = field(default_factory=lambda: ALL_CATEGORIES)


class Tracker:
    """An entity interested in tracing others."""

    def __init__(
        self,
        sim: Simulator,
        tracker_id: str,
        network: BrokerNetwork,
        machine: Machine,
        credentials: EntityCredentials,
        tdn: TDNCluster,
        token_verifier: TokenVerifier,
        monitor: Monitor | None = None,
        interests: frozenset[InterestCategory] = ALL_CATEGORIES,
        proactive_interest: bool = True,
        verify_traces: bool = True,
        interest_refresh_ms: float = 30_000.0,
    ) -> None:
        self.sim = sim
        self.tracker_id = tracker_id
        self.network = network
        self.machine = machine
        self.credentials = credentials
        self.tdn = tdn
        self.token_verifier = token_verifier
        self.monitor = monitor or Monitor()
        self.interests = frozenset(interests)
        self.proactive_interest = proactive_interest
        self.verify_traces = verify_traces
        self.interest_refresh_ms = interest_refresh_ms

        self.client = None
        self.received: list[ReceivedTrace] = []
        self.on_trace: Callable[[ReceivedTrace], None] | None = None
        self._watched: dict[str, _WatchedEntity] = {}
        # tokens already verified (by digest of their wire form): a token is
        # re-verified only when it changes, e.g. after a near-expiry refresh
        self._verified_tokens: dict[bytes, object] = {}
        # per-session trace sequence tracking for gap detection
        self._last_seq: dict[str, int] = {}
        self.missed_trace_count = 0

    # ------------------------------------------------------------------ wiring

    def connect(self, broker_id: str, transport_profile=None) -> None:
        self.client = self.network.add_client(
            self.tracker_id, machine_name=self.machine.name
        )
        self.network.connect_client(self.client, broker_id, transport_profile)

    # ------------------------------------------------------------------- track

    def track(self, entity_id: EntityId | str):
        """Spawn the discovery-and-subscribe process."""
        return self.sim.process(
            self.run_track(entity_id), name=f"tracker.{self.tracker_id}.track"
        )

    def run_track(
        self, entity_id: EntityId | str
    ) -> Generator[Event, None, TopicAdvertisement]:
        """Process body: discover the trace topic and subscribe (section 3.4).

        Raises :class:`DiscoveryError` if the TDN ignores the query (either
        the topic does not exist or this tracker is not authorized — the
        two cases are indistinguishable by design).
        """
        if self.client is None:
            from repro.errors import NotConnectedError

            raise NotConnectedError(
                f"tracker {self.tracker_id!r} must connect() to a broker "
                "before tracking"
            )
        eid = entity_id if isinstance(entity_id, EntityId) else EntityId(entity_id)
        query = DiscoveryQuery.for_entity(eid)
        advertisement = yield from self.tdn.discover(
            query, self.credentials.certificate
        )
        if advertisement is None:
            self.monitor.increment("tracker.discovery_denied")
            raise DiscoveryError(
                f"tracker {self.tracker_id!r} cannot discover the trace topic "
                f"of {eid} (unauthorized or nonexistent)"
            )
        result = yield from self._wire_subscriptions(eid, advertisement)
        return result

    def _wire_subscriptions(
        self, eid: EntityId, advertisement: TopicAdvertisement
    ) -> Generator[Event, None, TopicAdvertisement]:
        """Subscribe to the selected trace streams of one advertisement."""
        topics = TraceTopicSet(advertisement.trace_topic, eid)
        watched = _WatchedEntity(
            advertisement=advertisement, topics=topics, categories=self.interests
        )
        self._watched[str(eid)] = watched

        for category in sorted(self.interests, key=lambda c: c.value):
            self.client.subscribe(
                topics.topic_for_category(category),
                lambda msg, w=watched: self._on_trace_message(w, msg),
            )
        self.client.subscribe(
            topics.interest_request,
            lambda msg, w=watched: self._on_gauge(w, msg),
        )
        self.client.subscribe(
            topics.key_delivery(self.tracker_id),
            lambda msg, w=watched: self._on_key_delivery(w, msg),
        )
        self.monitor.increment("tracker.tracking")

        if self.proactive_interest:
            yield from self._send_interest_response(watched)
        return advertisement

    def untrack(self, entity_id: EntityId | str):
        """Spawn the stop-tracking process for one entity."""
        return self.sim.process(
            self.run_untrack(entity_id), name=f"tracker.{self.tracker_id}.untrack"
        )

    def run_untrack(self, entity_id: EntityId | str) -> Generator[Event, None, bool]:
        """Process body: unsubscribe everything and retract interest.

        Sends an *empty* interest response — the broker treats it as a
        retraction (section 3.5), so if this was the last interested
        tracker, trace publication stops immediately rather than waiting
        for the interest TTL.  Returns False if the entity wasn't tracked.
        """
        key = str(entity_id)
        watched = self._watched.pop(key, None)
        if watched is None:
            return False
        topics = watched.topics
        for category in sorted(watched.categories, key=lambda c: c.value):
            self.client.unsubscribe(topics.topic_for_category(category))
        self.client.unsubscribe(topics.interest_request)
        self.client.unsubscribe(topics.key_delivery(self.tracker_id))

        body = {
            "tracker_id": self.tracker_id,
            "categories": [],  # empty = retraction
            "response_topic": None,
            "credentials": {
                "subject": self.credentials.subject,
                "n": self.credentials.public_key.n,
                "e": self.credentials.public_key.e,
            },
            "stamp_ms": self.machine.now(),
        }
        yield from self.machine.charge(CryptoOp.TRACE_SIGN)
        envelope = self.credentials.sign(body)
        self.client.publish(
            topics.interest_response, body, signature=envelope.to_dict()
        )
        self.monitor.increment("tracker.untracked")
        return True

    def track_matching(self, entity_pattern: str):
        """Spawn tracking of every discoverable entity matching a pattern."""
        return self.sim.process(
            self.run_track_matching(entity_pattern),
            name=f"tracker.{self.tracker_id}.track_matching",
        )

    def run_track_matching(
        self, entity_pattern: str
    ) -> Generator[Event, None, list[TopicAdvertisement]]:
        """Process body: wildcard discovery, then track each hit.

        Entities this tracker is not authorized to discover are silently
        absent from the result, like the single-entity case.  Returns the
        advertisements that were tracked.
        """
        query = DiscoveryQuery.for_pattern(entity_pattern)
        advertisements = yield from self.tdn.discover_all(
            query, self.credentials.certificate
        )
        tracked = []
        for advertisement in advertisements:
            entity_id = advertisement.entity_id
            if str(entity_id) in self._watched:
                continue
            yield from self._wire_subscriptions(entity_id, advertisement)
            tracked.append(advertisement)
        self.monitor.increment("tracker.pattern_discoveries")
        return tracked

    # --------------------------------------------------------------- interest

    def _on_gauge(self, watched: _WatchedEntity, message: Message) -> None:
        self.sim.process(
            self._handle_gauge(watched, message),
            name=f"tracker.{self.tracker_id}.gauge",
        )

    def _handle_gauge(
        self, watched: _WatchedEntity, message: Message
    ) -> Generator[Event, None, None]:
        token = yield from self._check_token(message)
        if token is None:
            return
        self.monitor.increment("tracker.gauges_received")
        # a recently refreshed interest registration need not be re-signed
        # for every periodic gauge — it is still live at the broker
        now = self.machine.now()
        if (
            watched.last_response_ms is not None
            and now - watched.last_response_ms < self.interest_refresh_ms
        ):
            return
        if isinstance(message.body, dict):
            stamp = message.body.get("broker_stamp_ms")
            if stamp is not None:
                watched.last_gauge_stamp_ms = float(stamp)
        yield from self._send_interest_response(watched)

    def _send_interest_response(
        self, watched: _WatchedEntity
    ) -> Generator[Event, None, None]:
        body = {
            "tracker_id": self.tracker_id,
            "categories": sorted(c.value for c in self.interests),
            "response_topic": watched.topics.key_delivery(self.tracker_id).canonical,
            "credentials": {
                "subject": self.credentials.subject,
                "n": self.credentials.public_key.n,
                "e": self.credentials.public_key.e,
            },
            "stamp_ms": self.machine.now(),
        }
        yield from self.machine.charge(CryptoOp.TRACE_SIGN)
        envelope = self.credentials.sign(body)
        self.client.publish(
            watched.topics.interest_response, body, signature=envelope.to_dict()
        )
        watched.last_response_ms = self.machine.now()
        self.monitor.increment("tracker.interest_responses")

    # --------------------------------------------------------- key distribution

    def _on_key_delivery(self, watched: _WatchedEntity, message: Message) -> None:
        self.sim.process(
            self._handle_key_delivery(watched, message),
            name=f"tracker.{self.tracker_id}.key",
        )

    def _handle_key_delivery(
        self, watched: _WatchedEntity, message: Message
    ) -> Generator[Event, None, None]:
        if not isinstance(message.body, dict):
            return
        yield from self.machine.charge(CryptoOp.OPEN_SEALED)
        try:
            payload = KeyDistributionPayload.from_dict(message.body)
            watched.trace_key = open_key_payload(
                payload, self.credentials.keys.private
            )
        except (DecryptionError, KeyError, TypeError, ValueError):
            self.monitor.increment("tracker.key_payload_rejected")
            return
        watched.key_received_ms = self.machine.now()
        if watched.last_gauge_stamp_ms is not None:
            # measured against the gauge that elicited our interest response
            watched.keydist_latency_ms = (
                watched.key_received_ms - watched.last_gauge_stamp_ms
            )
        self.monitor.increment("tracker.keys_received")
        self.monitor.metrics.counter("tracker.keys.received").inc()
        if watched.keydist_latency_ms is not None:
            self.monitor.metrics.histogram("tracker.keydist.latency_ms").observe(
                watched.keydist_latency_ms
            )
        self.monitor.record(
            "tracker.key_received_ms", self.sim.now, self.machine.now()
        )

    # ------------------------------------------------------------------ traces

    def _on_trace_message(self, watched: _WatchedEntity, message: Message) -> None:
        self.sim.process(
            self._handle_trace(watched, message),
            name=f"tracker.{self.tracker_id}.trace",
        )

    def _check_token(self, message: Message) -> Generator[Event, None, object]:
        """Verify the attached authorization token; None on failure.

        Verification cost is paid once per distinct token: subsequent
        messages carrying a byte-identical token hit the cache (until the
        entity refreshes the token, which changes its bytes).  Expiry is
        still checked on every message.  When the verifier carries a
        :class:`~repro.auth.cache.TokenVerificationCache` (the default from
        ``build_deployment``), lookups ride that shared, instrumented LRU;
        otherwise the tracker's private digest map preserves the legacy
        behaviour exactly.
        """
        if message.auth_token is None:
            self.monitor.increment("tracker.traces_without_token")
            return None
        from repro.auth.cache import token_digest

        digest = token_digest(message.auth_token)
        cache = self.token_verifier.cache
        if cache is not None:
            cached_token = cache.lookup(
                digest, self.machine.now(), self.token_verifier.skew_tolerance_ms
            )
            if cached_token is not None:
                return cached_token
        else:
            cached = self._verified_tokens.get(digest)
            if cached is not None:
                from repro.auth.tokens import AuthorizationToken

                token: AuthorizationToken = cached  # type: ignore[assignment]
                if token.expired(
                    self.machine.now(), self.token_verifier.skew_tolerance_ms
                ):
                    self.monitor.increment("tracker.tokens_rejected")
                    del self._verified_tokens[digest]
                    return None
                return token
        yield from self.machine.charge(CryptoOp.TOKEN_VERIFY)
        try:
            token = self.token_verifier.verify(message.auth_token, self.machine.now())
        except TokenError:
            self.monitor.increment("tracker.tokens_rejected")
            return None
        if cache is not None:
            cache.store(digest, token)
        else:
            self._verified_tokens[digest] = token
        return token

    def _handle_trace(
        self, watched: _WatchedEntity, message: Message
    ) -> Generator[Event, None, None]:
        body = message.body
        if not isinstance(body, dict):
            return

        if self.verify_traces:
            token = yield from self._check_token(message)
            if token is None:
                return
            if message.signature is None:
                self.monitor.increment("tracker.traces_unsigned")
                return
            op = (
                CryptoOp.TRACE_VERIFY_ENCRYPTED
                if message.encrypted
                else CryptoOp.TRACE_VERIFY
            )
            yield from self.machine.charge(op)
            envelope = SignedEnvelope.from_dict(message.signature)
            if envelope.payload != body:
                self.monitor.increment("tracker.traces_tampered")
                return
            token_key: RSAPublicKey = token.token_public_key
            try:
                verify_payload(envelope, token_key)
            except SignatureError:
                self.monitor.increment("tracker.traces_bad_signature")
                return

        if message.encrypted or body.get("secured"):
            if watched.trace_key is None:
                self.monitor.increment("tracker.traces_no_key_yet")
                return
            yield from self.machine.charge(CryptoOp.SECURE_UNWRAP)
            try:
                body = unwrap_trace_body(body, watched.trace_key)
            except DecryptionError:
                self.monitor.increment("tracker.traces_undecryptable")
                return

        try:
            trace_type = TraceType(body["trace_type"])
        except (KeyError, ValueError):
            self.monitor.increment("tracker.traces_malformed")
            return

        # gap detection: a jump in the session-scoped sequence number means
        # traces were lost in transit (possible on unreliable transports)
        session_key = body.get("session")
        seq = body.get("seq")
        if isinstance(session_key, str) and isinstance(seq, int):
            last = self._last_seq.get(session_key)
            if last is not None and seq > last + 1:
                gap = seq - last - 1
                self.missed_trace_count += gap
                self.monitor.increment("tracker.traces_missed", gap)
            if last is None or seq > last:
                self._last_seq[session_key] = seq

        now = self.machine.now()
        origin = body.get("origin_stamp_ms")
        latency = (now - float(origin)) if origin is not None else None
        received = ReceivedTrace(
            trace_type=trace_type,
            entity_id=str(body.get("entity_id")),
            received_ms=now,
            latency_ms=latency,
            payload=body.get("payload") or {},
        )
        self.received.append(received)
        self.monitor.increment("tracker.traces_received")
        self.monitor.increment(f"tracker.traces_received.{trace_type.value}")
        metrics = self.monitor.metrics
        metrics.counter("tracker.traces.received").inc()
        if latency is not None:
            self.monitor.record("tracker.trace_latency_ms", self.sim.now, latency)
            metrics.histogram("tracker.trace.latency_ms").observe(latency)
            metrics.histogram(
                f"tracker.trace.latency_ms.{trace_type.value.lower()}"
            ).observe(latency)
        if self.on_trace is not None:
            self.on_trace(received)

    # ------------------------------------------------------------------- misc

    def traces_of_type(self, trace_type: TraceType) -> list[ReceivedTrace]:
        return [t for t in self.received if t.trace_type is trace_type]

    def latencies(self, trace_type: TraceType | None = None) -> list[float]:
        return [
            t.latency_ms
            for t in self.received
            if t.latency_ms is not None
            and (trace_type is None or t.trace_type is trace_type)
        ]

    def trace_key_for(self, entity_id: str) -> SymmetricKey | None:
        watched = self._watched.get(entity_id)
        return watched.trace_key if watched else None

    def key_received_ms_for(self, entity_id: str) -> float | None:
        watched = self._watched.get(entity_id)
        return watched.key_received_ms if watched else None

    def key_distribution_latency_ms(self, entity_id: str) -> float | None:
        """Gauge-to-key latency: the section 5.1 distribution round trip."""
        watched = self._watched.get(entity_id)
        if watched is None:
            return None
        return watched.keydist_latency_ms

    def __repr__(self) -> str:
        return f"<Tracker {self.tracker_id} watching {sorted(self._watched)}>"
