"""Availability archive: a live per-entity view over the analytics store.

A downstream consumer of the tracing scheme usually wants more than raw
traces: *was the service up at 14:02?  what is its uptime?  how long do
its outages last?*  The archive answers those per entity.

Since the analytics store landed (docs/ANALYTICS.md) the archive is a
**view**, not a second bookkeeper: attaching it installs a
:class:`~repro.analytics.TraceIngestor` so every verified trace is
persisted as a ``trace.observed`` store event, and the per-entity
records are materialized *from those stored events* via the shared
interval algebra in :mod:`repro.analytics.availability`.  The pre-store
API is preserved as a shim — :class:`EntityRecord` extends
:class:`~repro.analytics.EntityTimeline` with the old
``observe(ReceivedTrace)`` entry point, :class:`Interval` is re-exported
— and record references stay live: materialization runs on every trace
arrival, so a record handed out earlier keeps updating.

Availability semantics (defined once, in
:mod:`repro.analytics.availability`): an entity is **up** from its JOIN
(or first READY) until a FAILED, DISCONNECT, SHUTDOWN or
REVERTING_TO_SILENT_MODE trace; FAILURE_SUSPICION marks the entity
*suspect* but not yet down; RECOVERING counts as up.
"""

from __future__ import annotations

from repro.analytics.availability import (
    TRACE_OBSERVED,
    EntityTimeline,
    Interval,
)
from repro.analytics.ingest import TraceIngestor
from repro.analytics.store import AnalyticsStore
from repro.tracing.tracker import ReceivedTrace, Tracker

__all__ = ["AvailabilityArchive", "EntityRecord", "Interval"]


class EntityRecord(EntityTimeline):
    """Deprecated name for :class:`~repro.analytics.EntityTimeline`.

    Kept so pre-store callers (and tests) that build records directly and
    feed them :class:`~repro.tracing.tracker.ReceivedTrace` objects keep
    working; new code should use the timeline API on analytics events.
    """

    def observe(self, trace: ReceivedTrace) -> None:
        """Advance the record with one received trace (legacy entry point)."""
        self.apply(trace.trace_type.value, trace.received_ms)


class AvailabilityArchive:
    """Attach to a tracker; maintain availability records over the store.

    ``store`` defaults to a private in-memory
    :class:`~repro.analytics.AnalyticsStore`; pass a shared one to make
    the same persisted log feed the archive, the SLO reports and the
    ``repro analytics`` CLI at once.
    """

    def __init__(self, tracker: Tracker, store: AnalyticsStore | None = None) -> None:
        self.tracker = tracker
        self.store = store if store is not None else AnalyticsStore()
        self._records: dict[str, EntityRecord] = {}
        self._seen_seq = 0
        # the ingestor persists the trace (chaining any prior hook), then
        # our hook folds the newly stored events into the record view —
        # reads always derive from what the store actually holds
        self._ingestor = TraceIngestor(self.store, tracker)
        inner = tracker.on_trace

        def _hook(trace: ReceivedTrace) -> None:
            inner(trace)
            self._materialize()

        tracker.on_trace = _hook

    def _materialize(self) -> None:
        """Fold store events newer than the last seen seq into records."""
        fresh = [
            event
            for event in self.store.events(kind=TRACE_OBSERVED)
            if event.seq > self._seen_seq and event.entity is not None
        ]
        fresh.sort(key=lambda event: (event.time_ms, event.seq))
        for event in fresh:
            record = self._records.get(event.entity)
            if record is None:
                record = EntityRecord(entity_id=event.entity)
                self._records[event.entity] = record
            record.apply(str(event.fields.get("trace_type", "")), event.time_ms)
            if event.seq > self._seen_seq:
                self._seen_seq = event.seq

    @property
    def records(self) -> dict[str, EntityRecord]:
        """Entity id -> record, refreshed from the store on access."""
        self._materialize()
        return self._records

    def record_of(self, entity_id: str) -> EntityRecord | None:
        self._materialize()
        return self._records.get(entity_id)

    def report(self, now_ms: float) -> str:
        """A small availability report for every observed entity."""
        self._materialize()
        lines = [
            f"{'entity':<20s} {'state':>8s} {'uptime %':>9s} {'outages':>8s} "
            f"{'MTTR (s)':>9s}"
        ]
        for entity_id in sorted(self._records):
            record = self._records[entity_id]
            mttr = record.mean_time_to_recover_ms()
            lines.append(
                f"{entity_id:<20s} {'up' if record.up else 'down':>8s} "
                f"{100 * record.availability(now_ms):>8.2f}% "
                f"{record.down_count:>8d} "
                f"{(mttr / 1000.0 if mttr is not None else float('nan')):>9.1f}"
            )
        return "\n".join(lines)
