"""Availability archive: turn a trace stream into an availability record.

A downstream consumer of the tracing scheme usually wants more than raw
traces: *was the service up at 14:02?  what is its uptime?  how long do
its outages last?*  The archive consumes a tracker's verified traces and
maintains, per entity, an interval timeline of availability from which
those statistics derive.

Availability semantics: an entity is **up** from its JOIN (or first
READY) until a FAILED, DISCONNECT, SHUTDOWN or REVERTING_TO_SILENT_MODE
trace; FAILURE_SUSPICION marks the entity *suspect* but not yet down;
RECOVERING counts as up (it is responding).  A later JOIN/READY after a
down-marker opens a new up-interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tracing.tracker import ReceivedTrace, Tracker
from repro.tracing.traces import TraceType

#: Trace types that open an availability interval.
_UP_MARKERS = frozenset(
    {TraceType.JOIN, TraceType.READY, TraceType.RECOVERING, TraceType.ALLS_WELL}
)
#: Trace types that close one.
_DOWN_MARKERS = frozenset(
    {
        TraceType.FAILED,
        TraceType.DISCONNECT,
        TraceType.SHUTDOWN,
        TraceType.REVERTING_TO_SILENT_MODE,
    }
)


@dataclass(frozen=True, slots=True)
class Interval:
    """One closed-or-open availability interval."""

    start_ms: float
    end_ms: float | None  # None while still up

    def duration_ms(self, now_ms: float) -> float:
        end = self.end_ms if self.end_ms is not None else now_ms
        return max(0.0, end - self.start_ms)

    def contains(self, t_ms: float, now_ms: float) -> bool:
        end = self.end_ms if self.end_ms is not None else now_ms
        return self.start_ms <= t_ms < end


@dataclass(slots=True)
class EntityRecord:
    """Availability state and history for one entity."""

    entity_id: str
    intervals: list[Interval] = field(default_factory=list)
    suspect_since_ms: float | None = None
    last_trace_ms: float | None = None
    down_count: int = 0

    @property
    def up(self) -> bool:
        return bool(self.intervals) and self.intervals[-1].end_ms is None

    def _open(self, t_ms: float) -> None:
        if not self.up:
            self.intervals.append(Interval(start_ms=t_ms, end_ms=None))

    def _close(self, t_ms: float) -> None:
        if self.up:
            last = self.intervals[-1]
            self.intervals[-1] = Interval(last.start_ms, t_ms)
            self.down_count += 1

    def observe(self, trace: ReceivedTrace) -> None:
        self.last_trace_ms = trace.received_ms
        if trace.trace_type in _UP_MARKERS:
            self._open(trace.received_ms)
            self.suspect_since_ms = None
        elif trace.trace_type is TraceType.FAILURE_SUSPICION:
            if self.suspect_since_ms is None:
                self.suspect_since_ms = trace.received_ms
        elif trace.trace_type in _DOWN_MARKERS:
            self._close(trace.received_ms)
            self.suspect_since_ms = None

    # ------------------------------------------------------------- statistics

    def uptime_ms(self, now_ms: float) -> float:
        return sum(i.duration_ms(now_ms) for i in self.intervals)

    def availability(self, now_ms: float) -> float:
        """Fraction of time up since first observed, in [0, 1]."""
        if not self.intervals:
            return 0.0
        observed = now_ms - self.intervals[0].start_ms
        if observed <= 0:
            return 1.0 if self.up else 0.0
        return min(1.0, self.uptime_ms(now_ms) / observed)

    def was_up_at(self, t_ms: float, now_ms: float) -> bool:
        return any(i.contains(t_ms, now_ms) for i in self.intervals)

    def mean_time_to_recover_ms(self) -> float | None:
        """Mean gap between an interval's end and the next one's start."""
        gaps = [
            later.start_ms - earlier.end_ms
            for earlier, later in zip(self.intervals, self.intervals[1:], strict=False)
            if earlier.end_ms is not None
        ]
        return sum(gaps) / len(gaps) if gaps else None


class AvailabilityArchive:
    """Attach to a tracker and build availability records live."""

    def __init__(self, tracker: Tracker) -> None:
        self.tracker = tracker
        self.records: dict[str, EntityRecord] = {}
        self._previous_hook = tracker.on_trace
        tracker.on_trace = self._observe

    def _observe(self, trace: ReceivedTrace) -> None:
        record = self.records.get(trace.entity_id)
        if record is None:
            record = EntityRecord(entity_id=trace.entity_id)
            self.records[trace.entity_id] = record
        record.observe(trace)
        if self._previous_hook is not None:
            self._previous_hook(trace)

    def record_of(self, entity_id: str) -> EntityRecord | None:
        return self.records.get(entity_id)

    def report(self, now_ms: float) -> str:
        """A small availability report for every observed entity."""
        lines = [
            f"{'entity':<20s} {'state':>8s} {'uptime %':>9s} {'outages':>8s} "
            f"{'MTTR (s)':>9s}"
        ]
        for entity_id in sorted(self.records):
            record = self.records[entity_id]
            mttr = record.mean_time_to_recover_ms()
            lines.append(
                f"{entity_id:<20s} {'up' if record.up else 'down':>8s} "
                f"{100 * record.availability(now_ms):>8.2f}% "
                f"{record.down_count:>8d} "
                f"{(mttr / 1000.0 if mttr is not None else float('nan')):>9.1f}"
            )
        return "\n".join(lines)
