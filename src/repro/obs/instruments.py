"""Metric instruments: counters, gauges and histograms.

The three instrument kinds mirror what production metrics systems expose
(Prometheus, OpenTelemetry) while staying zero-dependency:

* :class:`Counter` — a monotonically increasing integer (messages routed,
  signatures verified, violations recorded).
* :class:`Gauge` — a value that goes up and down (queue depth, messages
  in flight).
* :class:`Histogram` — a streaming distribution.  Exact moments come from
  :class:`~repro.util.stats.RunningStats` (the same Welford accumulator the
  paper tables are built on); approximate percentiles come from a fixed set
  of bucket boundaries, so no raw samples are retained no matter how long a
  simulation runs.
"""

from __future__ import annotations

import bisect
import math

from repro.errors import InstrumentError
from repro.util.stats import RunningStats, StatSummary

#: Default histogram bucket upper bounds, in milliseconds.  Spans the range
#: the paper reports: sub-ms AES operations up to multi-second detection
#: latencies.  Values above the last bound land in an implicit +inf bucket.
DEFAULT_BUCKETS_MS: tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0, 60_000.0,
)


class Counter:
    """A named monotonically increasing count."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    @property
    def value(self) -> int:
        """The current count."""
        return self._value

    def inc(self, by: int = 1) -> None:
        """Add ``by`` (must be non-negative — counters never decrease)."""
        if by < 0:
            raise InstrumentError(f"counter {self.name!r} cannot decrease (by={by})")
        self._value += by

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self._value}>"


class Gauge:
    """A named value that may move in either direction."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    @property
    def value(self) -> float:
        """The current level."""
        return self._value

    def set(self, value: float) -> None:
        """Replace the level outright."""
        self._value = float(value)

    def inc(self, by: float = 1.0) -> None:
        """Raise the level by ``by``."""
        self._value += by

    def dec(self, by: float = 1.0) -> None:
        """Lower the level by ``by``."""
        self._value -= by

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self._value}>"


class Histogram:
    """Streaming distribution: exact moments plus fixed percentile buckets.

    ``observe()`` is O(log buckets); memory is O(buckets) regardless of how
    many samples arrive, which is what lets the hot paths record every
    message without the benchmark-only "retain all samples" pattern.
    """

    __slots__ = ("name", "bounds", "_bucket_counts", "_overflow", "_stats")

    def __init__(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS_MS
    ) -> None:
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise InstrumentError("bucket bounds must be strictly increasing")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self._bucket_counts = [0] * len(self.bounds)
        self._overflow = 0
        self._stats = RunningStats()

    # -- recording -------------------------------------------------------------

    def observe(self, value: float) -> None:
        """Incorporate one sample."""
        self._stats.add(value)
        index = bisect.bisect_left(self.bounds, value)
        if index >= len(self.bounds):
            self._overflow += 1
        else:
            self._bucket_counts[index] += 1

    # -- exact moments (Welford) -----------------------------------------------

    @property
    def count(self) -> int:
        """Samples observed so far."""
        return self._stats.count

    @property
    def mean(self) -> float:
        """Exact running mean (Welford)."""
        return self._stats.mean

    @property
    def std_dev(self) -> float:
        """Exact running standard deviation (Welford)."""
        return self._stats.std_dev

    @property
    def minimum(self) -> float:
        """Smallest sample observed."""
        return self._stats.minimum

    @property
    def maximum(self) -> float:
        """Largest sample observed."""
        return self._stats.maximum

    def summary(self) -> StatSummary:
        """The paper-format summary (mean, std dev, std error, min, max)."""
        return self._stats.summary()

    # -- bucketed percentiles ----------------------------------------------------

    def bucket_counts(self) -> dict[str, int]:
        """Cumulative-free view: ``"<=bound" -> count`` plus ``"+inf"``."""
        out = {f"<={b:g}": c for b, c in zip(self.bounds, self._bucket_counts, strict=True)}
        out["+inf"] = self._overflow
        return out

    def percentile(self, q: float) -> float:
        """Bucket-estimated percentile, ``q`` in [0, 100].

        Linear interpolation inside the containing bucket, clamped to the
        observed min/max so estimates never leave the sampled range.
        """
        if not 0.0 <= q <= 100.0:
            raise InstrumentError(f"percentile out of range: {q}")
        n = self._stats.count
        if n == 0:
            raise InstrumentError(f"histogram {self.name!r} is empty")
        rank = (q / 100.0) * n
        cumulative = 0
        lower = 0.0
        for bound, count in zip(self.bounds, self._bucket_counts, strict=True):
            upper = bound
            if cumulative + count >= rank and count > 0:
                frac = (rank - cumulative) / count
                estimate = lower + frac * (upper - lower)
                return min(max(estimate, self._stats.minimum), self._stats.maximum)
            cumulative += count
            lower = upper
        # rank falls in the overflow bucket: the best bound is the max seen
        return self._stats.maximum

    def to_dict(self) -> dict:
        """JSON-ready export: moments, key percentiles, bucket counts."""
        if self.count == 0:
            return {"count": 0}
        summary = self.summary()
        return {
            "count": summary.count,
            "mean": summary.mean,
            "std_dev": summary.std_dev,
            "std_error": summary.std_error,
            "min": summary.minimum,
            "max": summary.maximum,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
            "buckets": self.bucket_counts(),
        }

    def __repr__(self) -> str:
        if self.count == 0:
            return f"<Histogram {self.name} empty>"
        return (
            f"<Histogram {self.name} n={self.count} mean={self.mean:.3f}>"
        )


def format_value(value: float) -> str:
    """Compact numeric rendering for text snapshots."""
    if isinstance(value, int) or (math.isfinite(value) and value == int(value)):
        return str(int(value))
    return f"{value:.3f}"
