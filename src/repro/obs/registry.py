"""The metrics registry: named instruments, families, and snapshots.

One :class:`MetricsRegistry` is shared by every component of a deployment
(the :class:`~repro.sim.monitor.Monitor` owns it and hands it out), so a
single ``snapshot()`` call sees the whole system.  Instrument names follow
a dotted convention, ``<family>.<noun>.<detail>`` — ``broker.msgs.ingress``,
``tracker.detection.latency_ms``, ``crypto.ops.trace_sign`` — and the first
segment groups instruments into the *families* the snapshot renders
(``broker``, ``tracker``, ``transport``, ``tdn``, ``crypto``, …).  See
``docs/OBSERVABILITY.md`` for the taxonomy.
"""

from __future__ import annotations

import json

from repro.errors import InstrumentError
from repro.obs.instruments import Counter, Gauge, Histogram, format_value
from repro.obs.timer import Timer
from repro.util.clock import Clock


class MetricsRegistry:
    """Get-or-create store of named counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create ---------------------------------------------------------

    def _check_unique(self, name: str, kind: dict) -> None:
        for registry in (self._counters, self._gauges, self._histograms):
            if registry is not kind and name in registry:
                raise InstrumentError(
                    f"instrument {name!r} already registered with a different kind"
                )

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        if name not in self._counters:
            self._check_unique(name, self._counters)
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        if name not in self._gauges:
            self._check_unique(name, self._gauges)
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str, bounds: tuple[float, ...] | None = None) -> Histogram:
        """The histogram called ``name``, created on first use."""
        if name not in self._histograms:
            self._check_unique(name, self._histograms)
            self._histograms[name] = (
                Histogram(name, bounds) if bounds is not None else Histogram(name)
            )
        return self._histograms[name]

    def timer(self, name: str, clock: Clock) -> Timer:
        """A fresh :class:`Timer` over the histogram called ``name``."""
        return Timer(self.histogram(name), clock)

    # -- convenience reads -------------------------------------------------------

    def counter_value(self, name: str) -> int:
        """Counter value, 0 if the counter was never created."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def gauge_value(self, name: str) -> float:
        """Gauge level, 0.0 if the gauge was never created."""
        gauge = self._gauges.get(name)
        return gauge.value if gauge is not None else 0.0

    def names(self) -> list[str]:
        """Every registered instrument name, sorted."""
        return sorted([*self._counters, *self._gauges, *self._histograms])

    def families(self) -> dict[str, list[str]]:
        """First name segment -> sorted instrument names in that family."""
        grouped: dict[str, list[str]] = {}
        for name in self.names():
            grouped.setdefault(name.split(".", 1)[0], []).append(name)
        return grouped

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- snapshot ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable view of every instrument's current state.

        Empty histograms are included with ``count: 0`` so a consumer can
        tell "instrument exists but nothing happened" from "no instrument".
        """
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: int = 2) -> str:
        """The :meth:`snapshot` dict as stable, sorted JSON."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render_text(self) -> str:
        """Human-readable snapshot grouped by instrument family."""
        lines: list[str] = []
        families = self.families()
        for family in sorted(families):
            lines.append(f"[{family}]")
            for name in families[family]:
                if name in self._counters:
                    lines.append(f"  {name:<44s} {self._counters[name].value}")
                elif name in self._gauges:
                    lines.append(
                        f"  {name:<44s} {format_value(self._gauges[name].value)}"
                    )
                else:
                    hist = self._histograms[name]
                    if hist.count == 0:
                        lines.append(f"  {name:<44s} (no samples)")
                    else:
                        lines.append(
                            f"  {name:<44s} n={hist.count} "
                            f"mean={hist.mean:.3f} sd={hist.std_dev:.3f} "
                            f"p50={hist.percentile(50):.3f} "
                            f"p99={hist.percentile(99):.3f} "
                            f"max={hist.maximum:.3f}"
                        )
            lines.append("")
        return "\n".join(lines).rstrip("\n")
