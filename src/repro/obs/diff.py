"""Snapshot diffing: per-instrument deltas between two registry snapshots.

The evidence format of docs/PERFORMANCE.md: capture a
:meth:`~repro.obs.registry.MetricsRegistry.snapshot` before and after a
change, then :func:`diff_snapshots` computes per-instrument deltas and
:func:`render_diff` lays them out as the fixed-width table perf PRs paste.
``repro metrics --diff before.json after.json`` is the CLI entry point.

Histograms are compared on their reproducible aggregates — sample count,
sum (``count * mean``) and mean — because bucket counts answer "what
changed" less directly than "how much less total work happened".
"""

from __future__ import annotations

import json

from repro.errors import SerializationError


def load_snapshot(path: str) -> dict:
    """Read one snapshot JSON file, tolerating partial documents.

    Accepts anything :meth:`MetricsRegistry.snapshot` (or a bench script
    wrapping it) produced; missing sections normalize to empty so a
    counters-only capture still diffs cleanly.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            raw = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SerializationError(f"cannot read snapshot {path!r}: {exc}") from exc
    if not isinstance(raw, dict):
        raise SerializationError(f"snapshot {path!r} is not a JSON object")
    # bench wrappers nest the registry snapshot under "snapshot"
    if "snapshot" in raw and isinstance(raw["snapshot"], dict):
        raw = raw["snapshot"]
    return {
        "counters": dict(raw.get("counters", {})),
        "gauges": dict(raw.get("gauges", {})),
        "histograms": dict(raw.get("histograms", {})),
    }


def _pct(before: float, delta: float) -> float | None:
    """Relative change in percent; None when the baseline is zero."""
    if before == 0:
        return None
    return 100.0 * delta / before


def _histogram_aggregates(hist: dict) -> dict:
    count = float(hist.get("count", 0) or 0)
    mean = float(hist.get("mean", 0.0) or 0.0)
    return {"count": count, "sum": count * mean, "mean": mean}


def diff_snapshots(before: dict, after: dict) -> dict:
    """Per-instrument deltas between two snapshot dicts.

    Returns ``{"counters": {name: {before, after, delta, pct}}, "gauges":
    {...}, "histograms": {name: {count: {...}, sum: {...}, mean: {...}}}}``
    covering the union of instrument names; an instrument absent on one
    side reads as zero/empty there.
    """
    result: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for section in ("counters", "gauges"):
        b_side, a_side = before.get(section, {}), after.get(section, {})
        for name in sorted({*b_side, *a_side}):
            b = float(b_side.get(name, 0) or 0)
            a = float(a_side.get(name, 0) or 0)
            result[section][name] = {
                "before": b,
                "after": a,
                "delta": a - b,
                "pct": _pct(b, a - b),
            }
    b_hists = before.get("histograms", {})
    a_hists = after.get("histograms", {})
    for name in sorted({*b_hists, *a_hists}):
        b_agg = _histogram_aggregates(b_hists.get(name, {}))
        a_agg = _histogram_aggregates(a_hists.get(name, {}))
        result["histograms"][name] = {
            stat: {
                "before": b_agg[stat],
                "after": a_agg[stat],
                "delta": a_agg[stat] - b_agg[stat],
                "pct": _pct(b_agg[stat], a_agg[stat] - b_agg[stat]),
            }
            for stat in ("count", "sum", "mean")
        }
    return result


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.3f}"


def _fmt_delta(value: float) -> str:
    text = _fmt(value)
    return f"+{text}" if value > 0 else text


def _fmt_pct(pct: float | None) -> str:
    return "    —" if pct is None else f"{pct:+.1f}%"


def render_diff(diff: dict, only_changed: bool = True) -> str:
    """Fixed-width table of a :func:`diff_snapshots` result.

    ``only_changed`` (the default) drops rows whose delta is zero, which
    is what a perf PR wants to paste; pass ``False`` for the full union.
    """
    lines: list[str] = []
    header = f"{'instrument':<46s} {'before':>14s} {'after':>14s} {'delta':>14s} {'%':>8s}"

    def emit(section: str, rows: list[str]) -> None:
        if rows:
            lines.append(f"[{section}]")
            lines.extend(rows)
            lines.append("")

    for section in ("counters", "gauges"):
        rows = []
        for name, entry in diff.get(section, {}).items():
            if only_changed and entry["delta"] == 0:
                continue
            rows.append(
                f"{name:<46s} {_fmt(entry['before']):>14s} "
                f"{_fmt(entry['after']):>14s} {_fmt_delta(entry['delta']):>14s} "
                f"{_fmt_pct(entry['pct']):>8s}"
            )
        emit(section, rows)

    rows = []
    for name, entry in diff.get("histograms", {}).items():
        if only_changed and all(entry[k]["delta"] == 0 for k in ("count", "sum")):
            continue
        for stat in ("count", "sum", "mean"):
            sub = entry[stat]
            label = f"{name}.{stat}" if stat != "count" else f"{name}.n"
            rows.append(
                f"{label:<46s} {_fmt(sub['before']):>14s} "
                f"{_fmt(sub['after']):>14s} {_fmt_delta(sub['delta']):>14s} "
                f"{_fmt_pct(sub['pct']):>8s}"
            )
    emit("histograms", rows)

    if not lines:
        return "(no differences)"
    return "\n".join([header, ""] + lines).rstrip("\n")
