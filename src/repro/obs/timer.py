"""Virtual-time span measurement.

A :class:`Timer` brackets a code region and records its duration into a
:class:`~repro.obs.instruments.Histogram`.  The clock is injected — inside
the simulator it is the :class:`~repro.util.clock.VirtualClock` (or a
node's skewed view of it), so measured spans are in *virtual* milliseconds
and deterministic run-to-run; the live asyncio runtime can pass a
:class:`~repro.util.clock.WallClock` instead.

Timers are re-entrant-safe in the simple sense that each ``with`` block
measures independently, and they work inside simulation process bodies::

    with registry.timer("tdn.query.latency_ms", sim.clock):
        result = yield from self._serve(query)   # clock advances across yields
"""

from __future__ import annotations

from repro.obs.instruments import Histogram
from repro.util.clock import Clock


class Timer:
    """Context manager recording elapsed clock time into a histogram."""

    __slots__ = ("histogram", "clock", "_start", "last_ms")

    def __init__(self, histogram: Histogram, clock: Clock) -> None:
        self.histogram = histogram
        self.clock = clock
        self._start: float | None = None
        #: Duration of the most recently completed span, in milliseconds.
        self.last_ms: float | None = None

    def __enter__(self) -> "Timer":
        self._start = self.clock.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is None:  # pragma: no cover - enter always sets it
            return
        self.last_ms = self.clock.now() - self._start
        self._start = None
        # spans that raise are still spans: record them so error paths are
        # visible in latency distributions rather than silently missing
        self.histogram.observe(self.last_ms)

    def observe_span(self, start_ms: float, end_ms: float) -> float:
        """Record an externally measured span (for callback-style code)."""
        duration = end_ms - start_ms
        self.histogram.observe(duration)
        self.last_ms = duration
        return duration
