"""Structured event journal: an append-only log of typed records.

Where the :class:`~repro.obs.registry.MetricsRegistry` aggregates, the
journal *narrates*: one record per noteworthy protocol event (a violation,
a dropped payload, a failure declaration), with the fields an operator
greps for — topic, principal, byte size — promoted to first-class columns
and everything else carried in ``fields``.

Exports are line-oriented text (for eyeballing) and JSON (for tooling);
``EventJournal.from_json`` round-trips the JSON export.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterator, Mapping


@dataclass(frozen=True, slots=True)
class JournalRecord:
    """One typed journal entry."""

    time_ms: float
    kind: str
    topic: str | None = None
    principal: str | None = None
    size_bytes: int | None = None
    fields: Mapping[str, object] = field(default_factory=dict)

    def details(self) -> dict:
        """Flat detail dict: typed columns merged back over ``fields``."""
        out = dict(self.fields)
        if self.topic is not None:
            out["topic"] = self.topic
        if self.principal is not None:
            out["principal"] = self.principal
        if self.size_bytes is not None:
            out["size_bytes"] = self.size_bytes
        return out

    def to_dict(self) -> dict:
        """JSON-ready record form; ``from_dict`` round-trips it."""
        out: dict = {"time_ms": self.time_ms, "kind": self.kind}
        if self.topic is not None:
            out["topic"] = self.topic
        if self.principal is not None:
            out["principal"] = self.principal
        if self.size_bytes is not None:
            out["size_bytes"] = self.size_bytes
        if self.fields:
            out["fields"] = dict(self.fields)
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "JournalRecord":
        """Rebuild a record from its :meth:`to_dict` form."""
        return cls(
            time_ms=float(data["time_ms"]),
            kind=str(data["kind"]),
            topic=data.get("topic"),
            principal=data.get("principal"),
            size_bytes=(
                int(data["size_bytes"]) if data.get("size_bytes") is not None else None
            ),
            fields=dict(data.get("fields", {})),
        )

    def render(self) -> str:
        """One text line: ``t=12.5ms violation principal=mallory ...``."""
        parts = [f"t={self.time_ms:.3f}ms", self.kind]
        if self.topic is not None:
            parts.append(f"topic={self.topic}")
        if self.principal is not None:
            parts.append(f"principal={self.principal}")
        if self.size_bytes is not None:
            parts.append(f"size={self.size_bytes}B")
        for field_name in sorted(self.fields):
            parts.append(f"{field_name}={self.fields[field_name]}")
        return " ".join(parts)


class EventJournal:
    """Append-only list of :class:`JournalRecord`."""

    def __init__(self) -> None:
        self._records: list[JournalRecord] = []

    # -- recording -------------------------------------------------------------

    def record(
        self,
        time_ms: float,
        kind: str,
        topic: str | None = None,
        principal: str | None = None,
        size_bytes: int | None = None,
        **fields,
    ) -> JournalRecord:
        """Append (and return) one typed record at virtual time ``time_ms``."""
        entry = JournalRecord(
            time_ms=float(time_ms),
            kind=kind,
            topic=topic,
            principal=principal,
            size_bytes=size_bytes,
            fields=fields,
        )
        self._records.append(entry)
        return entry

    def append(self, entry: JournalRecord) -> None:
        """Append an already-built record (imports, replays)."""
        self._records.append(entry)

    # -- reading ----------------------------------------------------------------

    def records(self, kind: str | None = None) -> list[JournalRecord]:
        """All records, or just those of one ``kind``, in append order."""
        if kind is None:
            return list(self._records)
        return [r for r in self._records if r.kind == kind]

    def kinds(self) -> dict[str, int]:
        """Event kind -> occurrence count."""
        counts: dict[str, int] = {}
        for entry in self._records:
            counts[entry.kind] = counts.get(entry.kind, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[JournalRecord]:
        return iter(self._records)

    # -- export ------------------------------------------------------------------

    def export_text(self, kind: str | None = None, limit: int | None = None) -> str:
        """Line-per-record text rendering (optionally filtered / tail-limited)."""
        selected = self.records(kind)
        if limit is not None:
            selected = selected[-limit:]
        return "\n".join(entry.render() for entry in selected)

    def export_json(self, indent: int = 2) -> str:
        """The whole journal as a JSON array (``from_json`` round-trips)."""
        return json.dumps(
            [entry.to_dict() for entry in self._records],
            indent=indent,
            sort_keys=True,
            default=str,
        )

    @classmethod
    def from_json(cls, text: str) -> "EventJournal":
        """Rebuild a journal from an :meth:`export_json` document."""
        journal = cls()
        for data in json.loads(text):
            journal.append(JournalRecord.from_dict(data))
        return journal
