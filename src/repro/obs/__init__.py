"""``repro.obs`` — the unified observability layer.

Zero-dependency instrumentation shared by the whole runtime: a
:class:`MetricsRegistry` of named :class:`Counter` / :class:`Gauge` /
:class:`Histogram` instruments, a virtual-clock-driven :class:`Timer`,
and a structured :class:`EventJournal`.  Every deployment owns one
registry (via its :class:`~repro.sim.monitor.Monitor`); benchmarks and
the ``repro metrics`` CLI read system-wide numbers out of it instead of
keeping private accumulators.  Naming convention and instrument taxonomy:
``docs/OBSERVABILITY.md``.
"""

from repro.obs.diff import diff_snapshots, load_snapshot, render_diff
from repro.obs.instruments import (
    DEFAULT_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
)
from repro.obs.journal import EventJournal, JournalRecord
from repro.obs.registry import MetricsRegistry
from repro.obs.timer import Timer

__all__ = [
    "DEFAULT_BUCKETS_MS",
    "Counter",
    "EventJournal",
    "Gauge",
    "Histogram",
    "JournalRecord",
    "MetricsRegistry",
    "Timer",
    "diff_snapshots",
    "load_snapshot",
    "render_diff",
]
