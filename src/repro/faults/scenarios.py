"""The chaos scenario catalog (docs/FAULTS.md) and its CI seed gating.

Each scenario is a deterministic deployment-plus-:class:`FaultPlan` pair
run from a single seed: three brokers in a ring (the paper's Figure 1
chain closed with a b1–b3 link so one edge can die without severing the
fabric), one traced entity on ``b1``, one tracker on ``b3``, and a fast
ping policy so detection happens inside a short run.

``run_scenario`` returns a small JSON snapshot of fault and recovery
counters; CI runs the ``broker-crash`` scenario and compares the output
against ``benchmarks/results/chaos_seed.json`` exactly (the same gating
pattern as ``bench/routing_smoke.py``).
"""

from __future__ import annotations

import json

from repro.errors import ConfigurationError
from repro.messaging.message import reset_message_ids
from repro.tracing.failure import AdaptivePingPolicy

from repro.faults.controller import FaultController
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan

#: Fast detection so scenarios resolve within a ~90 s virtual run while
#: keeping the paper's 3-miss / 6-miss thresholds.
CHAOS_PING_POLICY = AdaptivePingPolicy(
    base_interval_ms=500.0,
    min_interval_ms=125.0,
    max_interval_ms=1_000.0,
    response_deadline_ms=200.0,
)

#: Counters the seed snapshot pins exactly (all deterministic per seed).
CHAOS_COUNTERS = (
    "broker.msgs.delivered",
    "broker.msgs.unroutable",
    "broker.interest.stale_forwards",
    "faults.injected.broker_crash",
    "faults.injected.link_partition",
    "faults.injected.packet_loss",
    "faults.injected.delay_spike",
    "faults.injected.entity_crash",
    "trace.recovery.detected",
    "trace.recovery.completed",
    "tracker.pings.sent",
    "tracker.traces.received",
)

ENTITY_ID = "svc"
TRACKER_ID = "w"
ENTITY_BROKER = "b1"
TRACKER_BROKER = "b3"


def _broker_crash_plan() -> FaultPlan:
    return FaultPlan(
        name="broker-crash",
        events=(
            FaultEvent(
                kind=FaultKind.BROKER_CRASH,
                at_ms=20_000.0,
                target="b1",
                duration_ms=30_000.0,
                failover_to="b2",
                detect_after_ms=2_000.0,
            ),
        ),
    )


def _link_partition_plan() -> FaultPlan:
    return FaultPlan(
        name="link-partition",
        events=(
            FaultEvent(
                kind=FaultKind.LINK_PARTITION,
                at_ms=20_000.0,
                target="b1",
                peer="b3",
                duration_ms=20_000.0,
            ),
        ),
    )


def _packet_loss_plan() -> FaultPlan:
    return FaultPlan(
        name="packet-loss",
        events=(
            FaultEvent(
                kind=FaultKind.PACKET_LOSS,
                at_ms=20_000.0,
                target="b1",
                duration_ms=20_000.0,
                loss_probability=0.3,
            ),
        ),
    )


def _delay_spike_plan() -> FaultPlan:
    return FaultPlan(
        name="delay-spike",
        events=(
            FaultEvent(
                kind=FaultKind.DELAY_SPIKE,
                at_ms=20_000.0,
                target="b1",
                duration_ms=20_000.0,
                extra_delay_ms=250.0,
            ),
        ),
    )


def _entity_churn_plan() -> FaultPlan:
    return FaultPlan(
        name="entity-churn",
        events=(
            FaultEvent(
                kind=FaultKind.ENTITY_CRASH,
                at_ms=15_000.0,
                target=ENTITY_ID,
                duration_ms=10_000.0,
            ),
            FaultEvent(
                kind=FaultKind.ENTITY_CRASH,
                at_ms=45_000.0,
                target=ENTITY_ID,
                duration_ms=10_000.0,
            ),
        ),
    )


#: name -> (plan builder, default run duration in virtual ms)
SCENARIOS: dict = {
    "broker-crash": (_broker_crash_plan, 90_000.0),
    "link-partition": (_link_partition_plan, 60_000.0),
    "packet-loss": (_packet_loss_plan, 60_000.0),
    "delay-spike": (_delay_spike_plan, 60_000.0),
    "entity-churn": (_entity_churn_plan, 90_000.0),
}


def scenario_plan(name: str) -> FaultPlan:
    """The FaultPlan a named scenario runs (for inspection / docs)."""
    try:
        builder, _ = SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown chaos scenario {name!r}; known: {', '.join(sorted(SCENARIOS))}"
        ) from None
    return builder()


def build_chaos_deployment(
    seed: int = 42, legacy_hot_paths: bool = False, federation: bool = False
):
    """The shared three-broker-ring deployment every scenario runs on.

    ``legacy_hot_paths`` disables the token-verification cache, ping
    coalescing, the TDN discovery cache (docs/PERFORMANCE.md) and the
    per-direction duplex-link jitter streams so the run reproduces the
    pre-optimization behaviour pinned by
    ``benchmarks/results/chaos_seed_legacy.json``.

    ``federation`` swaps in the summarized-interest control plane
    (:mod:`repro.messaging.federation`); at chaos-scenario pattern counts
    the summaries stay exact, so snapshots must match the verbatim plane
    bit-for-bit (the federation equivalence suite pins this).

    The codec is pinned to ``json`` regardless of ``REPRO_CODEC``: chaos
    snapshots are compared bit-for-bit against committed seeds, and those
    seeds encode json wire sizes.
    """
    from repro import build_deployment

    dep = build_deployment(
        broker_ids=["b1", "b2", "b3"],
        seed=seed,
        ping_policy=CHAOS_PING_POLICY,
        extra_links=[("b1", "b3")],
        token_cache=not legacy_hot_paths,
        ping_coalescing=not legacy_hot_paths,
        tdn_query_cache=not legacy_hot_paths,
        per_direction_link_rng=not legacy_hot_paths,
        federation=federation,
        codec="json",
    )
    return dep


def run_scenario(
    name: str,
    seed: int = 42,
    duration_ms: float | None = None,
    legacy_hot_paths: bool = False,
    federation: bool = False,
    analytics_store=None,
    deployment_probe=None,
) -> dict:
    """Run one scenario end to end and return its snapshot dict.

    ``analytics_store`` (an :class:`~repro.analytics.AnalyticsStore`)
    attaches the persistent analytics feeds before the run and finalizes
    them — journal copy plus run metadata — after the horizon; store
    appends draw no randomness and consume no virtual time, so the
    snapshot stays bit-identical to an uninstrumented run.
    ``deployment_probe`` is called with the live deployment after the
    run (the audit gate uses this to inspect counters and journal).
    """
    plan = scenario_plan(name)
    if duration_ms is None:
        duration_ms = SCENARIOS[name][1]

    # Message ids ride on the wire (their digit width changes payload sizes
    # and hence sampled latencies), so the bit-identical-replay promise needs
    # the process-global counter rewound before every run.
    reset_message_ids()
    dep = build_chaos_deployment(
        seed, legacy_hot_paths=legacy_hot_paths, federation=federation
    )
    if analytics_store is not None:
        dep.attach_analytics(analytics_store)
    entity = dep.add_traced_entity(ENTITY_ID)
    tracker = dep.add_tracker(TRACKER_ID)
    tracker.interest_refresh_ms = 0.0
    tracker.connect(TRACKER_BROKER)
    entity.start(ENTITY_BROKER)

    controller = FaultController(dep, plan)
    controller.start()

    dep.sim.run(until=3_000)
    tracker.track(ENTITY_ID)
    dep.sim.run(until=duration_ms)

    if analytics_store is not None:
        dep.finalize_analytics(scenario=name, seed=seed, duration_ms=duration_ms)
    if deployment_probe is not None:
        deployment_probe(dep)

    registry = dep.metrics
    counters = {name_: registry.counter_value(name_) for name_ in CHAOS_COUNTERS}
    recovery = registry.snapshot()["histograms"].get(
        "trace.recovery_ms", {"count": 0}
    )
    recovery_block = {"count": recovery.get("count", 0)}
    if recovery_block["count"]:
        recovery_block.update(
            mean_ms=recovery["mean"],
            min_ms=recovery["min"],
            max_ms=recovery["max"],
        )
    return {
        "scenario": name,
        "seed": seed,
        "duration_ms": duration_ms,
        "counters": counters,
        "recovery": recovery_block,
        "faults_active_end": registry.gauge_value("faults.active"),
        "journal": {
            "injected": len(dep.journal.records("fault.injected")),
            "reverted": len(dep.journal.records("fault.reverted")),
        },
    }


def compare_to_seed(snapshot: dict, seed_snapshot: dict) -> list[str]:
    """Exact-match comparison; returns human-readable findings, empty = clean.

    Chaos runs are bit-identical per seed, so unlike the routing gate the
    chaos gate pins *everything*: fault counts, recovery latency moments,
    delivery totals.  Any drift means either nondeterminism crept in or a
    behaviour change needs a deliberate seed-snapshot refresh.
    """
    findings: list[str] = []
    for field in ("scenario", "seed", "duration_ms"):
        if snapshot.get(field) != seed_snapshot.get(field):
            findings.append(
                f"{field} mismatch: {snapshot.get(field)!r} != "
                f"seed {seed_snapshot.get(field)!r}"
            )
    live, seed = snapshot.get("counters", {}), seed_snapshot.get("counters", {})
    for name in sorted({*live, *seed}):
        if live.get(name, 0) != seed.get(name, 0):
            findings.append(
                f"{name} drifted: {live.get(name, 0)} != seed {seed.get(name, 0)}"
            )
    if snapshot.get("recovery") != seed_snapshot.get("recovery"):
        findings.append(
            f"recovery drifted: {snapshot.get('recovery')} != "
            f"seed {seed_snapshot.get('recovery')}"
        )
    if snapshot.get("faults_active_end") != seed_snapshot.get("faults_active_end"):
        findings.append(
            f"faults_active_end drifted: {snapshot.get('faults_active_end')} != "
            f"seed {seed_snapshot.get('faults_active_end')}"
        )
    if snapshot.get("journal") != seed_snapshot.get("journal"):
        findings.append(
            f"journal transition counts drifted: {snapshot.get('journal')} != "
            f"seed {seed_snapshot.get('journal')}"
        )
    return findings


def render_snapshot(snapshot: dict) -> str:
    """Stable JSON form used for the committed seed file and CI dumps."""
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
