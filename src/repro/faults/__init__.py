"""Deterministic fault injection (chaos) for the simulated fabric.

The paper claims availability tracking survives broker failures and lossy
links; this package makes that claim testable.  A :class:`FaultPlan` is a
declarative schedule of fault events (broker crash/restart, link
partition/heal, packet-loss and delay-spike windows, traced-entity
churn); a :class:`FaultController` executes it as a sim process, journals
every transition through ``repro.obs``, and measures detection →
re-registration latency into the ``trace.recovery_ms`` histogram.

Everything is driven by dedicated children of the deployment seed, so a
chaos run replays bit-identically and never perturbs the healthy fabric's
RNG draws.  See docs/FAULTS.md for the fault model and scenario catalog.
"""

from repro.faults.controller import FaultController
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.faults.scenarios import (
    SCENARIOS,
    build_chaos_deployment,
    compare_to_seed,
    render_snapshot,
    run_scenario,
    scenario_plan,
)

__all__ = [
    "FaultController",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "SCENARIOS",
    "build_chaos_deployment",
    "compare_to_seed",
    "render_snapshot",
    "run_scenario",
    "scenario_plan",
]
