"""Declarative fault schedules.

A :class:`FaultPlan` is data, not behaviour: an ordered set of
:class:`FaultEvent` records saying *what* goes wrong, *when* (virtual
milliseconds), and for *how long*.  The
:class:`~repro.faults.controller.FaultController` interprets the plan
against a live deployment; keeping the schedule declarative means the same
plan replays bit-identically under the same seed, serializes into CI seed
snapshots, and reads like the scenario catalog in docs/FAULTS.md.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ValidationError


class FaultKind(enum.Enum):
    """The failure classes the controller knows how to inject."""

    BROKER_CRASH = "broker_crash"
    LINK_PARTITION = "link_partition"
    PACKET_LOSS = "packet_loss"
    DELAY_SPIKE = "delay_spike"
    ENTITY_CRASH = "entity_crash"


#: Kinds that operate on a broker pair and therefore require ``peer``.
_PAIR_KINDS = frozenset({FaultKind.LINK_PARTITION})
#: Kinds whose effect is a window and therefore require ``duration_ms``.
_WINDOW_KINDS = frozenset(
    {FaultKind.LINK_PARTITION, FaultKind.PACKET_LOSS, FaultKind.DELAY_SPIKE}
)


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled fault.

    ``target`` names the victim: a broker id for broker/link/window kinds,
    an entity id for ``ENTITY_CRASH``.  ``peer`` is the other endpoint of
    a partitioned link.  ``duration_ms`` of ``None`` means the fault is
    never reverted inside the run (a permanent crash).  For broker
    crashes, ``failover_to`` asks the controller to migrate the broker's
    traced entities to another broker once ``detect_after_ms`` of virtual
    time has passed — modelling the Ref [3] discovery delay between the
    crash and the entities noticing it.
    """

    kind: FaultKind
    at_ms: float
    target: str
    duration_ms: float | None = None
    peer: str | None = None
    loss_probability: float = 0.0
    extra_delay_ms: float = 0.0
    failover_to: str | None = None
    detect_after_ms: float = 2000.0

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValidationError(f"at_ms must be >= 0, got {self.at_ms}")
        if self.duration_ms is not None and self.duration_ms <= 0:
            raise ValidationError(
                f"duration_ms must be positive or None, got {self.duration_ms}"
            )
        if not self.target:
            raise ValidationError("fault event needs a target")
        if self.kind in _PAIR_KINDS and not self.peer:
            raise ValidationError(f"{self.kind.value} needs a peer broker")
        if self.kind not in _PAIR_KINDS and self.peer is not None:
            raise ValidationError(f"{self.kind.value} does not take a peer")
        if self.kind in _WINDOW_KINDS and self.duration_ms is None:
            raise ValidationError(f"{self.kind.value} needs a duration_ms window")
        if self.kind is FaultKind.PACKET_LOSS and not 0.0 < self.loss_probability <= 1.0:
            raise ValidationError(
                f"packet_loss needs loss_probability in (0, 1], got "
                f"{self.loss_probability}"
            )
        if self.kind is FaultKind.DELAY_SPIKE and self.extra_delay_ms <= 0.0:
            raise ValidationError(
                f"delay_spike needs extra_delay_ms > 0, got {self.extra_delay_ms}"
            )
        if self.failover_to is not None and self.kind is not FaultKind.BROKER_CRASH:
            raise ValidationError("failover_to only applies to broker_crash")
        if self.detect_after_ms < 0:
            raise ValidationError(
                f"detect_after_ms must be >= 0, got {self.detect_after_ms}"
            )

    @property
    def revert_at_ms(self) -> float | None:
        """Virtual time the fault heals, or None for permanent faults."""
        if self.duration_ms is None:
            return None
        return self.at_ms + self.duration_ms

    def to_dict(self) -> dict:
        """JSON-ready event form; ``from_dict`` round-trips it."""
        return {
            "kind": self.kind.value,
            "at_ms": self.at_ms,
            "target": self.target,
            "duration_ms": self.duration_ms,
            "peer": self.peer,
            "loss_probability": self.loss_probability,
            "extra_delay_ms": self.extra_delay_ms,
            "failover_to": self.failover_to,
            "detect_after_ms": self.detect_after_ms,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        """Parse one event dict; raises ``ConfigurationError`` if invalid."""
        try:
            return cls(
                kind=FaultKind(data["kind"]),
                at_ms=float(data["at_ms"]),
                target=str(data["target"]),
                duration_ms=(
                    None if data.get("duration_ms") is None
                    else float(data["duration_ms"])
                ),
                peer=(None if data.get("peer") is None else str(data["peer"])),
                loss_probability=float(data.get("loss_probability", 0.0)),
                extra_delay_ms=float(data.get("extra_delay_ms", 0.0)),
                failover_to=(
                    None if data.get("failover_to") is None
                    else str(data["failover_to"])
                ),
                detect_after_ms=float(data.get("detect_after_ms", 2000.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed fault event: {exc}") from exc


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A named, ordered schedule of fault events."""

    name: str
    events: tuple[FaultEvent, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("fault plan needs a name")
        object.__setattr__(self, "events", tuple(self.events))

    def timeline(self) -> tuple[FaultEvent, ...]:
        """Events sorted by injection time (stable for equal times)."""
        return tuple(sorted(self.events, key=lambda e: e.at_ms))

    def horizon_ms(self) -> float:
        """Latest instant the plan touches (injection or revert)."""
        horizon = 0.0
        for event in self.events:
            horizon = max(horizon, event.revert_at_ms or event.at_ms)
        return horizon

    def to_dict(self) -> dict:
        """JSON-ready plan form (events in timeline order)."""
        return {
            "name": self.name,
            "events": [event.to_dict() for event in self.timeline()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Parse a plan dict; raises ``ConfigurationError`` if invalid."""
        try:
            return cls(
                name=str(data["name"]),
                events=tuple(
                    FaultEvent.from_dict(event) for event in data["events"]
                ),
            )
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"malformed fault plan: {exc}") from exc

    def __len__(self) -> int:
        return len(self.events)
