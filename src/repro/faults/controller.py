"""The fault controller: a sim process that executes a FaultPlan.

The controller walks the plan's timeline inside the simulation, applying
each fault at its virtual injection time and reverting it when its window
closes.  Every transition is journaled through ``repro.obs`` and counted
(``faults.injected.<kind>``, ``faults.active``), and a shared
:class:`~repro.tracing.registration.RecoveryProbe` is installed on every
broker's TraceManager so detection → re-registration latency lands in the
``trace.recovery_ms`` histogram.

Determinism: all controller randomness comes from two dedicated
``RandomStreams`` children of the deployment seed — ``faults`` for the
controller itself and ``faults.links`` for loss/delay windows — so adding
chaos never perturbs the draws the healthy fabric makes (see
``sim/random.py``).
"""

from __future__ import annotations

from typing import Generator

from repro.deployment import Deployment
from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import Event
from repro.tracing.registration import RecoveryProbe
from repro.transport.disruption import LinkDisruption

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan


class FaultController:
    """Applies and reverts the faults of one plan against one deployment."""

    def __init__(self, deployment: Deployment, plan: FaultPlan) -> None:
        self.deployment = deployment
        self.plan = plan
        self.sim = deployment.sim
        self.network = deployment.network
        self.metrics = deployment.metrics
        self.journal = deployment.journal
        self.rng = self.network.streams.stream("faults")
        self._links_rng = self.network.streams.stream("faults.links")
        self._started = False
        # apply-time state needed to revert: index by position in the
        # timeline so two faults on the same target don't collide
        self._saved_neighbors: dict[int, tuple[str, ...]] = {}
        self._saved_disruptions: dict[int, list] = {}

        self.probe = RecoveryProbe(metrics=self.metrics, journal=self.journal)
        for manager in deployment.managers.values():
            manager.recovery_probe = self.probe

    # ---------------------------------------------------------------- lifecycle

    def start(self):
        """Spawn the controller process; call before ``sim.run``."""
        if self._started:
            raise SimulationError("fault controller already started")
        self._started = True
        return self.sim.process(self._run(), name=f"faults.{self.plan.name}")

    def _run(self) -> Generator[Event, None, None]:
        for index, event in enumerate(self.plan.timeline()):
            if event.at_ms > self.sim.now:
                yield self.sim.timeout(event.at_ms - self.sim.now)
            self._apply(index, event)
            revert_at = event.revert_at_ms
            if revert_at is not None:
                self.sim.call_at(
                    revert_at, lambda i=index, e=event: self._revert(i, e)
                )

    # ------------------------------------------------------------------- apply

    def _apply(self, index: int, event: FaultEvent) -> None:
        now = self.sim.now
        if event.kind is FaultKind.BROKER_CRASH:
            self._apply_broker_crash(index, event)
        elif event.kind is FaultKind.LINK_PARTITION:
            self.network.partition_link(event.target, event.peer)
        elif event.kind in (FaultKind.PACKET_LOSS, FaultKind.DELAY_SPIKE):
            self._apply_link_window(index, event)
        elif event.kind is FaultKind.ENTITY_CRASH:
            self._entity(event.target).crash()
        else:  # pragma: no cover - enum is closed
            raise ConfigurationError(f"unknown fault kind {event.kind!r}")

        self.metrics.counter(f"faults.injected.{event.kind.value}").inc()
        self.metrics.gauge("faults.active").inc()
        self.journal.record(
            now,
            "fault.injected",
            fault=event.kind.value,
            target=event.target,
            peer=event.peer,
            duration_ms=event.duration_ms,
        )

    def _apply_broker_crash(self, index: int, event: FaultEvent) -> None:
        self._saved_neighbors[index] = self.network.neighbors_of(event.target)
        self.network.fail_broker(event.target)
        if event.failover_to is not None:
            self.sim.call_at(
                self.sim.now + event.detect_after_ms,
                lambda e=event: self._failover(e),
            )

    def _failover(self, event: FaultEvent) -> None:
        """Migrate the dead broker's traced entities to the failover broker.

        Models the entities (or their supervisors) noticing the silent
        broker after ``detect_after_ms`` and re-discovering connectivity
        via Ref [3].  Opens the recovery window for each migrated entity.
        """
        manager = self.deployment.managers.get(event.target)
        now = self.sim.now
        for entity_id in sorted(self.deployment.entities):
            entity = self.deployment.entities[entity_id]
            client = entity.client
            if client is None or not client.connected:
                continue
            if client.broker.broker_id != event.target:
                continue
            self.probe.mark_detected(entity_id, now, cause="broker_crash")
            if manager is not None:
                # the dead broker's session is over; without this its ping
                # loop would declare the migrated entity FAILED post-restart
                manager.handle_client_disconnect(entity_id)
            self.sim.process(
                entity.migrate(event.failover_to),
                name=f"faults.failover.{entity_id}",
            )
            self.metrics.counter("faults.failovers").inc()
            self.journal.record(
                now,
                "fault.failover",
                entity=entity_id,
                from_broker=event.target,
                to_broker=event.failover_to,
            )

    def _apply_link_window(self, index: int, event: FaultEvent) -> None:
        loss = event.loss_probability if event.kind is FaultKind.PACKET_LOSS else 0.0
        delay = event.extra_delay_ms if event.kind is FaultKind.DELAY_SPIKE else 0.0
        saved = []
        for link in self.network.links_of(event.target):
            saved.append((link, link.disruption))
            link.disruption = LinkDisruption(
                rng=self._links_rng,
                loss_probability=loss,
                extra_delay_ms=delay,
            )
        self._saved_disruptions[index] = saved

    # ------------------------------------------------------------------ revert

    def _revert(self, index: int, event: FaultEvent) -> None:
        now = self.sim.now
        extra: dict = {}
        if event.kind is FaultKind.BROKER_CRASH:
            neighbors = self._saved_neighbors.pop(index, ())
            self.deployment.restart_broker(event.target, neighbors)
        elif event.kind is FaultKind.LINK_PARTITION:
            self.network.heal_link(event.target, event.peer)
        elif event.kind in (FaultKind.PACKET_LOSS, FaultKind.DELAY_SPIKE):
            drops = delayed = 0
            for link, previous in self._saved_disruptions.pop(index, ()):
                if link.disruption is not None:
                    drops += link.disruption.drops
                    delayed += link.disruption.delayed
                link.disruption = previous
            extra = {"drops": drops, "delayed": delayed}
        elif event.kind is FaultKind.ENTITY_CRASH:
            entity = self._entity(event.target)
            entity.recover_from_crash()
            # a crashed-and-back entity re-registers (section 3.2); the
            # fresh session supersedes the one the detector condemned
            self.sim.process(
                entity.reregister(), name=f"faults.reregister.{event.target}"
            )

        self.metrics.gauge("faults.active").dec()
        self.journal.record(
            now,
            "fault.reverted",
            fault=event.kind.value,
            target=event.target,
            peer=event.peer,
            **extra,
        )

    # ------------------------------------------------------------------- misc

    def _entity(self, entity_id: str):
        try:
            return self.deployment.entities[entity_id]
        except KeyError:
            raise ConfigurationError(
                f"fault plan targets unknown entity {entity_id!r}"
            ) from None
