"""Baseline availability-tracking schemes the paper argues against.

* :mod:`repro.baselines.allpairs` — the strawman from the introduction:
  every entity broadcasts heartbeats to every other entity, costing
  N x (N-1) messages per period.
* :mod:`repro.baselines.gossip` — a gossip-style failure-detection
  service after van Renesse, Minsky & Hayden (Ref [7]), the strongest
  contemporary alternative surveyed in the related work.

Both run on the same simulation kernel so message counts and detection
latencies are directly comparable with the broker-based tracing scheme.
"""

from repro.baselines.allpairs import AllPairsHeartbeatSystem, allpairs_message_rate
from repro.baselines.gossip import GossipFailureDetector, GossipNode

__all__ = [
    "AllPairsHeartbeatSystem",
    "allpairs_message_rate",
    "GossipFailureDetector",
    "GossipNode",
]
