"""Gossip-style failure detection after van Renesse et al. (Ref [7]).

Each node keeps a table of (peer -> heartbeat counter, last-increase time).
Every gossip round a node increments its own counter and sends its full
table to ``fanout`` randomly chosen peers; receivers merge by taking the
maximum counter per peer.  A peer whose counter has not increased for
``fail_timeout_ms`` is suspected failed.

The paper's related-work section notes the weakness this reproduces:
"systems based on gossip schemes need to address the consistency issue
which results from uneven propagation of the gossips" — detection times
vary node to node, which the benchmark reports as detection-time spread.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.monitor import Monitor
from repro.transport.base import TransportProfile
from repro.transport.udp import UDP_CLUSTER


@dataclass(slots=True)
class _PeerEntry:
    counter: int = 0
    last_increase_ms: float = 0.0
    suspected: bool = False


class GossipNode:
    """One participant in the gossip group."""

    def __init__(self, detector: "GossipFailureDetector", node_id: int) -> None:
        self.detector = detector
        self.node_id = node_id
        self.crashed = False
        self.table: dict[int, _PeerEntry] = {
            peer: _PeerEntry() for peer in range(detector.node_count)
        }

    def merge(self, remote_table: dict[int, int], now_ms: float) -> None:
        """Take the max counter per peer; note increases."""
        if self.crashed:
            return
        for peer, counter in remote_table.items():
            entry = self.table[peer]
            if counter > entry.counter:
                entry.counter = counter
                entry.last_increase_ms = now_ms
                if entry.suspected:
                    entry.suspected = False

    def snapshot(self) -> dict[int, int]:
        return {peer: entry.counter for peer, entry in self.table.items()}

    def suspects(self, peer: int) -> bool:
        return self.table[peer].suspected


class GossipFailureDetector:
    """The gossip group plus its loops and measurements."""

    def __init__(
        self,
        sim: Simulator,
        node_count: int,
        gossip_interval_ms: float = 1_000.0,
        fail_timeout_ms: float = 8_000.0,
        fanout: int = 2,
        profile: TransportProfile = UDP_CLUSTER,
        seed: int = 0,
        monitor: Monitor | None = None,
    ) -> None:
        if node_count < 2:
            raise ConfigurationError("need at least two nodes")
        if not 1 <= fanout < node_count:
            raise ConfigurationError("fanout must be in [1, node_count)")
        self.sim = sim
        self.node_count = node_count
        self.gossip_interval_ms = gossip_interval_ms
        self.fail_timeout_ms = fail_timeout_ms
        self.fanout = fanout
        self.profile = profile
        self.monitor = monitor or Monitor()
        self._rng = random.Random(seed)
        self.nodes = [GossipNode(self, i) for i in range(node_count)]
        self.messages_sent = 0
        self._detections: dict[tuple[int, int], float] = {}

    def start(self) -> None:
        for node in self.nodes:
            self.sim.process(self._gossip_loop(node), name=f"gossip.{node.node_id}")

    def crash(self, node_id: int) -> None:
        self.nodes[node_id].crashed = True

    def _gossip_loop(self, node: GossipNode):
        while True:
            if node.crashed:
                return
            now = self.sim.now
            # heartbeat: bump own counter
            own = node.table[node.node_id]
            own.counter += 1
            own.last_increase_ms = now

            # gossip to `fanout` random peers
            peers = [i for i in range(self.node_count) if i != node.node_id]
            for target_id in self._rng.sample(peers, self.fanout):
                self.messages_sent += 1
                self.monitor.increment("gossip.messages")
                latency = self.profile.sample_latency_ms(
                    32 + 8 * self.node_count, self._rng
                )
                if self.profile.sample_loss(self._rng):
                    continue
                snapshot = node.snapshot()
                target = self.nodes[target_id]
                self.sim.call_later(
                    latency, lambda t=target, s=snapshot: t.merge(s, self.sim.now)
                )

            # failure checks
            for peer, entry in node.table.items():
                if peer == node.node_id or entry.suspected:
                    continue
                if now - entry.last_increase_ms > self.fail_timeout_ms:
                    entry.suspected = True
                    self._detections[(node.node_id, peer)] = now
                    self.monitor.increment("gossip.detections")

            yield self.sim.timeout(self.gossip_interval_ms)

    # ------------------------------------------------------------------ stats

    def detection_times_for(self, peer: int) -> list[float]:
        """When each live node first suspected ``peer`` (sorted)."""
        return sorted(
            t for (node, p), t in self._detections.items() if p == peer
        )

    def detection_spread_ms(self, peer: int) -> float:
        """Gossip's consistency problem: first vs last detector gap."""
        times = self.detection_times_for(peer)
        if len(times) < 2:
            return 0.0
        return times[-1] - times[0]

    def all_live_nodes_suspect(self, peer: int) -> bool:
        return all(
            node.suspects(peer)
            for node in self.nodes
            if not node.crashed and node.node_id != peer
        )
