"""The all-to-all heartbeat strawman (section 1).

"If there are N entities within the system, with each of them issuing one
message at regular intervals, every entity within the system receives
(N-1) messages.  If every entity issues one such message per second, there
would be N x (N-1) messages within the system every second."

This module implements that scheme faithfully so the ablation benchmark
can plot its quadratic message growth against the interest-gated tracing
scheme's. Each entity both sends heartbeats to all peers and judges peers
failed when heartbeats stop arriving.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.monitor import Monitor
from repro.transport.base import TransportProfile
from repro.transport.udp import UDP_CLUSTER


def allpairs_message_rate(n: int, heartbeats_per_second: float = 1.0) -> float:
    """Messages per second in an N-entity all-pairs deployment."""
    if n < 0:
        raise ConfigurationError("n must be non-negative")
    return n * (n - 1) * heartbeats_per_second


@dataclass(slots=True)
class _PeerState:
    last_heartbeat_ms: float
    failed: bool = False


class AllPairsHeartbeatSystem:
    """N entities heartbeating each other directly."""

    def __init__(
        self,
        sim: Simulator,
        entity_count: int,
        heartbeat_interval_ms: float = 1_000.0,
        failure_timeout_ms: float = 3_500.0,
        profile: TransportProfile = UDP_CLUSTER,
        seed: int = 0,
        monitor: Monitor | None = None,
    ) -> None:
        if entity_count < 2:
            raise ConfigurationError("need at least two entities")
        self.sim = sim
        self.entity_count = entity_count
        self.heartbeat_interval_ms = heartbeat_interval_ms
        self.failure_timeout_ms = failure_timeout_ms
        self.profile = profile
        self.monitor = monitor or Monitor()
        self._rng = random.Random(seed)
        self.messages_sent = 0
        self._crashed: set[int] = set()
        #: peer_views[i][j] is what entity i believes about entity j
        self.peer_views: list[dict[int, _PeerState]] = [
            {j: _PeerState(last_heartbeat_ms=0.0)
             for j in range(entity_count) if j != i}
            for i in range(entity_count)
        ]
        self._detections: dict[tuple[int, int], float] = {}

    # -------------------------------------------------------------------- run

    def start(self) -> None:
        """Spawn the heartbeat and failure-check loops for every entity."""
        for i in range(self.entity_count):
            self.sim.process(self._heartbeat_loop(i), name=f"allpairs.hb.{i}")
            self.sim.process(self._check_loop(i), name=f"allpairs.check.{i}")

    def crash(self, entity: int) -> None:
        self._crashed.add(entity)

    def _heartbeat_loop(self, sender: int):
        while True:
            if sender in self._crashed:
                return
            now = self.sim.now
            for receiver in range(self.entity_count):
                if receiver == sender:
                    continue
                self.messages_sent += 1
                self.monitor.increment("allpairs.messages")
                latency = self.profile.sample_latency_ms(64, self._rng)
                if self.profile.sample_loss(self._rng):
                    continue
                self.sim.call_later(
                    latency,
                    lambda r=receiver, s=sender, t=now: self._deliver(r, s, t),
                )
            yield self.sim.timeout(self.heartbeat_interval_ms)

    def _deliver(self, receiver: int, sender: int, _sent_ms: float) -> None:
        if receiver in self._crashed:
            return
        state = self.peer_views[receiver][sender]
        state.last_heartbeat_ms = self.sim.now
        if state.failed:
            state.failed = False  # peer came back

    def _check_loop(self, checker: int):
        while True:
            yield self.sim.timeout(self.heartbeat_interval_ms)
            if checker in self._crashed:
                return
            now = self.sim.now
            for peer, state in self.peer_views[checker].items():
                if state.failed:
                    continue
                if now - state.last_heartbeat_ms > self.failure_timeout_ms:
                    state.failed = True
                    self._detections[(checker, peer)] = now
                    self.monitor.increment("allpairs.detections")

    # ------------------------------------------------------------------ stats

    def detection_time(self, checker: int, peer: int) -> float | None:
        """When `checker` declared `peer` failed, or None."""
        return self._detections.get((checker, peer))

    def believes_failed(self, checker: int, peer: int) -> bool:
        return self.peer_views[checker][peer].failed

    def detection_times_for(self, peer: int) -> list[float]:
        return sorted(
            t for (checker, p), t in self._detections.items() if p == peer
        )
