"""Pacing a discrete-event simulation against the wall clock.

The driver pops simulator events in order, but before executing an event
it sleeps until the event's virtual timestamp (divided by ``speed``) has
elapsed on the wall clock.  With ``speed=1.0`` one virtual millisecond is
one real millisecond; with ``speed=60`` a one-minute scenario plays back
in one second.  Both a synchronous (``time.sleep``) and an asyncio
(``await``) interface are provided.

If the host falls behind (an event's wall deadline is already past), the
driver executes immediately and carries on — virtual causality is never
affected, only playback smoothness.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator


class RealTimeDriver:
    """Plays a simulator's event stream in (scaled) real time."""

    def __init__(self, sim: Simulator, speed: float = 1.0) -> None:
        if speed <= 0:
            raise ConfigurationError(f"speed must be positive, got {speed}")
        self.sim = sim
        self.speed = speed
        self._wall_start: float | None = None
        self._virtual_start = 0.0
        self.on_tick: Callable[[float], None] | None = None

    # ------------------------------------------------------------------ shared

    def _arm(self) -> None:
        if self._wall_start is None:
            self._wall_start = time.monotonic()
            self._virtual_start = self.sim.now

    def _wall_deadline(self, virtual_ms: float) -> float:
        """Wall-clock time at which ``virtual_ms`` should execute."""
        assert self._wall_start is not None
        return self._wall_start + (virtual_ms - self._virtual_start) / (
            1000.0 * self.speed
        )

    def _next_event_time(self) -> float | None:
        heap = self.sim._heap
        return heap[0][0] if heap else None

    # -------------------------------------------------------------- synchronous

    def run(self, until: float | None = None) -> None:
        """Blocking playback until the heap drains or ``until`` (virtual ms)."""
        self._arm()
        while True:
            when = self._next_event_time()
            if when is None or (until is not None and when > until):
                break
            delay = self._wall_deadline(when) - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            self.sim.step()
            if self.on_tick is not None:
                self.on_tick(self.sim.now)
        if until is not None and self.sim.now < until:
            self.sim.clock.advance_to(until)

    # ------------------------------------------------------------------ asyncio

    async def run_async(self, until: float | None = None) -> None:
        """Cooperative playback; other asyncio tasks run while waiting."""
        self._arm()
        while True:
            when = self._next_event_time()
            if when is None or (until is not None and when > until):
                break
            delay = self._wall_deadline(when) - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            else:
                # yield control even when behind schedule
                await asyncio.sleep(0)
            self.sim.step()
            if self.on_tick is not None:
                self.on_tick(self.sim.now)
        if until is not None and self.sim.now < until:
            self.sim.clock.advance_to(until)

    @property
    def lag_ms(self) -> float:
        """How far wall-clock playback is behind schedule (0 if ahead)."""
        if self._wall_start is None:
            return 0.0
        behind = time.monotonic() - self._wall_deadline(self.sim.now)
        return max(0.0, behind * 1000.0 * self.speed)
