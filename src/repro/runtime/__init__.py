"""Live execution of the protocol stack.

The protocol implementation is transport- and clock-agnostic: everything
runs against the discrete-event :class:`~repro.sim.engine.Simulator`.  The
:class:`~repro.runtime.realtime.RealTimeDriver` paces that simulator
against the wall clock (optionally time-compressed), so the same brokers,
entities and trackers can be watched live — used by the
``examples/live_dashboard.py`` demo.
"""

from repro.runtime.realtime import RealTimeDriver

__all__ = ["RealTimeDriver"]
