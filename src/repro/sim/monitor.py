"""Measurement capture for simulations.

A :class:`Monitor` owns named time series and counters; protocol components
record into it and benchmark harnesses read summaries out of it.  Keeping
measurement separate from protocol logic means the tracing code contains no
benchmark-specific branches.

The monitor is also the distribution point for the unified observability
layer (:mod:`repro.obs`): it owns one :class:`~repro.obs.MetricsRegistry`
and one :class:`~repro.obs.EventJournal` per deployment, which instrumented
components reach through ``monitor.metrics`` / ``monitor.journal``.  The
legacy counter/series API remains for scenario-local bookkeeping; the
registry carries the convention-named instrument families
(``broker.*``, ``tracker.*``, ``transport.*``, ``tdn.*``, ``crypto.*``)
that ``snapshot()`` consumers and the ``repro metrics`` CLI read.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.errors import SeriesNotFoundError, StatsError
from repro.obs import EventJournal, MetricsRegistry
from repro.util.stats import RunningStats, StatSummary


@dataclass(slots=True)
class Series:
    """A named sequence of (time_ms, value) observations."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, time_ms: float, value: float) -> None:
        self.times.append(time_ms)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def summary(self) -> StatSummary:
        rs = RunningStats()
        rs.extend(self.values)
        return rs.summary()

    def last(self) -> float:
        if not self.values:
            raise StatsError(f"series {self.name!r} is empty")
        return self.values[-1]


class Monitor:
    """Collection of series, counters and event logs for one simulation."""

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        journal: EventJournal | None = None,
    ) -> None:
        self._series: dict[str, Series] = {}
        self._counters: dict[str, int] = defaultdict(int)
        #: The deployment-wide instrument registry (repro.obs).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: The deployment-wide structured event journal (repro.obs).
        self.journal = journal if journal is not None else EventJournal()

    # -- series ---------------------------------------------------------------

    def series(self, name: str) -> Series:
        """Get-or-create the series called ``name``."""
        if name not in self._series:
            self._series[name] = Series(name)
        return self._series[name]

    def record(self, name: str, time_ms: float, value: float) -> None:
        self.series(name).record(time_ms, value)

    def has_series(self, name: str) -> bool:
        return name in self._series and len(self._series[name]) > 0

    def series_names(self) -> list[str]:
        return sorted(self._series)

    def summary(self, name: str) -> StatSummary:
        if name not in self._series:
            raise SeriesNotFoundError(f"no series named {name!r}")
        return self._series[name].summary()

    # -- counters --------------------------------------------------------------

    def increment(self, name: str, by: int = 1) -> None:
        self._counters[name] += by

    def count(self, name: str) -> int:
        return self._counters.get(name, 0)

    def counters(self) -> dict[str, int]:
        return dict(self._counters)

    # -- event log ---------------------------------------------------------------

    def log(self, time_ms: float, kind: str, **details) -> None:
        """Append a structured event (stored in the shared journal)."""
        self.journal.record(
            time_ms,
            kind,
            topic=details.pop("topic", None),
            principal=details.pop("principal", None),
            size_bytes=details.pop("size_bytes", None),
            **details,
        )

    def events(self, kind: str | None = None) -> list[tuple[float, str, dict]]:
        return [
            (record.time_ms, record.kind, record.details())
            for record in self.journal.records(kind)
        ]

    # -- export ------------------------------------------------------------------

    def to_dict(self, include_samples: bool = False) -> dict:
        """JSON-serializable snapshot of counters, series and events.

        By default each series exports its summary statistics only; with
        ``include_samples`` the raw (time, value) points are included too.
        """
        series_out: dict[str, dict] = {}
        for name, series in self._series.items():
            if not len(series):
                continue
            summary = series.summary()
            entry: dict = {
                "count": summary.count,
                "mean": summary.mean,
                "std_dev": summary.std_dev,
                "std_error": summary.std_error,
                "min": summary.minimum,
                "max": summary.maximum,
            }
            if include_samples:
                entry["times"] = list(series.times)
                entry["values"] = list(series.values)
            series_out[name] = entry
        return {
            "counters": dict(self._counters),
            "series": series_out,
            "events": [
                {"time_ms": t, "kind": kind, "details": details}
                for t, kind, details in self.events()
            ],
            "metrics": self.metrics.snapshot(),
        }

    def to_json(self, include_samples: bool = False, indent: int = 2) -> str:
        """The :meth:`to_dict` snapshot rendered as JSON text."""
        import json

        return json.dumps(
            self.to_dict(include_samples=include_samples),
            indent=indent,
            sort_keys=True,
            default=str,
        )
