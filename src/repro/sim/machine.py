"""A simulated host machine: CPU, local clock, and RNG.

Every protocol principal (broker, traced entity, tracker, TDN) runs *on* a
machine.  The machine's CPU is a capacity-1 :class:`~repro.sim.engine.Resource`,
so cryptographic work performed by colocated principals serializes — the
effect the paper observes in section 6.4, where hosting many traced
entities on one machine inflates both the mean and the deviation of trace
latencies.
"""

from __future__ import annotations

import random
from typing import Generator

from repro.crypto.costmodel import CryptoCostModel, CryptoOp
from repro.sim.engine import Event, Resource, Simulator
from repro.util.clock import Clock, SkewedClock


class Machine:
    """One simulated host."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cost_model: CryptoCostModel,
        rng: random.Random,
        clock: Clock | None = None,
        cpu_capacity: int = 4,
    ) -> None:
        # default capacity 4 mirrors the paper's 4-CPU Xeon testbed hosts
        self.sim = sim
        self.name = name
        self.cost_model = cost_model
        self.rng = rng
        self.clock = clock if clock is not None else SkewedClock(sim.clock, 0.0)
        self.cpu = Resource(sim, cpu_capacity, name=f"{name}.cpu")
        self._busy_ms_total = 0.0

    def now(self) -> float:
        """This machine's local (possibly skewed) time."""
        return self.clock.now()

    def compute(self, duration_ms: float) -> Generator[Event, None, None]:
        """Hold the CPU for ``duration_ms`` of work (process body)."""
        self._busy_ms_total += duration_ms
        yield from self.cpu.use(duration_ms)

    def charge(self, op: CryptoOp) -> Generator[Event, None, float]:
        """Charge one cryptographic operation to this machine's CPU.

        Returns the sampled virtual duration in milliseconds (useful for
        micro-benchmarks that report per-op costs).
        """
        duration = self.cost_model.sample_ms(op)
        if duration > 0:
            self._busy_ms_total += duration
            yield from self.cpu.use(duration)
        return duration

    @property
    def busy_ms_total(self) -> float:
        """Cumulative CPU-milliseconds of work accepted by this machine."""
        return self._busy_ms_total

    def utilization(self, since_ms: float = 0.0) -> float:
        """Mean CPU utilization over [since_ms, now] across all cores.

        A value near 1.0 means the machine runs at saturation — the
        regime that produces Table 4's inflated latencies.
        """
        elapsed = self.sim.now - since_ms
        if elapsed <= 0:
            return 0.0
        return self._busy_ms_total / (elapsed * self.cpu.capacity)

    def __repr__(self) -> str:
        return f"<Machine {self.name}>"
