"""The discrete-event engine: events, processes, queues and resources.

The design follows the classic process-interaction style (SimPy-like):

* :class:`Event` — a one-shot occurrence with an optional value; callbacks
  run when it fires.  Firing is split into *trigger* (enqueue on the event
  heap at the current time) and *callback execution* so that same-timestamp
  causality is preserved deterministically by a monotone sequence number.
* :class:`Process` — wraps a generator; each ``yield``ed event suspends the
  process until the event fires.  A process is itself an event that fires
  with the generator's return value, enabling joins.
* :class:`Queue` — unbounded FIFO connecting producer and consumer processes.
* :class:`Resource` — a capacity-limited server; used to model each machine's
  CPU so that colocated crypto workloads contend (this is what reproduces
  Table 4's growing means and deviations).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable

from repro.errors import SimulationError
from repro.util.clock import VirtualClock

ProcessGenerator = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence in virtual time.

    States: *pending* (not yet triggered), *triggered* (scheduled to fire),
    *fired* (callbacks executed).  An event may succeed with a value or fail
    with an exception; a failed event thrown into a waiting process raises
    there.
    """

    __slots__ = ("sim", "_callbacks", "_value", "_exception", "_state", "name")

    PENDING = 0
    TRIGGERED = 1
    FIRED = 2

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._exception: BaseException | None = None
        self._state = Event.PENDING

    # -- inspection ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        return self._state != Event.PENDING

    @property
    def fired(self) -> bool:
        return self._state == Event.FIRED

    @property
    def ok(self) -> bool:
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError(f"event {self.name!r} has no value yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- wiring -------------------------------------------------------------

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self._state == Event.FIRED:
            # late subscriber: run at the current timestamp, preserving order
            self.sim._schedule_call(0.0, lambda: fn(self))
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._value = value
        self._state = Event.TRIGGERED
        self.sim._schedule_call(0.0, self._fire)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._exception = exception
        self._state = Event.TRIGGERED
        self.sim._schedule_call(0.0, self._fire)
        return self

    def _fire(self) -> None:
        self._state = Event.FIRED
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:
        state = {0: "pending", 1: "triggered", 2: "fired"}[self._state]
        return f"<Event {self.name!r} {state}>"


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running generator process; fires when the generator returns."""

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = "") -> None:
        super().__init__(sim, name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Event | None = None
        sim._schedule_call(0.0, lambda: self._resume(None, None))

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return
        self.sim._schedule_call(0.0, lambda: self._resume(None, Interrupt(cause)))

    def _resume(self, send_value: Any, throw_exc: BaseException | None) -> None:
        if self.triggered:
            return
        self._waiting_on = None
        try:
            if throw_exc is not None:
                target = self._generator.throw(throw_exc)
            else:
                target = self._generator.send(send_value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # an unhandled interrupt terminates the process quietly
            self.succeed(None)
            return
        except Exception as exc:
            # the process body raised: the process event fails with that
            # exception, propagating to joiners (or surfacing via .value)
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self._generator.close()
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {type(target).__name__}, "
                    "expected an Event"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._on_event)

    def _on_event(self, event: Event) -> None:
        if self.triggered:
            return
        if self._waiting_on is not event:
            return  # stale callback after an interrupt redirected the process
        if event.ok:
            self._resume(event._value, None)
        else:
            self._resume(None, event._exception)


class AllOf(Event):
    """Fires when all child events have fired; value is their value list."""

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, "all_of")
        self._children = list(events)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event._exception)  # type: ignore[arg-type]
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child._value for child in self._children])


class AnyOf(Event):
    """Fires when the first child fires; value is (index, value)."""

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, "any_of")
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf requires at least one event")
        for index, child in enumerate(self._children):
            child.add_callback(lambda ev, i=index: self._on_child(i, ev))

    def _on_child(self, index: int, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed((index, event._value))
        else:
            self.fail(event._exception)  # type: ignore[arg-type]


class Queue:
    """Unbounded FIFO between processes.

    ``put`` never blocks; ``get`` returns an event that fires with the next
    item, preserving both item order and getter arrival order.
    """

    __slots__ = ("sim", "_items", "_getters", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = Event(self.sim, f"{self.name}.get")
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


class Resource:
    """Capacity-limited server with FIFO admission.

    Model of a machine's CPU: crypto work holds one slot for its virtual
    duration, so colocated workloads queue behind each other.
    """

    __slots__ = ("sim", "capacity", "_in_use", "_waiters", "name")

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        """Event firing when one slot has been granted to the caller."""
        event = Event(self.sim, f"{self.name}.request")
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use == 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # hand the slot directly to the next waiter
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1

    def use(self, duration: float) -> ProcessGenerator:
        """Process body: acquire, hold for ``duration`` ms, release.

        Usage from a process: ``yield sim.process(resource.use(5.0))`` or
        inline ``yield from resource.use(5.0)``.
        """
        yield self.request()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()


class Simulator:
    """The event loop: a heap of (time, seq, callable)."""

    def __init__(self, start: float = 0.0) -> None:
        self.clock = VirtualClock(start)
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._running = False

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self.clock.now()

    # -- scheduling primitives ------------------------------------------------

    def _schedule_call(self, delay: float, fn: Callable[[], None]) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))
        self._seq += 1

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` at absolute virtual time ``when``."""
        self._schedule_call(when - self.now, fn)

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` milliseconds."""
        self._schedule_call(delay, fn)

    # -- event factories -------------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """Event that fires ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        event = Event(self, f"timeout({delay})")
        event._value = value
        event._state = Event.TRIGGERED
        self._schedule_call(delay, event._fire)
        return event

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Spawn a new process from a generator."""
        return Process(self, generator, name)

    def queue(self, name: str = "") -> Queue:
        return Queue(self, name)

    def resource(self, capacity: int = 1, name: str = "") -> Resource:
        return Resource(self, capacity, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- the loop ---------------------------------------------------------------

    def step(self) -> bool:
        """Execute the next scheduled call; False if the heap is empty."""
        if not self._heap:
            return False
        when, _, fn = heapq.heappop(self._heap)
        self.clock.advance_to(when)
        fn()
        return True

    def run(self, until: float | None = None, max_steps: int = 50_000_000) -> None:
        """Run until the heap drains, ``until`` is reached, or step limit.

        ``until`` is an absolute virtual time; the clock is advanced to it
        even if the heap drains earlier (matching SimPy semantics).
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        try:
            steps = 0
            while self._heap:
                when = self._heap[0][0]
                if until is not None and when > until:
                    break
                self.step()
                steps += 1
                if steps >= max_steps:
                    raise SimulationError(
                        f"simulation exceeded {max_steps} steps (livelock?)"
                    )
            if until is not None and self.now < until:
                self.clock.advance_to(until)
        finally:
            self._running = False

    def run_process(self, generator: ProcessGenerator, name: str = "") -> Any:
        """Spawn a process, run to completion, and return its result."""
        proc = self.process(generator, name)
        while not proc.triggered:
            if not self.step():
                raise SimulationError(
                    f"deadlock: process {proc.name!r} never completed"
                )
        return proc.value
