"""Named, independent random streams derived from one master seed.

Every stochastic component (link jitter, crypto cost model, UDP loss, NTP
skew, ...) draws from its own stream so that adding a new consumer never
perturbs the draws seen by existing ones — the property that keeps
regression baselines stable as the simulation grows.
"""

from __future__ import annotations

import hashlib
import random


class RandomStreams:
    """Factory of deterministic :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream called ``name`` (created on first use)."""
        if name not in self._streams:
            self._streams[name] = random.Random(self.derive_seed(name))
        return self._streams[name]

    def derive_seed(self, name: str) -> int:
        """A 64-bit seed derived from (master_seed, name) via SHA-256."""
        material = f"{self.master_seed}:{name}".encode("utf-8")
        return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")

    def fork(self, name: str) -> "RandomStreams":
        """A child stream-space, e.g. one per simulated node."""
        return RandomStreams(self.derive_seed(name))
