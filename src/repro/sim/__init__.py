"""Deterministic discrete-event simulation kernel.

Virtual time is measured in float milliseconds (the unit the paper reports).
Processes are Python generators that ``yield`` awaitable :class:`Event`
objects; the :class:`Simulator` resumes them when those events fire.  Given
one seed, a simulation is bit-for-bit reproducible.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Queue,
    Resource,
    Simulator,
)
from repro.sim.monitor import Monitor, Series
from repro.sim.random import RandomStreams

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "Queue",
    "Resource",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Monitor",
    "Series",
    "RandomStreams",
]
