"""Exception hierarchy for the tracing framework.

Every failure mode the paper's protocol can produce maps to a distinct
exception type so callers (and tests) can discriminate between, e.g., a
signature that failed to verify versus an authorization token that expired.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A component was constructed or wired with invalid parameters.

    Also a :class:`ValueError`: bad wiring is almost always a bad argument,
    and callers that predate the taxonomy catch it as one.
    """


class ValidationError(ReproError, ValueError):
    """A runtime value failed a domain validity check (range, format, units)."""


class StatsError(ValidationError):
    """A statistics accumulator cannot answer (no samples, bad percentile)."""


class InstrumentError(ValidationError):
    """A metrics instrument was misused (kind conflict, decreasing counter)."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class SeriesNotFoundError(ReproError, KeyError):
    """A monitor was asked for a time series it never recorded."""

    def __str__(self) -> str:
        # KeyError.__str__ repr()s its argument; keep the plain message.
        return str(self.args[0]) if self.args else ""


class BenchmarkError(ReproError, RuntimeError):
    """An experiment run produced no usable measurement."""


# --- serialization ----------------------------------------------------------


class SerializationError(ReproError):
    """Base class for canonical-encoding failures."""


class SerializationDecodeError(SerializationError, ValueError):
    """Canonical bytes were truncated, malformed, or non-canonical."""


class SerializationTypeError(SerializationError, TypeError):
    """A value outside the canonical type universe was offered for encoding."""


class TransportError(ReproError):
    """A simulated transport could not deliver or accept a payload."""


class TopicError(ReproError, ValueError):
    """A topic string is malformed or violates constrained-topic syntax."""


class RoutingError(ReproError):
    """The broker network could not route a message."""


class NotConnectedError(ReproError):
    """An entity attempted an operation that requires a broker connection."""


# --- cryptography -----------------------------------------------------------


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeyMaterialError(CryptoError, ValueError):
    """A key was malformed, of the wrong type, or of the wrong size."""


#: Deprecated alias for :class:`KeyMaterialError`.  The old trailing-underscore
#: name both hid its intent and pattern-matched the builtin ``KeyError`` that
#: the ERR01 linter rule bans; prefer the new name.
KeyError_ = KeyMaterialError


class CryptoInputError(CryptoError, ValueError):
    """Non-key cryptographic input was invalid (block size, algorithm, modulus)."""


class SignatureError(CryptoError):
    """A digital signature failed to verify."""


class DecryptionError(CryptoError):
    """A ciphertext could not be decrypted (wrong key, corrupt data, padding)."""


class PaddingError(DecryptionError):
    """Block-cipher or PKCS#1 padding was invalid after decryption."""


class CertificateError(CryptoError):
    """An X.509-like certificate is invalid, expired, or untrusted."""


# --- discovery / authorization ---------------------------------------------


class TdnError(ReproError):
    """Base class for Topic Discovery Node failures."""


class DiscoveryError(TdnError):
    """A topic or broker discovery operation failed."""


class AuthorizationError(ReproError):
    """Base class for authorization failures (tokens, entitlements, ACLs)."""


class UnauthorizedError(AuthorizationError):
    """An entity attempted an action it is not authorized to perform."""


class TokenError(UnauthorizedError):
    """An authorization token is missing, malformed, expired, or forged."""


class RegistrationError(ReproError):
    """Traced-entity registration with a broker failed verification."""


class InterestError(ReproError):
    """The GUAGE_INTEREST protocol produced an invalid response."""


class AnalyticsError(ReproError):
    """The availability analytics store was misused or misconfigured."""


class AuditIncompleteError(AnalyticsError):
    """A state mutation has no corresponding journal evidence (audit gate)."""
