"""Exception hierarchy for the tracing framework.

Every failure mode the paper's protocol can produce maps to a distinct
exception type so callers (and tests) can discriminate between, e.g., a
signature that failed to verify versus an authorization token that expired.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class TransportError(ReproError):
    """A simulated transport could not deliver or accept a payload."""


class TopicError(ReproError):
    """A topic string is malformed or violates constrained-topic syntax."""


class RoutingError(ReproError):
    """The broker network could not route a message."""


class NotConnectedError(ReproError):
    """An entity attempted an operation that requires a broker connection."""


# --- cryptography -----------------------------------------------------------


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeyError_(CryptoError):
    """A key was malformed, of the wrong type, or of the wrong size."""


class SignatureError(CryptoError):
    """A digital signature failed to verify."""


class DecryptionError(CryptoError):
    """A ciphertext could not be decrypted (wrong key, corrupt data, padding)."""


class PaddingError(DecryptionError):
    """Block-cipher or PKCS#1 padding was invalid after decryption."""


class CertificateError(CryptoError):
    """An X.509-like certificate is invalid, expired, or untrusted."""


# --- discovery / authorization ---------------------------------------------


class DiscoveryError(ReproError):
    """A topic or broker discovery operation failed."""


class UnauthorizedError(ReproError):
    """An entity attempted an action it is not authorized to perform."""


class TokenError(UnauthorizedError):
    """An authorization token is missing, malformed, expired, or forged."""


class RegistrationError(ReproError):
    """Traced-entity registration with a broker failed verification."""


class InterestError(ReproError):
    """The GUAGE_INTEREST protocol produced an invalid response."""
