"""Reusable scratch buffers for frame encoding.

Sizing a payload means rendering it through a codec; done naively that
allocates a fresh byte buffer per send, which is exactly the kind of
per-message cost the paper's scalability argument (section 6) says must
stay flat as entity counts grow.  A :class:`FramePool` keeps a small free
list of ``bytearray`` buffers so consecutive encodes on the hot path reuse
one warm allocation instead of churning the allocator.

The pool is deliberately tiny and single-threaded — the simulator runs one
virtual timeline — so "pool" here means a LIFO free list with hit/miss
accounting, not a concurrent arena.
"""

from __future__ import annotations


class FramePool:
    """A LIFO free list of reusable ``bytearray`` encode buffers.

    ``acquire`` pops a warm buffer when one is free (a *hit*) or allocates
    a fresh one (a *miss*); ``release`` clears the buffer and returns it to
    the free list unless the pool is already full.  ``hits`` / ``misses`` /
    ``reuses`` expose the counters the ``frame.pool.{hit,miss}`` instruments
    are fed from.
    """

    def __init__(self, max_buffers: int = 8) -> None:
        self.max_buffers = max_buffers
        self._free: list[bytearray] = []
        self.hits = 0
        self.misses = 0
        self.reuses = 0

    def acquire(self) -> bytearray:
        """Take an empty scratch buffer, reusing a pooled one when possible."""
        if self._free:
            self.hits += 1
            return self._free.pop()
        self.misses += 1
        return bytearray()

    def release(self, buffer: bytearray) -> None:
        """Return ``buffer`` to the pool (cleared) for the next encode."""
        if len(self._free) < self.max_buffers:
            buffer.clear()
            self._free.append(buffer)
            self.reuses += 1

    @property
    def free_count(self) -> int:
        """Buffers currently sitting warm in the free list."""
        return len(self._free)

    def stats(self) -> dict[str, int]:
        """Counter snapshot (``hits`` / ``misses`` / ``reuses`` / ``free``)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "reuses": self.reuses,
            "free": len(self._free),
        }
