"""Pluggable wire codecs, frame pooling, and memoized frame sizing.

The codec seam the 64-broker federation scenario will ride: every link
sizes (and can round-trip) its payloads through a named :class:`Codec`
from the registry here — ``json`` (the legacy canonical rendering, byte
compatible with every committed seed snapshot) or ``compact`` (the binary
format of docs/WIRE_FORMAT.md).  See :mod:`repro.wire.codec` for the hot
path design (size memo + frame pool).
"""

from repro.wire.codec import (
    CODEC_ENV_VAR,
    Codec,
    codec_names,
    default_codec_name,
    frame_pool,
    frame_size,
    get_codec,
    modeled_encode_ms,
    register_codec,
    resolve_codec,
    size_memo_stats,
)
from repro.wire.compact import CompactCodec
from repro.wire.json_codec import JsonCodec
from repro.wire.pool import FramePool

__all__ = [
    "CODEC_ENV_VAR",
    "Codec",
    "CompactCodec",
    "FramePool",
    "JsonCodec",
    "codec_names",
    "default_codec_name",
    "frame_pool",
    "frame_size",
    "get_codec",
    "modeled_encode_ms",
    "register_codec",
    "resolve_codec",
    "size_memo_stats",
]
