"""The ``compact`` codec: a schema-tagged binary frame format.

Where the ``json`` codec spends ~95 bytes per message re-spelling envelope
field names and rendering integers as decimal text, ``compact`` packs the
envelope positionally behind a flags byte, writes integers as LEB128
varints (zigzag for signed values — RSA signature and token integers
shrink roughly 2x), and *interns* repeated strings: protocol vocabulary
(topic segments like ``Traces``, body keys like ``issued_ms``) hits a
static table shared by every frame, while strings repeated within one
frame hit a per-frame dynamic table.  docs/WIRE_FORMAT.md documents the
byte layout normatively; this module is the reference implementation.

Frame layout (all multi-byte integers are LEB128 varints unless noted)::

    frame   := MAGIC(0xC3) VERSION(0x01) KIND body
    KIND    := 0x01 message | 0x02 routed-frame | 0x03 plain value
    message := flags:u8 message_id:uvarint created_ms:f64be
               source:str-ref topic:(uvarint nsegs, nsegs * str-ref)
               [body:cval unless flags&0x08] [signature:cval if flags&0x02]
               [auth_token:cval if flags&0x04]
    routed-frame := message dest-part
    dest-part    := uvarint count, count * (uvarint len, utf8)   # never interned
    cval    := 0x00 None | 0x01 True | 0x02 False | 0x03 zigzag-varint
             | 0x04 f64be | 0x05 str-ref | 0x06 uvarint-len bytes
             | 0x07 cval* 0xFF (list) | 0x08 (str-ref cval)* 0xFF (dict)
    str-ref := 0x00 uvarint-len utf8 (literal; joins the dynamic table)
             | 0x01 uvarint (static-table index)
             | 0x02 uvarint (dynamic-table index)

Destinations are appended *after* the message body with no interning, so a
message encodes to identical bytes standalone and inside a routed frame —
that additivity is what lets ``repro.wire.codec`` size frames as
``memoized message size + frame_overhead`` without re-encoding.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.errors import SerializationDecodeError, SerializationTypeError
from repro.messaging.message import Message, RoutedFrame
from repro.messaging.topics import Topic

MAGIC = 0xC3
VERSION = 0x01

KIND_MESSAGE = 0x01
KIND_FRAME = 0x02
KIND_VALUE = 0x03

FLAG_ENCRYPTED = 0x01
FLAG_SIGNATURE = 0x02
FLAG_AUTH_TOKEN = 0x04
FLAG_BODY_NONE = 0x08

_REF_LITERAL = 0x00
_REF_STATIC = 0x01
_REF_DYNAMIC = 0x02

_CV_NONE = 0x00
_CV_TRUE = 0x01
_CV_FALSE = 0x02
_CV_INT = 0x03
_CV_FLOAT = 0x04
_CV_STR = 0x05
_CV_BYTES = 0x06
_CV_LIST = 0x07
_CV_DICT = 0x08
_CV_END = 0xFF

#: The static intern table: the protocol's topic segments and body/token
#: vocabulary.  APPEND ONLY — indexes are wire format; reordering or
#: removing entries breaks decode of previously captured frames.
STATIC_STRINGS: tuple[str, ...] = (
    # trace-topic segments (repro.tracing.topics, repro.tdn.query)
    "Availability",
    "Liveness",
    "Traces",
    "Broker",
    "Constrained",
    "Publish-Only",
    "Subscribe-Only",
    "Limited",
    "Registration",
    "Registration-Response",
    "ChangeNotifications",
    "AllUpdates",
    "StateTransitions",
    "Load",
    "NetworkMetrics",
    "Interest",
    "KeyDelivery",
    # ping / registration body keys and kinds (repro.tracing)
    "kind",
    "ping",
    "ping_response",
    "ping_batch",
    "pings",
    "number",
    "issued_ms",
    "entity_stamp_ms",
    "entity_id",
    "request_id",
    "session_id",
    "payload",
    "state",
    "sequence",
    "timestamp_ms",
    # gauge trace bodies (repro.tracing.traces)
    "cpu_utilization",
    "memory_used_mb",
    "memory_total_mb",
    "workload",
    "loss_rate",
    "mean_rtt_ms",
    "jitter_ms",
    "out_of_order_rate",
    "bandwidth_estimate_kbps",
    # authorization tokens and signature envelopes (repro.auth, repro.crypto)
    "advertisement",
    "trace_topic",
    "token_n",
    "token_e",
    "rights",
    "valid_from_ms",
    "valid_until_ms",
    "owner_signature",
    "signature",
    "signer_fingerprint",
    "algorithm",
    "padding",
    "ciphertext",
    "wrapped_key",
    "credentials",
    # session-control and key-management kinds (repro.tracing.entity,
    # repro.tracing.broker_ops, repro.security.keydist) — appended so every
    # produced message kind interns (WIRE01 checks this)
    "sym",
    "state_transition",
    "load",
    "disable_tracing",
    "token_delivery",
    "trace_key",
    "channel_key",
    "key_distribution",
)

_STATIC_INDEX: dict[str, int] = {s: i for i, s in enumerate(STATIC_STRINGS)}


def write_uvarint(value: int, out: bytearray) -> None:
    """Append an unsigned LEB128 varint (unbounded width)."""
    if value < 0:
        raise SerializationTypeError(f"uvarint cannot encode negative {value}")
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def read_uvarint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode an unsigned LEB128 varint; returns ``(value, next_offset)``."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise SerializationDecodeError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def zigzag(value: int) -> int:
    """Map a signed int to unsigned so small magnitudes stay small."""
    return value * 2 if value >= 0 else -value * 2 - 1


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return value // 2 if value % 2 == 0 else -(value + 1) // 2


class _InternContext:
    """Per-frame dynamic string table shared by encoder-side references."""

    __slots__ = ("table", "index")

    def __init__(self) -> None:
        self.table: list[str] = []
        self.index: dict[str, int] = {}

    def write_str(self, text: str, out: bytearray) -> None:
        static = _STATIC_INDEX.get(text)
        if static is not None:
            out.append(_REF_STATIC)
            write_uvarint(static, out)
            return
        dynamic = self.index.get(text)
        if dynamic is not None:
            out.append(_REF_DYNAMIC)
            write_uvarint(dynamic, out)
            return
        data = text.encode("utf-8")
        out.append(_REF_LITERAL)
        write_uvarint(len(data), out)
        out += data
        self.index[text] = len(self.table)
        self.table.append(text)


class _DecodeContext:
    """Decoder mirror of :class:`_InternContext`."""

    __slots__ = ("table",)

    def __init__(self) -> None:
        self.table: list[str] = []

    def read_str(self, data: bytes, offset: int) -> tuple[str, int]:
        if offset >= len(data):
            raise SerializationDecodeError("truncated string reference")
        ref = data[offset]
        offset += 1
        if ref == _REF_LITERAL:
            length, offset = read_uvarint(data, offset)
            chunk = data[offset : offset + length]
            if len(chunk) != length:
                raise SerializationDecodeError("truncated string literal")
            text = chunk.decode("utf-8")
            self.table.append(text)
            return text, offset + length
        if ref == _REF_STATIC:
            index, offset = read_uvarint(data, offset)
            if index >= len(STATIC_STRINGS):
                raise SerializationDecodeError(f"static string index {index} out of range")
            return STATIC_STRINGS[index], offset
        if ref == _REF_DYNAMIC:
            index, offset = read_uvarint(data, offset)
            if index >= len(self.table):
                raise SerializationDecodeError(f"dynamic string index {index} out of range")
            return self.table[index], offset
        raise SerializationDecodeError(f"unknown string reference tag {ref:#x}")


def _encode_value(value: Any, ctx: _InternContext, out: bytearray) -> None:
    if value is None:
        out.append(_CV_NONE)
    elif value is True:
        out.append(_CV_TRUE)
    elif value is False:
        out.append(_CV_FALSE)
    elif isinstance(value, int):
        out.append(_CV_INT)
        write_uvarint(zigzag(value), out)
    elif isinstance(value, float):
        out.append(_CV_FLOAT)
        out += struct.pack(">d", value)
    elif isinstance(value, str):
        out.append(_CV_STR)
        ctx.write_str(value, out)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        out.append(_CV_BYTES)
        write_uvarint(len(data), out)
        out += data
    elif isinstance(value, (list, tuple)):
        out.append(_CV_LIST)
        for item in value:
            _encode_value(item, ctx, out)
        out.append(_CV_END)
    elif isinstance(value, dict):
        out.append(_CV_DICT)
        keys = list(value.keys())
        for key in keys:
            if not isinstance(key, str):
                raise SerializationTypeError(
                    f"dict keys must be str, got {type(key).__name__}"
                )
        for key in sorted(keys):
            ctx.write_str(key, out)
            _encode_value(value[key], ctx, out)
        out.append(_CV_END)
    else:
        raise SerializationTypeError(f"cannot compact-encode {type(value).__name__}")


def _decode_value(data: bytes, offset: int, ctx: _DecodeContext) -> tuple[Any, int]:
    if offset >= len(data):
        raise SerializationDecodeError("unexpected end of compact value")
    tag = data[offset]
    offset += 1
    if tag == _CV_NONE:
        return None, offset
    if tag == _CV_TRUE:
        return True, offset
    if tag == _CV_FALSE:
        return False, offset
    if tag == _CV_INT:
        raw, offset = read_uvarint(data, offset)
        return unzigzag(raw), offset
    if tag == _CV_FLOAT:
        chunk = data[offset : offset + 8]
        if len(chunk) != 8:
            raise SerializationDecodeError("truncated float")
        return struct.unpack(">d", chunk)[0], offset + 8
    if tag == _CV_STR:
        return ctx.read_str(data, offset)
    if tag == _CV_BYTES:
        length, offset = read_uvarint(data, offset)
        chunk = data[offset : offset + length]
        if len(chunk) != length:
            raise SerializationDecodeError("truncated bytes")
        return chunk, offset + length
    if tag == _CV_LIST:
        items: list[Any] = []
        while True:
            if offset >= len(data):
                raise SerializationDecodeError("unterminated list")
            if data[offset] == _CV_END:
                return items, offset + 1
            item, offset = _decode_value(data, offset, ctx)
            items.append(item)
    if tag == _CV_DICT:
        result: dict[str, Any] = {}
        while True:
            if offset >= len(data):
                raise SerializationDecodeError("unterminated dict")
            if data[offset] == _CV_END:
                return result, offset + 1
            key, offset = ctx.read_str(data, offset)
            value, offset = _decode_value(data, offset, ctx)
            result[key] = value
    raise SerializationDecodeError(f"unknown compact value tag {tag:#x}")


def _encode_message_body(message: Message, out: bytearray) -> None:
    """Append the flags byte and packed envelope fields (fresh context)."""
    ctx = _InternContext()
    flags = 0
    if message.encrypted:
        flags |= FLAG_ENCRYPTED
    if message.signature is not None:
        flags |= FLAG_SIGNATURE
    if message.auth_token is not None:
        flags |= FLAG_AUTH_TOKEN
    if message.body is None:
        flags |= FLAG_BODY_NONE
    out.append(flags)
    write_uvarint(message.message_id, out)
    out += struct.pack(">d", message.created_ms)
    ctx.write_str(message.source, out)
    segments = message.topic.segments
    write_uvarint(len(segments), out)
    for segment in segments:
        ctx.write_str(segment, out)
    if not flags & FLAG_BODY_NONE:
        _encode_value(message.body, ctx, out)
    if flags & FLAG_SIGNATURE:
        _encode_value(message.signature, ctx, out)
    if flags & FLAG_AUTH_TOKEN:
        _encode_value(message.auth_token, ctx, out)


def _decode_message_body(data: bytes, offset: int) -> tuple[Message, int]:
    ctx = _DecodeContext()
    if offset >= len(data):
        raise SerializationDecodeError("truncated message flags")
    flags = data[offset]
    offset += 1
    message_id, offset = read_uvarint(data, offset)
    chunk = data[offset : offset + 8]
    if len(chunk) != 8:
        raise SerializationDecodeError("truncated created_ms")
    created_ms = struct.unpack(">d", chunk)[0]
    offset += 8
    source, offset = ctx.read_str(data, offset)
    nsegs, offset = read_uvarint(data, offset)
    segments = []
    for _ in range(nsegs):
        segment, offset = ctx.read_str(data, offset)
        segments.append(segment)
    body: Any = None
    if not flags & FLAG_BODY_NONE:
        body, offset = _decode_value(data, offset, ctx)
    signature = None
    if flags & FLAG_SIGNATURE:
        signature, offset = _decode_value(data, offset, ctx)
    auth_token = None
    if flags & FLAG_AUTH_TOKEN:
        auth_token, offset = _decode_value(data, offset, ctx)
    message = Message(
        topic=Topic("/".join(segments)),
        body=body,
        source=source,
        message_id=message_id,
        created_ms=created_ms,
        signature=signature,
        auth_token=auth_token,
        encrypted=bool(flags & FLAG_ENCRYPTED),
    )
    return message, offset


def _encode_dest_part(destinations: tuple[str, ...], out: bytearray) -> None:
    write_uvarint(len(destinations), out)
    for dest in destinations:
        data = dest.encode("utf-8")
        write_uvarint(len(data), out)
        out += data


class CompactCodec:
    """Binary codec with varints, interning, and flag-packed envelopes."""

    name = "compact"

    def encode(self, payload: Any) -> bytes:
        out = bytearray()
        self.encode_into(payload, out)
        return bytes(out)

    def encode_into(self, payload: Any, out: bytearray) -> int:
        """Append the compact frame to a pooled buffer; returns bytes added."""
        before = len(out)
        out.append(MAGIC)
        out.append(VERSION)
        if isinstance(payload, RoutedFrame):
            out.append(KIND_FRAME)
            _encode_message_body(payload.message, out)
            _encode_dest_part(payload.destinations, out)
        elif isinstance(payload, Message):
            out.append(KIND_MESSAGE)
            _encode_message_body(payload, out)
        else:
            out.append(KIND_VALUE)
            _encode_value(payload, _InternContext(), out)
        return len(out) - before

    def decode(self, data: bytes) -> Any:
        if len(data) < 3:
            raise SerializationDecodeError("compact frame too short")
        if data[0] != MAGIC:
            raise SerializationDecodeError(f"bad magic byte {data[0]:#x}")
        if data[1] != VERSION:
            raise SerializationDecodeError(f"unsupported compact version {data[1]}")
        kind = data[2]
        offset = 3
        if kind == KIND_MESSAGE:
            message, offset = _decode_message_body(data, offset)
            value: Any = message
        elif kind == KIND_FRAME:
            message, offset = _decode_message_body(data, offset)
            count, offset = read_uvarint(data, offset)
            destinations = []
            for _ in range(count):
                length, offset = read_uvarint(data, offset)
                chunk = data[offset : offset + length]
                if len(chunk) != length:
                    raise SerializationDecodeError("truncated destination")
                destinations.append(chunk.decode("utf-8"))
                offset += length
            value = RoutedFrame(message=message, destinations=tuple(destinations))
        elif kind == KIND_VALUE:
            value, offset = _decode_value(data, offset, _DecodeContext())
        else:
            raise SerializationDecodeError(f"unknown frame kind {kind:#x}")
        if offset != len(data):
            raise SerializationDecodeError(f"trailing bytes after compact frame at {offset}")
        return value

    def frame_overhead(self, frame: RoutedFrame) -> int:
        """Bytes the destination part adds over the bare message frame.

        The destination part is deliberately interning-free and sits after
        the message body, so this is exact — not an estimate.
        """
        out = bytearray()
        _encode_dest_part(frame.destinations, out)
        return len(out)
