"""The ``json`` codec: the repo's canonical encoding, unchanged.

"json" names the *role* this codec plays — the self-describing,
schema-free rendering every deployment can fall back to — not the text
format: bytes are produced by :func:`repro.util.serialization.canonical_encode`
over ``wire_dict()``, exactly the rendering ``wire_size`` used before the
codec seam existed.  That byte-for-byte equivalence is a hard requirement:
every committed seed snapshot (``benchmarks/results/*.json``) pins wire
sizes produced by this encoding, so the default codec must never change
them.
"""

from __future__ import annotations

from typing import Any

from repro.messaging.message import Message, RoutedFrame
from repro.messaging.topics import Topic
from repro.util.serialization import (
    canonical_decode,
    canonical_encode,
    canonical_encode_into,
)

#: Keys of :meth:`Message.wire_dict`, used to recognize envelopes on decode.
_MESSAGE_KEYS = frozenset(
    {
        "topic",
        "body",
        "source",
        "message_id",
        "created_ms",
        "signature",
        "auth_token",
        "encrypted",
    }
)
_FRAME_KEYS = _MESSAGE_KEYS | {"destinations"}


def message_from_wire_dict(data: dict) -> Message:
    """Rebuild a :class:`Message` from its ``wire_dict()`` rendering.

    ``hops`` never rides the wire (it is link-local diagnostics), so the
    reconstructed message always carries ``hops=0``.
    """
    return Message(
        topic=Topic(data["topic"]),
        body=data["body"],
        source=data["source"],
        message_id=data["message_id"],
        created_ms=data["created_ms"],
        signature=data["signature"],
        auth_token=data["auth_token"],
        encrypted=data["encrypted"],
    )


class JsonCodec:
    """Canonical self-describing encoding (the legacy wire rendering)."""

    name = "json"

    def encode(self, payload: Any) -> bytes:
        """Render ``payload`` (envelope or plain value) to canonical bytes."""
        wire_dict = getattr(payload, "wire_dict", None)
        if callable(wire_dict):
            return canonical_encode(wire_dict())
        return canonical_encode(payload)

    def encode_into(self, payload: Any, out: bytearray) -> int:
        """Append the encoding to a pooled buffer; returns bytes appended."""
        wire_dict = getattr(payload, "wire_dict", None)
        if callable(wire_dict):
            return canonical_encode_into(wire_dict(), out)
        return canonical_encode_into(payload, out)

    def decode(self, data: bytes) -> Any:
        """Inverse of :meth:`encode`.

        Dicts whose keys are exactly a message/frame envelope come back as
        :class:`Message` / :class:`RoutedFrame`; anything else is returned
        as the decoded plain value.
        """
        value = canonical_decode(data)
        if isinstance(value, dict):
            keys = frozenset(value)
            if keys == _FRAME_KEYS:
                return RoutedFrame(
                    message=message_from_wire_dict(value),
                    destinations=tuple(value["destinations"]),
                )
            if keys == _MESSAGE_KEYS:
                return message_from_wire_dict(value)
        return value

    def frame_overhead(self, frame: RoutedFrame) -> int:
        """Extra bytes a :class:`RoutedFrame` adds over its bare message.

        Canonical dict encodings are key-order independent, so adding the
        ``destinations`` entry costs exactly the encoded key plus encoded
        value — which makes frame sizing additive over the memoized
        message size.
        """
        return len(canonical_encode("destinations")) + len(
            canonical_encode(list(frame.destinations))
        )
