"""Codec registry and memoized frame sizing — the wire hot path.

Every simulated send must know how many bytes the payload occupies on the
wire (latency is size-dependent).  Before this package, each send rendered
the full envelope through ``canonical_encode`` — once per link, so a
message forwarded along an N-broker path was encoded N times.  This module
fixes that hot path three ways:

* a **registry** of named :class:`Codec` implementations (``json`` — the
  legacy canonical rendering — and ``compact`` — the binary format of
  :mod:`repro.wire.compact`), selected per link / transport profile;
* a bounded **size memo**: :class:`~repro.messaging.message.Message` is a
  frozen dataclass and ``hops`` never rides the wire, so the encoded size
  of a message is immutable — it is computed once per (codec, message) and
  reused by every forward, with :class:`RoutedFrame` sizes derived
  additively from the memoized message size plus the codec's exact
  destination overhead;
* a **frame pool**: the encode that does happen renders into a pooled
  scratch buffer (:class:`repro.wire.pool.FramePool`) instead of
  allocating per send.

Instruments (see docs/OBSERVABILITY.md): ``codec.encode.ms``,
``codec.encode.memo.hit`` / ``codec.encode.memo.miss``, and
``frame.pool.hit`` / ``frame.pool.miss``.  The encode-time histogram
observes a *modeled, deterministic* cost (a linear function of the encoded
size) — never the host's wall clock — so committed metric snapshots stay
machine-stable.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Any, Protocol, runtime_checkable

from repro.errors import ConfigurationError
from repro.messaging.message import Message, RoutedFrame, register_reset_hook
from repro.wire.compact import CompactCodec
from repro.wire.json_codec import JsonCodec
from repro.wire.pool import FramePool

#: Environment variable consulted by :func:`default_codec_name`; the CI
#: test matrix sets it to run the tier-1 suite under each codec.
CODEC_ENV_VAR = "REPRO_CODEC"

#: Modeled serialization cost observed into ``codec.encode.ms``: a fixed
#: dispatch cost plus a per-KB scan cost.  Deterministic by construction
#: (a function of the encoded size only) so snapshots never depend on the
#: machine running the simulation.
ENCODE_BASE_MS = 0.004
ENCODE_MS_PER_KB = {"json": 0.020, "compact": 0.012}
_ENCODE_MS_PER_KB_DEFAULT = 0.020

#: Bound on the (codec, message_id) -> size memo; LRU beyond this.
SIZE_MEMO_CAPACITY = 4096


@runtime_checkable
class Codec(Protocol):
    """What a wire codec must provide to plug into the registry."""

    name: str

    def encode(self, payload: Any) -> bytes:
        """Render a payload (envelope or plain value) to wire bytes."""
        ...

    def encode_into(self, payload: Any, out: bytearray) -> int:
        """Append the rendering to a pooled buffer; return bytes appended."""
        ...

    def decode(self, data: bytes) -> Any:
        """Inverse of :meth:`encode`."""
        ...

    def frame_overhead(self, frame: RoutedFrame) -> int:
        """Exact bytes a routed frame adds over its bare message."""
        ...


_REGISTRY: dict[str, Codec] = {}


def register_codec(codec: Codec) -> None:
    """Add a codec to the registry; re-registering a name replaces it."""
    _REGISTRY[codec.name] = codec


def get_codec(name: str) -> Codec:
    """Look up a registered codec by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown wire codec {name!r}; registered: {codec_names()}"
        ) from None


def codec_names() -> tuple[str, ...]:
    """Registered codec names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_codec(spec: str | Codec | None) -> Codec:
    """Normalize a codec spec (name, instance, or ``None`` -> ``json``)."""
    if spec is None:
        return _REGISTRY["json"]
    if isinstance(spec, str):
        return get_codec(spec)
    return spec


def default_codec_name() -> str:
    """The deployment-level default codec: ``$REPRO_CODEC`` or ``json``.

    Only :func:`repro.deployment.build_deployment` consults this — the CI
    matrix flips the whole suite to ``compact`` through it, while harnesses
    that compare against committed seed snapshots pin ``codec="json"``
    explicitly and stay immune to the environment.
    """
    name = os.environ.get(CODEC_ENV_VAR, "").strip()
    if not name:
        return "json"
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"{CODEC_ENV_VAR}={name!r} is not a registered codec: {codec_names()}"
        )
    return name


register_codec(JsonCodec())
register_codec(CompactCodec())


#: Shared scratch-buffer pool for all sizing encodes (single-threaded sim).
_POOL = FramePool()

#: (codec name, message id) -> encoded size of the bare message frame.
_SIZE_MEMO: OrderedDict[tuple[str, int], int] = OrderedDict()

#: Actual encode invocations per codec name — the "encode at most once per
#: (codec, message)" assertion in the test suite reads this.
_ENCODE_COUNTS: dict[str, int] = {}


def clear_size_memo() -> None:
    """Drop every memoized size (fired by ``reset_message_ids``)."""
    _SIZE_MEMO.clear()


register_reset_hook(clear_size_memo)


def size_memo_stats() -> dict[str, int]:
    """Current memo occupancy and lifetime encode counts per codec."""
    stats = {"entries": len(_SIZE_MEMO)}
    for name in sorted(_ENCODE_COUNTS):
        stats[f"encodes.{name}"] = _ENCODE_COUNTS[name]
    return stats


def frame_pool() -> FramePool:
    """The process-wide scratch-buffer pool (exposed for tests/metrics)."""
    return _POOL


def modeled_encode_ms(codec_name: str, size_bytes: int) -> float:
    """Deterministic serialization cost for one encode of ``size_bytes``."""
    per_kb = ENCODE_MS_PER_KB.get(codec_name, _ENCODE_MS_PER_KB_DEFAULT)
    return ENCODE_BASE_MS + per_kb * (size_bytes / 1024.0)


def _encode_size(payload: Any, codec: Codec, metrics: Any) -> int:
    """Render ``payload`` into a pooled buffer and return its byte length."""
    hits_before = _POOL.hits
    buffer = _POOL.acquire()
    try:
        size = codec.encode_into(payload, buffer)
    finally:
        _POOL.release(buffer)
    _ENCODE_COUNTS[codec.name] = _ENCODE_COUNTS.get(codec.name, 0) + 1
    if metrics is not None:
        if _POOL.hits > hits_before:
            metrics.counter("frame.pool.hit").inc()
        else:
            metrics.counter("frame.pool.miss").inc()
        metrics.histogram("codec.encode.ms").observe(
            modeled_encode_ms(codec.name, size)
        )
    return size


def _message_size(message: Message, codec: Codec, metrics: Any) -> int:
    key = (codec.name, message.message_id)
    size = _SIZE_MEMO.get(key)
    if size is not None:
        _SIZE_MEMO.move_to_end(key)
        if metrics is not None:
            metrics.counter("codec.encode.memo.hit").inc()
        return size
    size = _encode_size(message, codec, metrics)
    if metrics is not None:
        metrics.counter("codec.encode.memo.miss").inc()
    _SIZE_MEMO[key] = size
    if len(_SIZE_MEMO) > SIZE_MEMO_CAPACITY:
        _SIZE_MEMO.popitem(last=False)
    return size


def frame_size(payload: Any, codec: str | Codec | None = None, metrics: Any = None) -> int:
    """Bytes ``payload`` occupies on the wire under ``codec``.

    Messages are sized once per (codec, message) and memoized; routed
    frames reuse the memoized message size plus the codec's exact
    destination overhead, so broker forwarding never re-renders the
    message body.  Plain values are encoded directly (uncached — they
    carry no identity to key a memo on).
    """
    resolved = resolve_codec(codec)
    if isinstance(payload, RoutedFrame):
        return _message_size(payload.message, resolved, metrics) + resolved.frame_overhead(
            payload
        )
    if isinstance(payload, Message):
        return _message_size(payload, resolved, metrics)
    return _encode_size(payload, resolved, metrics)
