"""Message-level signing and hybrid sealing.

Two patterns recur throughout the paper's protocol:

* **Signing** (section 3.2): "The signing is done by computing the checksum
  for the message and encrypting this message digest with its private key."
  :func:`sign_payload` produces a :class:`SignedEnvelope` whose signature is
  an RSA PKCS#1 v1.5 signature over the canonical encoding of the payload.

* **Sealing** (sections 3.2, 5.1): "The response message is encrypted with a
  randomly generated secret key, and this secret key is encrypted using the
  entity's public key."  :func:`seal_for` implements exactly that hybrid
  scheme and :func:`open_sealed` its inverse.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.crypto.keys import SymmetricKey
from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey
from repro.errors import DecryptionError, SignatureError
from repro.util.serialization import canonical_decode, canonical_encode


@dataclass(frozen=True, slots=True)
class SignedEnvelope:
    """A payload plus the signature and signer fingerprint."""

    payload: Any
    signature: bytes
    signer_fingerprint: bytes

    def payload_bytes(self) -> bytes:
        return canonical_encode(self.payload)

    def to_dict(self) -> dict:
        """Serializable rendering for embedding in messages."""
        return {
            "payload": self.payload,
            "signature": self.signature,
            "signer_fingerprint": self.signer_fingerprint,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SignedEnvelope":
        return cls(
            payload=data["payload"],
            signature=bytes(data["signature"]),
            signer_fingerprint=bytes(data["signer_fingerprint"]),
        )


def sign_payload(payload: Any, private_key: RSAPrivateKey) -> SignedEnvelope:
    """Sign the canonical encoding of ``payload``."""
    encoded = canonical_encode(payload)
    return SignedEnvelope(
        payload=payload,
        signature=private_key.sign(encoded),
        signer_fingerprint=private_key.public.fingerprint(),
    )


def verify_payload(envelope: SignedEnvelope, public_key: RSAPublicKey) -> Any:
    """Verify an envelope; returns the payload or raises.

    Raises :class:`SignatureError` if the fingerprint does not match the
    presented key (the claimed signer is someone else) or if the signature
    itself fails — both are indistinguishable to an attacker but useful to
    separate in logs and tests.
    """
    if envelope.signer_fingerprint != public_key.fingerprint():
        raise SignatureError("envelope was not signed by the presented key")
    public_key.verify(envelope.payload_bytes(), envelope.signature)
    return envelope.payload


@dataclass(frozen=True, slots=True)
class SealedPayload:
    """Hybrid-encrypted payload: AES body + RSA-wrapped key."""

    wrapped_key: bytes
    algorithm: str
    padding: str
    ciphertext: bytes

    def to_dict(self) -> dict:
        return {
            "wrapped_key": self.wrapped_key,
            "algorithm": self.algorithm,
            "padding": self.padding,
            "ciphertext": self.ciphertext,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SealedPayload":
        return cls(
            wrapped_key=bytes(data["wrapped_key"]),
            algorithm=str(data["algorithm"]),
            padding=str(data["padding"]),
            ciphertext=bytes(data["ciphertext"]),
        )


def seal_for(
    payload: Any, recipient: RSAPublicKey, rng: random.Random, key_bits: int = 192
) -> SealedPayload:
    """Encrypt ``payload`` so only ``recipient`` can read it."""
    session_key = SymmetricKey.generate(rng, key_bits)
    ciphertext = session_key.encrypt(canonical_encode(payload), rng)
    wrapped = recipient.encrypt(session_key.key.material, rng)
    return SealedPayload(
        wrapped_key=wrapped,
        algorithm=session_key.algorithm,
        padding=session_key.padding,
        ciphertext=ciphertext,
    )


def open_sealed(sealed: SealedPayload, private_key: RSAPrivateKey) -> Any:
    """Decrypt a :class:`SealedPayload`; raises :class:`DecryptionError`."""
    from repro.crypto.aes import AESKey  # local import avoids cycle at module load

    key_material = private_key.decrypt(sealed.wrapped_key)
    session_key = SymmetricKey(
        key=AESKey(key_material), algorithm=sealed.algorithm, padding=sealed.padding
    )
    plaintext = session_key.decrypt(sealed.ciphertext)
    try:
        return canonical_decode(plaintext)
    except ValueError as exc:
        raise DecryptionError("sealed payload decoded to garbage") from exc
