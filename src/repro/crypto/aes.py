"""Pure-Python AES-128/192/256 with CBC mode and PKCS#7 padding.

The paper encrypts traces with 192-bit AES keys (section 6).  This is a
straightforward FIPS-197 implementation: byte-oriented, table-free except
for the S-boxes, and deliberately simple rather than fast — the simulator
charges virtual time from the calibrated cost model, not from the wall
clock, so raw speed is irrelevant to benchmark fidelity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import CryptoInputError, DecryptionError, KeyMaterialError, PaddingError

BLOCK_SIZE = 16

# --- S-boxes (FIPS-197) ------------------------------------------------------


def _build_sboxes() -> tuple[bytes, bytes]:
    """Construct the AES S-box and its inverse from GF(2^8) arithmetic."""
    # multiplicative inverse table via exp/log over generator 3
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply by generator 0x03 in GF(2^8)
        x ^= (x << 1) ^ (0x1B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = bytearray(256)
    inv_sbox = bytearray(256)
    for value in range(256):
        inv = 0 if value == 0 else exp[255 - log[value]]
        # affine transformation
        s = inv
        result = inv
        for _ in range(4):
            s = ((s << 1) | (s >> 7)) & 0xFF
            result ^= s
        result ^= 0x63
        sbox[value] = result
        inv_sbox[result] = value
    return bytes(sbox), bytes(inv_sbox)


_SBOX, _INV_SBOX = _build_sboxes()
_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D)


def _xtime(a: int) -> int:
    """Multiply by x (i.e. 0x02) in GF(2^8)."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    """General GF(2^8) multiplication (peasant algorithm)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


# --- key schedule ------------------------------------------------------------


def _expand_key(key: bytes) -> list[list[int]]:
    """AES key expansion: returns round keys as lists of 16 ints."""
    nk = len(key) // 4
    rounds = {4: 10, 6: 12, 8: 14}[nk]
    words: list[list[int]] = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
    for i in range(nk, 4 * (rounds + 1)):
        temp = list(words[i - 1])
        if i % nk == 0:
            temp = temp[1:] + temp[:1]
            temp = [_SBOX[b] for b in temp]
            temp[0] ^= _RCON[i // nk - 1]
        elif nk > 6 and i % nk == 4:
            temp = [_SBOX[b] for b in temp]
        words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
    round_keys: list[list[int]] = []
    for r in range(rounds + 1):
        rk: list[int] = []
        for w in words[4 * r : 4 * r + 4]:
            rk.extend(w)
        round_keys.append(rk)
    return round_keys


# --- block operations ---------------------------------------------------------
# State is a flat list of 16 bytes in column-major order, matching FIPS-197:
# state[r + 4*c] is row r, column c.


def _add_round_key(state: list[int], rk: list[int]) -> None:
    for i in range(16):
        state[i] ^= rk[i]


def _sub_bytes(state: list[int], box: bytes) -> None:
    for i in range(16):
        state[i] = box[state[i]]


_SHIFT_MAP = [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11]
_INV_SHIFT_MAP = [0, 13, 10, 7, 4, 1, 14, 11, 8, 5, 2, 15, 12, 9, 6, 3]


def _shift_rows(state: list[int]) -> list[int]:
    return [state[_SHIFT_MAP[i]] for i in range(16)]


def _inv_shift_rows(state: list[int]) -> list[int]:
    return [state[_INV_SHIFT_MAP[i]] for i in range(16)]


def _mix_columns(state: list[int]) -> None:
    for c in range(4):
        i = 4 * c
        a0, a1, a2, a3 = state[i : i + 4]
        state[i + 0] = _xtime(a0) ^ (_xtime(a1) ^ a1) ^ a2 ^ a3
        state[i + 1] = a0 ^ _xtime(a1) ^ (_xtime(a2) ^ a2) ^ a3
        state[i + 2] = a0 ^ a1 ^ _xtime(a2) ^ (_xtime(a3) ^ a3)
        state[i + 3] = (_xtime(a0) ^ a0) ^ a1 ^ a2 ^ _xtime(a3)


def _inv_mix_columns(state: list[int]) -> None:
    for c in range(4):
        i = 4 * c
        a0, a1, a2, a3 = state[i : i + 4]
        state[i + 0] = _gmul(a0, 14) ^ _gmul(a1, 11) ^ _gmul(a2, 13) ^ _gmul(a3, 9)
        state[i + 1] = _gmul(a0, 9) ^ _gmul(a1, 14) ^ _gmul(a2, 11) ^ _gmul(a3, 13)
        state[i + 2] = _gmul(a0, 13) ^ _gmul(a1, 9) ^ _gmul(a2, 14) ^ _gmul(a3, 11)
        state[i + 3] = _gmul(a0, 11) ^ _gmul(a1, 13) ^ _gmul(a2, 9) ^ _gmul(a3, 14)


def encrypt_block(block: bytes, round_keys: list[list[int]]) -> bytes:
    """Encrypt one 16-byte block."""
    if len(block) != BLOCK_SIZE:
        raise CryptoInputError(f"block must be {BLOCK_SIZE} bytes")
    state = list(block)
    _add_round_key(state, round_keys[0])
    for r in range(1, len(round_keys) - 1):
        _sub_bytes(state, _SBOX)
        state = _shift_rows(state)
        _mix_columns(state)
        _add_round_key(state, round_keys[r])
    _sub_bytes(state, _SBOX)
    state = _shift_rows(state)
    _add_round_key(state, round_keys[-1])
    return bytes(state)


def decrypt_block(block: bytes, round_keys: list[list[int]]) -> bytes:
    """Decrypt one 16-byte block."""
    if len(block) != BLOCK_SIZE:
        raise CryptoInputError(f"block must be {BLOCK_SIZE} bytes")
    state = list(block)
    _add_round_key(state, round_keys[-1])
    for r in range(len(round_keys) - 2, 0, -1):
        state = _inv_shift_rows(state)
        _sub_bytes(state, _INV_SBOX)
        _add_round_key(state, round_keys[r])
        _inv_mix_columns(state)
    state = _inv_shift_rows(state)
    _sub_bytes(state, _INV_SBOX)
    _add_round_key(state, round_keys[0])
    return bytes(state)


# --- key object, CBC mode, padding -------------------------------------------


@dataclass(frozen=True, slots=True)
class AESKey:
    """An AES key of 128, 192 (the paper's choice) or 256 bits."""

    material: bytes

    def __post_init__(self) -> None:
        if len(self.material) not in (16, 24, 32):
            raise KeyMaterialError(
                f"AES key must be 16/24/32 bytes, got {len(self.material)}"
            )

    @property
    def bits(self) -> int:
        return len(self.material) * 8

    def round_keys(self) -> list[list[int]]:
        return _expand_key(self.material)


def generate_aes_key(rng: random.Random, bits: int = 192) -> AESKey:
    """Fresh random AES key; default 192 bits per the paper."""
    if bits not in (128, 192, 256):
        raise KeyMaterialError(f"AES key size must be 128/192/256, got {bits}")
    return AESKey(bytes(rng.randrange(256) for _ in range(bits // 8)))


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Append PKCS#7 padding (always at least one byte)."""
    pad = block_size - (len(data) % block_size)
    return data + bytes([pad]) * pad


def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_size:
        raise PaddingError("padded data length not a multiple of block size")
    pad = data[-1]
    if pad < 1 or pad > block_size:
        raise PaddingError(f"invalid padding byte {pad}")
    if data[-pad:] != bytes([pad]) * pad:
        raise PaddingError("inconsistent padding bytes")
    return data[:-pad]


def aes_cbc_encrypt(key: AESKey, plaintext: bytes, rng: random.Random) -> bytes:
    """CBC-encrypt with PKCS#7 padding; the random IV is prepended."""
    round_keys = key.round_keys()
    iv = bytes(rng.randrange(256) for _ in range(BLOCK_SIZE))
    padded = pkcs7_pad(plaintext)
    out = bytearray(iv)
    prev = iv
    for i in range(0, len(padded), BLOCK_SIZE):
        block = bytes(a ^ b for a, b in zip(padded[i : i + BLOCK_SIZE], prev, strict=True))
        prev = encrypt_block(block, round_keys)
        out += prev
    return bytes(out)


def aes_cbc_decrypt(key: AESKey, ciphertext: bytes) -> bytes:
    """Inverse of :func:`aes_cbc_encrypt`; raises on corrupt input."""
    if len(ciphertext) < 2 * BLOCK_SIZE or len(ciphertext) % BLOCK_SIZE:
        raise DecryptionError(
            f"ciphertext length {len(ciphertext)} invalid for CBC"
        )
    round_keys = key.round_keys()
    iv = ciphertext[:BLOCK_SIZE]
    out = bytearray()
    prev = iv
    for i in range(BLOCK_SIZE, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[i : i + BLOCK_SIZE]
        plain = decrypt_block(block, round_keys)
        out += bytes(a ^ b for a, b in zip(plain, prev, strict=True))
        prev = block
    return pkcs7_unpad(bytes(out))
