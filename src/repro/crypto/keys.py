"""Key abstractions shared by the protocol layers.

:class:`SymmetricKey` wraps an AES key together with the algorithm and
padding-scheme metadata that the paper's key-distribution payload carries
("a message containing the secret trace key, the encryption algorithm and
the padding scheme that will be used", section 5.1).

:class:`KeyPair` is a thin alias of the RSA pair used where the protocol
speaks of "randomly generated key pairs" inside authorization tokens.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.crypto.aes import AESKey, aes_cbc_decrypt, aes_cbc_encrypt, generate_aes_key
from repro.crypto.rsa import RSAKeyPair, generate_rsa_keypair

from repro.errors import KeyMaterialError


@dataclass(frozen=True, slots=True)
class SymmetricKey:
    """A symmetric key plus its negotiated algorithm and padding scheme."""

    key: AESKey
    algorithm: str = "AES/CBC"
    padding: str = "PKCS7"

    @classmethod
    def generate(cls, rng: random.Random, bits: int = 192) -> "SymmetricKey":
        return cls(key=generate_aes_key(rng, bits))

    def encrypt(self, plaintext: bytes, rng: random.Random) -> bytes:
        if self.algorithm != "AES/CBC" or self.padding != "PKCS7":
            raise KeyMaterialError(
                f"unsupported scheme {self.algorithm}/{self.padding}"
            )
        return aes_cbc_encrypt(self.key, plaintext, rng)

    def decrypt(self, ciphertext: bytes) -> bytes:
        if self.algorithm != "AES/CBC" or self.padding != "PKCS7":
            raise KeyMaterialError(
                f"unsupported scheme {self.algorithm}/{self.padding}"
            )
        return aes_cbc_decrypt(self.key, ciphertext)

    def to_dict(self) -> dict:
        """Serializable form for embedding in a key-distribution payload."""
        return {
            "key": self.key.material,
            "algorithm": self.algorithm,
            "padding": self.padding,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SymmetricKey":
        return cls(
            key=AESKey(bytes(data["key"])),
            algorithm=str(data["algorithm"]),
            padding=str(data["padding"]),
        )


@dataclass(slots=True)
class KeyPair:
    """An asymmetric key pair owned by one principal."""

    rsa: RSAKeyPair = field(repr=False)

    @classmethod
    def generate(cls, rng: random.Random, bits: int | None = None) -> "KeyPair":
        if bits is None:
            pair = generate_rsa_keypair(rng)
        else:
            pair = generate_rsa_keypair(rng, bits)
        return cls(rsa=pair)

    @property
    def public(self):
        return self.rsa.public

    @property
    def private(self):
        return self.rsa.private
