"""Textbook RSA with PKCS#1 v1.5 style padding (simulation-grade).

The paper signs with "1024-bit RSA with 160-bit SHA-1 and PKCS#1 padding"
(section 6).  We implement:

* key generation (two random primes, e = 65537, CRT parameters),
* EMSA-PKCS1-v1_5 signatures over a SHA-1 DigestInfo,
* EME-PKCS1-v1_5 encryption (random non-zero padding bytes).

Default key size in the simulator is 512 bits purely for speed; the
benchmark cost model charges virtual time calibrated to 1024-bit hardware
regardless, so simulated latencies are unaffected by the real key size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto import digest as _digest
from repro.crypto.primes import generate_prime, modinv
from repro.errors import DecryptionError, KeyMaterialError, PaddingError, SignatureError

#: Simulation default modulus size (bits).  See module docstring.
DEFAULT_KEY_BITS = 512

#: DER prefix of DigestInfo for SHA-1 (RFC 8017 section 9.2 notes).
_SHA1_DIGEST_INFO_PREFIX = bytes.fromhex("3021300906052b0e03021a05000414")


@dataclass(frozen=True, slots=True)
class RSAPublicKey:
    """RSA public key (n, e)."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def fingerprint(self) -> bytes:
        """Stable 20-byte identifier for this key."""
        material = self.n.to_bytes(self.byte_length, "big") + self.e.to_bytes(4, "big")
        return _digest.sha1_digest(material)

    def verify(self, message: bytes, signature: bytes) -> None:
        """Verify an EMSA-PKCS1-v1_5 SHA-1 signature; raise on failure."""
        k = self.byte_length
        if len(signature) != k:
            raise SignatureError(
                f"signature length {len(signature)} != modulus length {k}"
            )
        s = int.from_bytes(signature, "big")
        if s >= self.n:
            raise SignatureError("signature representative out of range")
        em = pow(s, self.e, self.n).to_bytes(k, "big")
        expected = _emsa_pkcs1_v15(message, k)
        if em != expected:
            raise SignatureError("signature does not verify")

    def encrypt(self, plaintext: bytes, rng: random.Random) -> bytes:
        """EME-PKCS1-v1_5 encryption of a short plaintext."""
        k = self.byte_length
        max_len = k - 11
        if len(plaintext) > max_len:
            raise KeyMaterialError(
                f"plaintext too long for RSA block: {len(plaintext)} > {max_len}"
            )
        pad_len = k - 3 - len(plaintext)
        padding = bytes(rng.randrange(1, 256) for _ in range(pad_len))
        em = b"\x00\x02" + padding + b"\x00" + plaintext
        m = int.from_bytes(em, "big")
        return pow(m, self.e, self.n).to_bytes(k, "big")


@dataclass(frozen=True, slots=True)
class RSAPrivateKey:
    """RSA private key with CRT acceleration parameters."""

    n: int
    e: int
    d: int
    p: int
    q: int
    d_p: int
    d_q: int
    q_inv: int

    @property
    def public(self) -> RSAPublicKey:
        return RSAPublicKey(self.n, self.e)

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def _private_op(self, c: int) -> int:
        """c^d mod n using the Chinese Remainder Theorem."""
        m1 = pow(c, self.d_p, self.p)
        m2 = pow(c, self.d_q, self.q)
        h = (self.q_inv * (m1 - m2)) % self.p
        return m2 + self.q * h

    def sign(self, message: bytes) -> bytes:
        """EMSA-PKCS1-v1_5 signature with SHA-1."""
        k = self.byte_length
        em = _emsa_pkcs1_v15(message, k)
        m = int.from_bytes(em, "big")
        return self._private_op(m).to_bytes(k, "big")

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Inverse of :meth:`RSAPublicKey.encrypt`."""
        k = self.byte_length
        if len(ciphertext) != k:
            raise DecryptionError(
                f"ciphertext length {len(ciphertext)} != modulus length {k}"
            )
        c = int.from_bytes(ciphertext, "big")
        if c >= self.n:
            raise DecryptionError("ciphertext representative out of range")
        em = self._private_op(c).to_bytes(k, "big")
        if em[0:2] != b"\x00\x02":
            raise PaddingError("bad EME-PKCS1 header")
        try:
            sep = em.index(b"\x00", 2)
        except ValueError:
            raise PaddingError("missing EME-PKCS1 separator") from None
        if sep < 10:  # at least 8 padding bytes
            raise PaddingError("EME-PKCS1 padding too short")
        return em[sep + 1 :]


@dataclass(frozen=True, slots=True)
class RSAKeyPair:
    """Convenience bundle of matched public and private keys."""

    public: RSAPublicKey
    private: RSAPrivateKey


def generate_rsa_keypair(
    rng: random.Random, bits: int = DEFAULT_KEY_BITS, e: int = 65537
) -> RSAKeyPair:
    """Generate a fresh RSA key pair of ``bits`` modulus bits."""
    if bits < 128 or bits % 2:
        raise KeyMaterialError(f"modulus bits must be even and >= 128, got {bits}")
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        d = modinv(e, phi)
        private = RSAPrivateKey(
            n=n, e=e, d=d, p=p, q=q,
            d_p=d % (p - 1), d_q=d % (q - 1), q_inv=modinv(q, p),
        )
        return RSAKeyPair(public=private.public, private=private)


def _emsa_pkcs1_v15(message: bytes, em_len: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of SHA-1(message) into ``em_len`` bytes."""
    t = _SHA1_DIGEST_INFO_PREFIX + _digest.sha1_digest(message)
    if em_len < len(t) + 11:
        raise KeyMaterialError("modulus too small for EMSA-PKCS1-v1_5 with SHA-1")
    ps = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + ps + b"\x00" + t
