"""Calibrated virtual-time costs of cryptographic operations.

The paper's Table 3 includes a micro-benchmark of every security operation
(1024-bit RSA + SHA-1 + 192-bit AES under BouncyCastle 1.3 on 2.4 GHz
Xeons).  Inside the simulator, the *functional* crypto is executed with our
pure-Python primitives, but the *time charged to the virtual clock* comes
from this model so that reproduced latencies have the paper's shape rather
than the shape of whatever machine runs the simulation.

Each operation is modeled as a Gaussian ``N(mean, std)`` truncated below at
``floor_ms``, sampled from a seeded RNG stream.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.obs import MetricsRegistry


class CryptoOp(enum.Enum):
    """Every cryptographic operation the protocol charges time for."""

    # Rows taken directly from Table 3 of the paper.
    TOKEN_GENERATE_AND_SIGN = "token_generate_and_sign"
    TOKEN_VERIFY = "token_verify"
    TRACE_ENCRYPT = "trace_encrypt"
    TRACE_DECRYPT = "trace_decrypt"
    TRACE_SIGN = "trace_sign"
    TRACE_VERIFY = "trace_verify"
    TRACE_SIGN_ENCRYPTED = "trace_sign_encrypted"
    TRACE_VERIFY_ENCRYPTED = "trace_verify_encrypted"
    # Derived operations the protocol also performs (values estimated to be
    # consistent with the Table 3 rows: RSA private-key ops dominate).
    RSA_KEYGEN = "rsa_keygen"
    RSA_ENCRYPT = "rsa_encrypt"
    RSA_DECRYPT = "rsa_decrypt"
    SEAL_PAYLOAD = "seal_payload"
    OPEN_SEALED = "open_sealed"
    CERT_VERIFY = "cert_verify"
    SYM_KEYGEN = "sym_keygen"
    MAC_COMPUTE = "mac_compute"
    MAC_VERIFY = "mac_verify"
    # End-to-end securing of one trace (cipher init, encrypt/decrypt, and
    # encoding overhead of the 2003 JCE stack).  Calibrated so that the
    # auth+security minus auth-only gap reproduces Table 3's ~17.6 ms; the
    # paper's own micro rows (0.25 ms encrypt / 1.15 ms decrypt) likewise do
    # not add up to its macro gap, so the wrap constants carry the
    # unattributed per-message security overhead observed in its testbed.
    SECURE_WRAP = "secure_wrap"
    SECURE_UNWRAP = "secure_unwrap"


@dataclass(frozen=True, slots=True)
class OpCost:
    """Gaussian cost of one operation, in milliseconds."""

    mean_ms: float
    std_ms: float
    floor_ms: float = 0.01

    def __post_init__(self) -> None:
        if self.mean_ms < 0 or self.std_ms < 0 or self.floor_ms < 0:
            raise ConfigurationError("cost parameters must be non-negative")


#: Calibration lifted from Table 3 (mean, std dev) plus consistent estimates
#: for the derived operations.  All values in milliseconds.
PAPER_CALIBRATION: Mapping[CryptoOp, OpCost] = {
    CryptoOp.TOKEN_GENERATE_AND_SIGN: OpCost(27.19, 2.99),
    CryptoOp.TOKEN_VERIFY: OpCost(2.01, 1.04),
    CryptoOp.TRACE_ENCRYPT: OpCost(0.25, 0.20),
    CryptoOp.TRACE_DECRYPT: OpCost(1.15, 0.68),
    CryptoOp.TRACE_SIGN: OpCost(24.51, 1.81),
    CryptoOp.TRACE_VERIFY: OpCost(6.83, 1.81),
    CryptoOp.TRACE_SIGN_ENCRYPTED: OpCost(24.0, 1.37),
    CryptoOp.TRACE_VERIFY_ENCRYPTED: OpCost(5.31, 1.09),
    # Derived: an RSA private-key operation is what makes signing ~24.5 ms;
    # public-key operations (e = 65537) are roughly an order cheaper.
    CryptoOp.RSA_KEYGEN: OpCost(55.0, 18.0),
    CryptoOp.RSA_ENCRYPT: OpCost(1.6, 0.4),
    CryptoOp.RSA_DECRYPT: OpCost(20.5, 2.0),
    CryptoOp.SEAL_PAYLOAD: OpCost(2.4, 0.6),     # AES keygen + encrypt + RSA public op
    CryptoOp.OPEN_SEALED: OpCost(21.6, 2.1),     # RSA private op + AES decrypt
    CryptoOp.CERT_VERIFY: OpCost(2.2, 0.9),
    CryptoOp.SYM_KEYGEN: OpCost(0.4, 0.1),
    CryptoOp.MAC_COMPUTE: OpCost(0.12, 0.05),
    CryptoOp.MAC_VERIFY: OpCost(0.12, 0.05),
    CryptoOp.SECURE_WRAP: OpCost(8.95, 1.25),
    CryptoOp.SECURE_UNWRAP: OpCost(8.65, 1.25),
}


class CryptoCostModel:
    """Samples virtual-time costs for crypto operations.

    A single model instance owns one RNG stream, so a simulation seeded once
    produces identical cost sequences run-to-run.
    """

    def __init__(
        self,
        calibration: Mapping[CryptoOp, OpCost] | None = None,
        seed: int | None = None,
        scale: float = 1.0,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        """``scale`` uniformly rescales all costs (e.g. to model faster CPUs)."""
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        self._costs = dict(calibration or PAPER_CALIBRATION)
        missing = [op for op in CryptoOp if op not in self._costs]
        if missing:
            raise ConfigurationError(f"calibration missing ops: {missing}")
        self._rng = random.Random(seed)
        self.scale = scale
        self._metrics = metrics

    def bind_metrics(self, metrics: "MetricsRegistry | None") -> None:
        """Route every subsequent sample into ``crypto.*`` instruments."""
        self._metrics = metrics

    def mean_ms(self, op: CryptoOp) -> float:
        """Deterministic mean cost (used by analytic predictions in tests)."""
        return self._costs[op].mean_ms * self.scale

    def sample_ms(self, op: CryptoOp) -> float:
        """One random cost draw for ``op``."""
        cost = self._costs[op]
        draw = self._rng.gauss(cost.mean_ms, cost.std_ms)
        sampled = max(cost.floor_ms, draw) * self.scale
        if self._metrics is not None:
            self._metrics.counter("crypto.ops.total").inc()
            self._metrics.counter(f"crypto.ops.{op.value}").inc()
            self._metrics.histogram(f"crypto.ms.{op.value}").observe(sampled)
        return sampled

    def zero(self) -> "CryptoCostModel":
        """A model that charges (almost) nothing — for functional tests."""
        zeroed = {op: OpCost(0.0, 0.0, 0.0) for op in CryptoOp}
        return CryptoCostModel(calibration=zeroed, seed=0)

    @classmethod
    def free(cls) -> "CryptoCostModel":
        """Model charging zero time for every operation."""
        zeroed = {op: OpCost(0.0, 0.0, 0.0) for op in CryptoOp}
        return cls(calibration=zeroed, seed=0)
