"""Message digests.

The paper uses 160-bit SHA-1 for message checksums and signature digests.
We delegate to :mod:`hashlib` (these are not the simulation's interesting
parts) but wrap them behind one seam so the digest algorithm is swappable
and so a :class:`Digest` value can travel inside messages.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
from dataclasses import dataclass

from repro.errors import CryptoInputError


def sha1_digest(data: bytes) -> bytes:
    """160-bit SHA-1 digest (the paper's choice)."""
    return hashlib.sha1(data).digest()


def sha256_digest(data: bytes) -> bytes:
    """256-bit SHA-256 digest (offered as a modern alternative)."""
    return hashlib.sha256(data).digest()


_ALGORITHMS = {
    "sha1": sha1_digest,
    "sha256": sha256_digest,
}


@dataclass(frozen=True, slots=True)
class Digest:
    """An algorithm-tagged digest value, safe to embed in messages."""

    algorithm: str
    value: bytes

    @classmethod
    def compute(cls, data: bytes, algorithm: str = "sha1") -> "Digest":
        try:
            fn = _ALGORITHMS[algorithm]
        except KeyError:
            raise CryptoInputError(f"unknown digest algorithm {algorithm!r}") from None
        return cls(algorithm=algorithm, value=fn(data))

    def matches(self, data: bytes) -> bool:
        """Constant-time comparison against the digest of ``data``."""
        other = Digest.compute(data, self.algorithm)
        return _hmac.compare_digest(self.value, other.value)

    @property
    def hex(self) -> str:
        return self.value.hex()


def hmac_sha1(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA1 keyed digest (used by the symmetric-channel optimization)."""
    return _hmac.new(key, data, hashlib.sha1).digest()
