"""Probabilistic prime generation for RSA key material.

Miller-Rabin with a deterministic witness set for small inputs and random
witnesses (from a caller-supplied seeded RNG) above that, so key generation
is reproducible inside a seeded simulation run.
"""

from __future__ import annotations

import random

from repro.errors import CryptoInputError

# Primes below 100 — used for fast trial-division rejection.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
    53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
)

# For n < 3,317,044,064,679,887,385,961,981 these witnesses make
# Miller-Rabin deterministic (Sorenson & Webster).
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """One MR round; True means 'probably prime' for witness ``a``."""
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rng: random.Random | None = None, rounds: int = 40) -> bool:
    """Miller-Rabin primality test.

    Deterministic for n below ~3.3e24; above that, ``rounds`` random
    witnesses give error probability at most 4^-rounds.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # write n-1 = d * 2^r with d odd
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if n < _DETERMINISTIC_BOUND:
        witnesses: tuple[int, ...] | list[int] = _DETERMINISTIC_WITNESSES
    else:
        rng = rng or random.Random(n)  # deterministic: seeded by the candidate itself
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]
    for a in witnesses:
        if a % n == 0:
            continue
        if not _miller_rabin_round(n, a, d, r):
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """A random probable prime of exactly ``bits`` bits.

    The top two bits are forced so that the product of two such primes has
    exactly ``2 * bits`` bits (standard RSA practice).
    """
    if bits < 8:
        raise CryptoInputError(f"prime size too small: {bits} bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2))  # force size
        candidate |= 1  # force odd
        if is_probable_prime(candidate, rng):
            return candidate


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: returns (g, x, y) with a*x + b*y = g = gcd(a, b)."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` mod ``m``; raises if not coprime."""
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise CryptoInputError(f"{a} has no inverse modulo {m}")
    return x % m
