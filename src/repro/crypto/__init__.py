"""Simulation-grade cryptography substrate.

The paper's implementation used BouncyCastle v1.3 with 1024-bit RSA,
160-bit SHA-1 (PKCS#1 padding) for signatures and 192-bit AES for symmetric
encryption (section 6).  We reimplement those primitives in pure Python so
that the protocol's security properties are *functionally real* inside the
simulation: a tampered message genuinely fails signature verification, the
wrong key genuinely fails to decrypt.

.. warning::
   This is textbook cryptography for simulation and education.  It is not
   constant-time, not side-channel hardened, and must never be used to
   protect real data.
"""

from repro.crypto.digest import sha1_digest, sha256_digest, Digest
from repro.crypto.rsa import RSAKeyPair, RSAPublicKey, RSAPrivateKey, generate_rsa_keypair
from repro.crypto.aes import AESKey, aes_cbc_encrypt, aes_cbc_decrypt, generate_aes_key
from repro.crypto.keys import SymmetricKey, KeyPair
from repro.crypto.signing import sign_payload, verify_payload, SignedEnvelope, seal_for, open_sealed, SealedPayload
from repro.crypto.certificates import Certificate, CertificateAuthority
from repro.crypto.costmodel import CryptoCostModel, CryptoOp, PAPER_CALIBRATION

__all__ = [
    "sha1_digest",
    "sha256_digest",
    "Digest",
    "RSAKeyPair",
    "RSAPublicKey",
    "RSAPrivateKey",
    "generate_rsa_keypair",
    "AESKey",
    "aes_cbc_encrypt",
    "aes_cbc_decrypt",
    "generate_aes_key",
    "SymmetricKey",
    "KeyPair",
    "sign_payload",
    "verify_payload",
    "SignedEnvelope",
    "seal_for",
    "open_sealed",
    "SealedPayload",
    "Certificate",
    "CertificateAuthority",
    "CryptoCostModel",
    "CryptoOp",
    "PAPER_CALIBRATION",
]
