"""X.509-like credentials.

The paper requires entities to present "a X.509 certificate" as credentials
when creating topics, registering for tracing, and discovering topics.  We
model the parts of X.509 the protocol actually exercises: a subject name
bound to a public key, a validity window, and an issuer signature that can
be chained back to a trusted certificate authority.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.keys import KeyPair
from repro.crypto.rsa import RSAPublicKey
from repro.errors import CertificateError, SignatureError
from repro.util.serialization import canonical_encode


@dataclass(frozen=True, slots=True)
class Certificate:
    """A signed binding of ``subject`` to ``public_key``.

    ``issuer`` names the CA (or the subject itself, when self-signed);
    ``signature`` is the issuer's RSA signature over the canonical encoding
    of all other fields.
    """

    subject: str
    issuer: str
    public_key: RSAPublicKey
    serial: int
    not_before_ms: float
    not_after_ms: float
    signature: bytes

    def to_be_signed(self) -> bytes:
        """The canonical bytes the issuer signs."""
        return canonical_encode(
            {
                "subject": self.subject,
                "issuer": self.issuer,
                "n": self.public_key.n,
                "e": self.public_key.e,
                "serial": self.serial,
                "not_before_ms": self.not_before_ms,
                "not_after_ms": self.not_after_ms,
            }
        )

    def fingerprint(self) -> bytes:
        return self.public_key.fingerprint()

    def check_validity(self, now_ms: float) -> None:
        """Raise if the certificate is outside its validity window."""
        if now_ms < self.not_before_ms:
            raise CertificateError(
                f"certificate for {self.subject!r} not yet valid"
            )
        if now_ms > self.not_after_ms:
            raise CertificateError(f"certificate for {self.subject!r} expired")


class CertificateAuthority:
    """A simple single-level CA.

    Issues subject certificates and verifies presented certificates against
    its own root key.  One CA instance plays the role of the deployment's
    trust anchor; every broker and TDN holds a reference to it (or just its
    root certificate) for verification.
    """

    def __init__(self, name: str, rng: random.Random, key_bits: int | None = None) -> None:
        self.name = name
        self._rng = rng
        self._keys = KeyPair.generate(rng, key_bits)
        self._serial = 0
        self.root_certificate = self._make_root()

    def _make_root(self) -> Certificate:
        self._serial += 1
        unsigned = Certificate(
            subject=self.name,
            issuer=self.name,
            public_key=self._keys.public,
            serial=self._serial,
            not_before_ms=0.0,
            not_after_ms=float("inf"),
            signature=b"",
        )
        signature = self._keys.private.sign(unsigned.to_be_signed())
        return Certificate(
            subject=unsigned.subject,
            issuer=unsigned.issuer,
            public_key=unsigned.public_key,
            serial=unsigned.serial,
            not_before_ms=unsigned.not_before_ms,
            not_after_ms=unsigned.not_after_ms,
            signature=signature,
        )

    #: Default backdating of not_before: real CAs backdate issuance so a
    #: verifier whose clock runs behind (NTP skew) does not reject a
    #: freshly issued certificate.
    BACKDATE_MS = 3_600_000.0

    def issue(
        self,
        subject: str,
        public_key: RSAPublicKey,
        not_before_ms: float | None = None,
        not_after_ms: float = float("inf"),
    ) -> Certificate:
        """Issue a certificate binding ``subject`` to ``public_key``.

        ``not_before_ms`` defaults to one hour in the past (see
        :data:`BACKDATE_MS`).
        """
        if not_before_ms is None:
            not_before_ms = -self.BACKDATE_MS
        self._serial += 1
        unsigned = Certificate(
            subject=subject,
            issuer=self.name,
            public_key=public_key,
            serial=self._serial,
            not_before_ms=not_before_ms,
            not_after_ms=not_after_ms,
            signature=b"",
        )
        signature = self._keys.private.sign(unsigned.to_be_signed())
        return Certificate(
            subject=unsigned.subject,
            issuer=unsigned.issuer,
            public_key=unsigned.public_key,
            serial=unsigned.serial,
            not_before_ms=unsigned.not_before_ms,
            not_after_ms=unsigned.not_after_ms,
            signature=signature,
        )

    def verify(self, certificate: Certificate, now_ms: float | None = None) -> None:
        """Raise :class:`CertificateError` unless ``certificate`` is valid.

        Checks issuer name, issuer signature, and (when ``now_ms`` is given)
        the validity window.
        """
        if certificate.issuer != self.name:
            raise CertificateError(
                f"certificate issued by {certificate.issuer!r}, not {self.name!r}"
            )
        try:
            self._keys.public.verify(
                certificate.to_be_signed(), certificate.signature
            )
        except SignatureError as exc:
            raise CertificateError(
                f"certificate signature for {certificate.subject!r} invalid"
            ) from exc
        if now_ms is not None:
            certificate.check_validity(now_ms)
