"""Ablation and baseline experiments (EXP-A1, EXP-A2, EXP-A3).

* **Message-count ablation** — the intro's N x (N-1) strawman versus the
  interest-gated tracing scheme's message budget at matched population.
* **Gossip baseline** — detection latency and message load of a gossip
  failure detector versus the broker-based scheme.
* **Adaptive-ping ablation** — failure-detection latency with and without
  the section 3.3 interval adaptation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.allpairs import allpairs_message_rate
from repro.baselines.gossip import GossipFailureDetector
from repro.errors import BenchmarkError
from repro.deployment import build_deployment
from repro.sim.engine import Simulator
from repro.tracing.failure import AdaptivePingPolicy
from repro.tracing.interest import InterestCategory
from repro.tracing.traces import TraceType

# ---------------------------------------------------------------- EXP-A1


@dataclass(frozen=True, slots=True)
class MessageCountResult:
    """One EXP-A1 point: msgs/s for all-pairs vs brokered tracing."""

    population: int
    watchers: int
    allpairs_msgs_per_s: float
    tracing_msgs_per_s: float

    @property
    def reduction_factor(self) -> float:
        """How many times fewer msgs/s tracing needs than all-pairs."""
        return self.allpairs_msgs_per_s / max(self.tracing_msgs_per_s, 1e-9)


def run_message_count_case(
    population: int,
    watchers_per_entity: int = 2,
    duration_ms: float = 60_000.0,
    seed: int = 21,
) -> MessageCountResult:
    """Messages per second: all-pairs vs interest-gated tracing.

    In the tracing scheme only ``watchers_per_entity`` trackers care about
    each entity (the realistic case the paper's gating targets), so traces
    are published once and fanned out by the broker, while ping traffic is
    confined to the entity-broker link.
    """
    # analytic all-pairs rate (1 heartbeat per entity per second)
    allpairs_rate = allpairs_message_rate(population)

    dep = build_deployment(broker_ids=["b1", "b2"], seed=seed)
    policy = AdaptivePingPolicy(
        base_interval_ms=1_000.0, min_interval_ms=500.0,
        max_interval_ms=1_000.0, response_deadline_ms=400.0,
    )
    for manager in dep.managers.values():
        manager.ping_policy = policy

    entities = []
    for i in range(population):
        entity = dep.add_traced_entity(f"svc-{i}")
        dep.sim.call_later(200.0 * i, lambda e=entity: e.start("b1"))
        entities.append(entity)
    dep.sim.run(until=200.0 * population + 5_000.0)
    for i in range(population * watchers_per_entity):
        tracker = dep.add_tracker(
            f"w-{i}", interests=frozenset({InterestCategory.ALL_UPDATES})
        )
        tracker.connect("b2")
        tracker.track(f"svc-{i % population}")
    start = dep.sim.now + 5_000.0
    dep.sim.run(until=start)
    base_msgs = _tracing_message_count(dep)
    dep.sim.run(until=start + duration_ms)
    tracing_msgs = _tracing_message_count(dep) - base_msgs

    return MessageCountResult(
        population=population,
        watchers=population * watchers_per_entity,
        allpairs_msgs_per_s=allpairs_rate,
        tracing_msgs_per_s=tracing_msgs / (duration_ms / 1000.0),
    )


def _tracing_message_count(dep) -> int:
    counters = dep.monitor.counters()
    return (
        counters.get("messages.received", 0)
        + counters.get("messages.forwarded_in", 0)
        + counters.get("messages.delivered_client", 0)
    )


def run_message_count_sweep(
    populations: tuple[int, ...] = (10, 20, 40, 80),
    seed: int = 21,
) -> list[MessageCountResult]:
    """EXP-A1 sweep: message load vs population for both systems."""
    return [run_message_count_case(p, seed=seed) for p in populations]


# ---------------------------------------------------------------- EXP-A2


@dataclass(frozen=True, slots=True)
class GossipComparisonResult:
    """EXP-A2: gossip vs tracing detection latency and message cost."""

    population: int
    gossip_detect_first_ms: float
    gossip_detect_last_ms: float
    gossip_msgs_per_s: float
    tracing_detect_ms: float
    tracing_msgs_per_s: float


def run_gossip_comparison(
    population: int = 16,
    duration_ms: float = 60_000.0,
    seed: int = 22,
) -> GossipComparisonResult:
    """Crash one node/entity; compare detection latency and message load."""
    # --- gossip side ---------------------------------------------------------
    gossip_sim = Simulator()
    gossip = GossipFailureDetector(
        gossip_sim, population, gossip_interval_ms=1_000.0,
        fail_timeout_ms=8_000.0, fanout=2, seed=seed,
    )
    gossip.start()
    gossip_sim.run(until=20_000.0)
    crash_at = gossip_sim.now
    gossip.crash(0)
    gossip_sim.run(until=crash_at + duration_ms)
    gossip_msgs_per_s = gossip.messages_sent / (gossip_sim.now / 1000.0)
    times = gossip.detection_times_for(0)
    if not times:
        raise BenchmarkError("gossip never detected the crash")

    # --- tracing side ---------------------------------------------------------
    dep = build_deployment(
        broker_ids=["b1", "b2"],
        seed=seed,
        ping_policy=AdaptivePingPolicy(
            base_interval_ms=1_000.0, min_interval_ms=250.0,
            max_interval_ms=1_000.0, response_deadline_ms=400.0,
        ),
    )
    entity = dep.add_traced_entity("svc-0")
    watcher = dep.add_tracker(
        "w", interests=frozenset({InterestCategory.CHANGE_NOTIFICATIONS})
    )
    watcher.connect("b2")
    entity.start("b1")
    dep.sim.run(until=3_000.0)
    watcher.track("svc-0")
    dep.sim.run(until=20_000.0)
    trace_crash_at = dep.sim.now
    base_msgs = _tracing_message_count(dep)
    entity.crash()
    dep.sim.run(until=trace_crash_at + duration_ms)
    failed = watcher.traces_of_type(TraceType.FAILED)
    if not failed:
        raise BenchmarkError("tracing never detected the crash")
    tracing_msgs_per_s = (_tracing_message_count(dep) - base_msgs) / (
        duration_ms / 1000.0
    )

    return GossipComparisonResult(
        population=population,
        gossip_detect_first_ms=times[0] - crash_at,
        gossip_detect_last_ms=times[-1] - crash_at,
        gossip_msgs_per_s=gossip_msgs_per_s,
        tracing_detect_ms=failed[0].received_ms - trace_crash_at,
        tracing_msgs_per_s=tracing_msgs_per_s,
    )


# ---------------------------------------------------------------- EXP-A4


@dataclass(frozen=True, slots=True)
class GatingResult:
    """EXP-A3: publications suppressed/delivered with interest gating."""

    gated: bool
    published: int
    suppressed: int
    delivered: int


def run_interest_gating_ablation(
    entity_count: int = 8,
    duration_ms: float = 60_000.0,
    seed: int = 24,
) -> list[GatingResult]:
    """Characteristic #1 of the paper: traces are issued only when someone
    is interested.  Runs the same deployment (entities tracked by nobody)
    with gating on and off and counts publications."""
    results = []
    for gated in (True, False):
        dep = build_deployment(
            broker_ids=["b1", "b2"],
            seed=seed,
            ping_policy=AdaptivePingPolicy(
                base_interval_ms=1_000.0, min_interval_ms=500.0,
                max_interval_ms=1_000.0, response_deadline_ms=400.0,
            ),
        )
        for manager in dep.managers.values():
            manager.gate_by_interest = gated
        for i in range(entity_count):
            entity = dep.add_traced_entity(f"svc-{i}")
            dep.sim.call_later(250.0 * i, lambda e=entity: e.start("b1"))
        dep.sim.run(until=250.0 * entity_count + 5_000.0 + duration_ms)
        counters = dep.monitor.counters()
        results.append(
            GatingResult(
                gated=gated,
                published=counters.get("trace.published_total", 0),
                suppressed=counters.get("trace.suppressed_no_interest", 0),
                delivered=counters.get("messages.delivered_client", 0),
            )
        )
    return results


# ---------------------------------------------------------------- EXP-A5


@dataclass(frozen=True, slots=True)
class ThresholdResult:
    """EXP-A4: false suspicions/failures at one threshold setting."""

    suspicion_threshold: int
    failure_threshold: int
    loss_probability: float
    false_suspicions: int
    false_failures: int
    detection_ms_after_real_crash: float | None


def run_threshold_sensitivity(
    thresholds: tuple[tuple[int, int], ...] = ((1, 3), (3, 6), (6, 10)),
    loss_probability: float = 0.12,
    healthy_pings: int = 5_000,
    seed: int = 25,
) -> list[ThresholdResult]:
    """The §3.3 design choice, quantified: how many successive misses
    should raise suspicion?

    Monte Carlo directly over the detector machinery (PingHistory +
    FailureDetector + AdaptivePingPolicy): low thresholds detect a real
    crash fast but raise false suspicions on a lossy link, high
    thresholds are quiet but slow.  The healthy phase feeds
    ``healthy_pings`` Bernoulli-lossy ping rounds; the crash phase then
    measures virtual time until FAILED.
    """
    import random as _random

    from repro.tracing.failure import DetectorVerdict, FailureDetector
    from repro.tracing.pings import Ping, PingHistory, PingResponse

    policy = AdaptivePingPolicy(
        base_interval_ms=1_000.0, min_interval_ms=250.0,
        max_interval_ms=1_000.0, response_deadline_ms=400.0,
    )

    results = []
    for suspicion, failure in thresholds:
        rng = _random.Random(seed)
        history = PingHistory()
        detector = FailureDetector(
            suspicion_threshold=suspicion, failure_threshold=failure
        )
        now = 0.0
        interval = policy.base_interval_ms
        false_suspicions = 0
        false_failures = 0
        was_suspect = False
        for number in range(healthy_pings):
            ping = Ping(number, now)
            history.record_ping(ping)
            # both the ping and the response can be lost independently
            delivered = rng.random() >= loss_probability
            answered = delivered and rng.random() >= loss_probability
            if answered:
                history.record_response(
                    PingResponse(number, now, now + 2.0), now + 5.0
                )
            now += policy.response_deadline_ms
            verdict = detector.judge(
                history.consecutive_misses(now, policy.response_deadline_ms)
            )
            if verdict is DetectorVerdict.SUSPECT and not was_suspect:
                false_suspicions += 1
                was_suspect = True
            elif verdict is DetectorVerdict.ALIVE:
                was_suspect = False
            elif verdict is DetectorVerdict.FAILED:
                false_failures += 1
                detector.reset()  # keep sampling after a false failure
                was_suspect = False
            interval = policy.next_interval_ms(interval, history, now, now)
            now += max(0.0, interval - policy.response_deadline_ms)

        # crash phase: no responses ever again
        detector.reset()
        crash_at = now
        detection = None
        number = healthy_pings
        while detection is None and now < crash_at + 300_000.0:
            history.record_ping(Ping(number, now))
            number += 1
            now += policy.response_deadline_ms
            verdict = detector.judge(
                history.consecutive_misses(now, policy.response_deadline_ms)
            )
            if verdict is DetectorVerdict.FAILED:
                detection = now - crash_at
                break
            interval = policy.next_interval_ms(interval, history, now, now)
            now += max(0.0, interval - policy.response_deadline_ms)

        results.append(
            ThresholdResult(
                suspicion_threshold=suspicion,
                failure_threshold=failure,
                loss_probability=loss_probability,
                false_suspicions=false_suspicions,
                false_failures=false_failures,
                detection_ms_after_real_crash=detection,
            )
        )
    return results


# ---------------------------------------------------------------- EXP-A3


@dataclass(frozen=True, slots=True)
class AdaptivePingResult:
    """EXP-A5: detection latency and ping cost for one ping policy."""

    label: str
    detection_ms: float
    pings_sent: int


def run_adaptive_ping_ablation(seed: int = 23) -> list[AdaptivePingResult]:
    """Detection latency: adaptive interval shrink vs fixed interval."""
    cases = [
        (
            "adaptive (section 3.3)",
            AdaptivePingPolicy(
                base_interval_ms=2_000.0, min_interval_ms=200.0,
                max_interval_ms=2_000.0, response_deadline_ms=200.0,
            ),
        ),
        (
            "fixed interval",
            AdaptivePingPolicy(
                base_interval_ms=2_000.0, min_interval_ms=2_000.0,
                max_interval_ms=2_000.0, response_deadline_ms=200.0,
            ),
        ),
    ]
    results = []
    for label, policy in cases:
        dep = build_deployment(broker_ids=["b1"], seed=seed, ping_policy=policy)
        entity = dep.add_traced_entity("svc")
        watcher = dep.add_tracker(
            "w", interests=frozenset({InterestCategory.CHANGE_NOTIFICATIONS})
        )
        watcher.connect("b1")
        entity.start("b1")
        dep.sim.run(until=5_000.0)
        watcher.track("svc")
        dep.sim.run(until=10_000.0)
        pings_before = dep.monitor.count("trace.pings_sent")
        crash_at = dep.sim.now
        entity.crash()
        dep.sim.run(until=crash_at + 120_000.0)
        failed = watcher.traces_of_type(TraceType.FAILED)
        if not failed:
            raise BenchmarkError(f"{label}: failure never detected")
        results.append(
            AdaptivePingResult(
                label=label,
                detection_ms=failed[0].received_ms - crash_at,
                pings_sent=dep.monitor.count("trace.pings_sent") - pings_before,
            )
        )
    return results
