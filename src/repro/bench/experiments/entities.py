"""EXP-T4: trace routing overhead while increasing traced entities.

Table 4's setup: one broker, 30 trackers, and 10/20/30 traced entities —
entities and trackers all hosted on the same machine.  The colocated
crypto workload (every entity signs every trace it initiates; every
tracker verifies every trace it receives) contends for the shared CPU,
which is why both the mean and the deviation grow super-linearly with the
entity count.  Latencies are collected across *all* trackers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BenchmarkError
from repro.bench.routing_smoke import RoutingCounters
from repro.bench.topology import single_broker_colocated
from repro.tracing.failure import AdaptivePingPolicy
from repro.tracing.traces import TraceType
from repro.transport.base import TransportProfile
from repro.transport.tcp import TCP_CLUSTER
from repro.util.stats import StatSummary, summarize

#: Table 4 ran at a steady ping cadence; growth of the adaptive interval is
#: disabled so every entity keeps heart-beating at the base rate.
STEADY_POLICY = AdaptivePingPolicy(
    base_interval_ms=800.0,
    min_interval_ms=250.0,
    max_interval_ms=800.0,
    response_deadline_ms=2_500.0,
)


@dataclass(frozen=True, slots=True)
class EntitiesResult:
    """Table 4 point: trace overhead with N co-located traced entities."""

    entity_count: int
    tracker_count: int
    samples: int
    summary: StatSummary
    routing: RoutingCounters | None = None


def run_entities_case(
    entity_count: int,
    tracker_count: int = 30,
    profile: TransportProfile = TCP_CLUSTER,
    duration_ms: float = 60_000.0,
    seed: int = 13,
) -> EntitiesResult:
    """One Table 4 case: measure trace time at one entity count."""
    dep, entities, trackers = single_broker_colocated(
        entity_count,
        tracker_count=tracker_count,
        profile=profile,
        seed=seed,
        ping_policy=STEADY_POLICY,
    )
    # stagger the starts: registration itself is crypto-heavy (token
    # generation, sealing) and would otherwise pile a multi-second startup
    # transient onto the shared CPU
    for index, entity in enumerate(entities):
        dep.sim.call_later(300.0 * index, lambda e=entity: e.start("broker-0"))
    dep.sim.run(until=300.0 * len(entities) + 5_000.0)
    # trackers are assigned round-robin over the traced entities: the
    # tracker population is the constant (30), the traced-entity count is
    # the variable, exactly as in Table 4
    for index, tracker in enumerate(trackers):
        entity = entities[index % len(entities)]
        dep.sim.call_later(
            150.0 * index,
            lambda t=tracker, e=entity: t.track(str(e.entity_id)),
        )
    # warm-up: let interest propagate and the startup backlog drain fully
    warmup_end = dep.sim.now + 15_000.0
    dep.sim.run(until=warmup_end)
    for tracker in trackers:
        tracker.received.clear()
    dep.sim.run(until=warmup_end + duration_ms)

    latencies: list[float] = []
    for tracker in trackers:
        latencies.extend(tracker.latencies(TraceType.ALLS_WELL))
    if not latencies:
        raise BenchmarkError(f"no heartbeats with {entity_count} entities")
    return EntitiesResult(
        entity_count=entity_count,
        tracker_count=tracker_count,
        samples=len(latencies),
        summary=summarize(latencies),
        routing=RoutingCounters.capture(dep.metrics),
    )


def run_entities_sweep(
    counts: tuple[int, ...] = (10, 20, 30),
    tracker_count: int = 30,
    duration_ms: float = 60_000.0,
    seed: int = 13,
) -> list[EntitiesResult]:
    """Table 4 sweep across entity counts."""
    return [
        run_entities_case(
            count, tracker_count=tracker_count, duration_ms=duration_ms, seed=seed
        )
        for count in counts
    ]
