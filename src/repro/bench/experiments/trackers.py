"""EXP-F4: trace time while increasing the number of trackers (Figure 3/4).

The Figure 3 topology: the traced entity on one broker, trackers added
ten at a time (each group of ten on its own machine) on a second broker.
The measuring tracker is colocated with the entity; the reported series is
its mean ALLS_WELL latency as the tracker population grows.  The paper's
claim: "the trace time increases very slowly with an increase in the
number of trackers" — pub/sub fan-out does the heavy lifting, so the
per-tracker cost at the broker is a tiny delivery charge rather than a
full unicast + crypto pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BenchmarkError
from repro.bench.routing_smoke import RoutingCounters
from repro.bench.topology import star_with_trackers
from repro.tracing.traces import TraceType
from repro.transport.base import TransportProfile
from repro.transport.tcp import TCP_CLUSTER
from repro.util.stats import StatSummary, summarize


@dataclass(frozen=True, slots=True)
class TrackersResult:
    """Figure 4 point: trace time with N concurrently registered trackers."""

    tracker_count: int
    transport: str
    summary: StatSummary
    routing: RoutingCounters | None = None


def run_trackers_case(
    tracker_count: int,
    profile: TransportProfile = TCP_CLUSTER,
    duration_ms: float = 120_000.0,
    seed: int = 9,
) -> TrackersResult:
    """One Figure 4 case: measure trace time at one tracker count."""
    dep, entity, measuring, load_trackers = star_with_trackers(
        tracker_count, profile=profile, seed=seed
    )
    entity.start("broker-entity")
    dep.sim.run(until=3_000.0)
    measuring.track("traced-entity")
    for tracker in load_trackers:
        tracker.track("traced-entity")
    dep.sim.run(until=3_000.0 + duration_ms)

    latencies = measuring.latencies(TraceType.ALLS_WELL)
    if not latencies:
        raise BenchmarkError(f"no heartbeats with {tracker_count} trackers")
    return TrackersResult(
        tracker_count=tracker_count,
        transport=profile.name,
        summary=summarize(latencies),
        routing=RoutingCounters.capture(dep.metrics),
    )


def run_trackers_sweep(
    counts: tuple[int, ...] = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100),
    profile: TransportProfile = TCP_CLUSTER,
    duration_ms: float = 120_000.0,
    seed: int = 9,
) -> list[TrackersResult]:
    """Figure 4 sweep across tracker counts."""
    return [
        run_trackers_case(count, profile=profile, duration_ms=duration_ms, seed=seed)
        for count in counts
    ]


def growth_ratio(results: list[TrackersResult]) -> float:
    """Mean latency at the largest population over the smallest."""
    ordered = sorted(results, key=lambda r: r.tracker_count)
    return ordered[-1].summary.mean / ordered[0].summary.mean
