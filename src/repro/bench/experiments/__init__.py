"""Experiment runners, one module per paper artifact."""
