"""EXP-T3-hops / Figure 2 / EXP-F5: trace routing overhead vs hop count.

Runs the Figure 1 chain, lets the entity register and the measuring
tracker subscribe, and collects the end-to-end latency of every ALLS_WELL
trace (entity ping-response stamp to tracker receipt — valid because both
live on the same machine, exactly the paper's measurement trick).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BenchmarkError, ConfigurationError
from repro.bench.topology import hops_chain
from repro.transport.base import TransportProfile
from repro.transport.tcp import TCP_CLUSTER
from repro.transport.udp import UDP_CLUSTER
from repro.util.stats import StatSummary

#: Virtual time allotted for startup (registration, token, interest).
SETUP_MS = 3_000.0


@dataclass(frozen=True, slots=True)
class HopsResult:
    """Table 3 point: routing overhead over one broker-hop count."""

    hops: int
    transport: str
    secured: bool
    symmetric_channel: bool
    summary: StatSummary


def run_hops_case(
    hops: int,
    profile: TransportProfile = TCP_CLUSTER,
    secured: bool = False,
    use_symmetric_channel: bool = False,
    duration_ms: float = 120_000.0,
    seed: int = 7,
) -> HopsResult:
    """One (hops, transport, mode) cell of Table 3."""
    dep, entity, tracker = hops_chain(
        hops,
        profile=profile,
        seed=seed,
        secured=secured,
        use_symmetric_channel=use_symmetric_channel,
    )
    entity.start("broker-0")
    dep.sim.run(until=SETUP_MS)
    tracker.track("traced-entity")
    dep.sim.run(until=SETUP_MS + duration_ms)

    # the deployment's only tracker feeds this instrument, so the
    # registry histogram is exactly the per-tracker sample set
    heartbeats = dep.metrics.histogram("tracker.trace.latency_ms.alls_well")
    if heartbeats.count == 0:
        raise BenchmarkError(
            f"no heartbeats received for hops={hops} {profile.name} "
            f"secured={secured}"
        )
    return HopsResult(
        hops=hops,
        transport=profile.name,
        secured=secured,
        symmetric_channel=use_symmetric_channel,
        summary=heartbeats.summary(),
    )


def run_hops_sweep(
    hops_list: tuple[int, ...] = (2, 3, 4, 5, 6),
    transports: tuple[TransportProfile, ...] = (TCP_CLUSTER, UDP_CLUSTER),
    modes: tuple[bool, ...] = (False, True),  # secured?
    duration_ms: float = 120_000.0,
    seed: int = 7,
) -> list[HopsResult]:
    """The full Table 3 macro sweep (Figure 2's series)."""
    results = []
    for profile in transports:
        for secured in modes:
            for hops in hops_list:
                results.append(
                    run_hops_case(
                        hops,
                        profile=profile,
                        secured=secured,
                        duration_ms=duration_ms,
                        seed=seed,
                    )
                )
    return results


def run_signing_opt_sweep(
    hops_list: tuple[int, ...] = (2, 3, 4, 5, 6),
    profile: TransportProfile = TCP_CLUSTER,
    duration_ms: float = 120_000.0,
    seed: int = 7,
) -> list[HopsResult]:
    """EXP-F5: per-message signing vs the symmetric-channel optimization."""
    results = []
    for use_channel in (False, True):
        for hops in hops_list:
            results.append(
                run_hops_case(
                    hops,
                    profile=profile,
                    use_symmetric_channel=use_channel,
                    duration_ms=duration_ms,
                    seed=seed,
                )
            )
    return results


def slope_per_hop(results: list[HopsResult]) -> float:
    """Least-squares slope of mean latency vs hop count."""
    points = [(r.hops, r.summary.mean) for r in results]
    n = len(points)
    if n < 2:
        raise ConfigurationError("need at least two hop counts")
    sum_x = sum(x for x, _ in points)
    sum_y = sum(y for _, y in points)
    sum_xx = sum(x * x for x, _ in points)
    sum_xy = sum(x * y for x, y in points)
    return (n * sum_xy - sum_x * sum_y) / (n * sum_xx - sum_x * sum_x)
