"""EXP-T3-keydist: secure trace-key distribution overhead (section 5.1).

Measures the full distribution round for a freshly arrived tracker: the
broker's (token-carrying) GUAGE_INTEREST publication, the tracker's signed
interest response with its credentials and response topic, the broker's
certificate check and sealing of the trace key, the routed key payload,
and the tracker's RSA unsealing.

Each sample uses a fresh tracker (the key is distributed once per
tracker), arriving at staggered times so samples are independent; gauges
fire periodically, so the wait for the next gauge contributes the large
dispersion the paper reports (σ ≈ 37-40 ms).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BenchmarkError
from repro.bench.topology import hops_chain
from repro.transport.base import TransportProfile
from repro.transport.tcp import TCP_CLUSTER
from repro.util.stats import StatSummary


@dataclass(frozen=True, slots=True)
class KeyDistResult:
    """Table 3 point: key-distribution round time at one hop count."""

    hops: int
    samples: int
    summary: StatSummary


def run_keydist_case(
    hops: int,
    tracker_count: int = 20,
    gauge_interval_ms: float = 120.0,
    arrival_spacing_ms: float = 1_733.0,
    profile: TransportProfile = TCP_CLUSTER,
    seed: int = 11,
) -> KeyDistResult:
    """Key-distribution latency at one hop count."""
    dep, entity, _measuring = hops_chain(
        hops,
        profile=profile,
        seed=seed,
        secured=True,
        gauge_interval_ms=gauge_interval_ms,
    )
    last_broker = f"broker-{hops - 2}"
    entity.start("broker-0")
    dep.sim.run(until=3_000.0)

    trackers = []
    for i in range(tracker_count):
        tracker = dep.add_tracker(
            f"keydist-tracker-{i}",
            machine_name=f"keydist-host-{i % 3}",
            proactive_interest=False,  # wait for a gauge, like the paper
        )
        tracker.connect(last_broker, transport_profile=profile)
        trackers.append(tracker)
        dep.sim.run(until=dep.sim.now + arrival_spacing_ms)
        tracker.track(entity.entity_id)
        dep.sim.run(until=dep.sim.now + arrival_spacing_ms)

    dep.sim.run(until=dep.sim.now + 10_000.0)

    # every tracker shares the deployment registry and contributes at most
    # one gauge-to-key round, so this histogram is the sample set
    rounds = dep.metrics.histogram("tracker.keydist.latency_ms")
    if rounds.count < tracker_count // 2:
        raise BenchmarkError(
            f"only {rounds.count}/{tracker_count} trackers were keyed at "
            f"hops={hops}"
        )
    return KeyDistResult(hops=hops, samples=rounds.count, summary=rounds.summary())


def run_keydist_sweep(
    hops_list: tuple[int, ...] = (2, 3, 4),
    tracker_count: int = 20,
    seed: int = 11,
) -> list[KeyDistResult]:
    """Table 3 key-distribution sweep across hop counts."""
    return [
        run_keydist_case(hops, tracker_count=tracker_count, seed=seed)
        for hops in hops_list
    ]
