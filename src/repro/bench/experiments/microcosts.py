"""EXP-T3-micro: per-operation security costs.

Two complementary measurements:

* **Calibrated virtual costs** — what the simulator charges (sampled from
  the cost model), reported against the paper's Table 3 micro rows.
  These agree by construction; the table verifies the calibration wiring.
* **Actual pure-Python costs** — wall-clock times of our real RSA/AES
  primitives, reported for transparency (they do *not* match 2003 Java
  on Xeons, nor do they need to: virtual time is what the macro
  benchmarks consume).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.crypto.aes import generate_aes_key
from repro.crypto.costmodel import CryptoCostModel, CryptoOp
from repro.crypto.keys import SymmetricKey
from repro.crypto.rsa import generate_rsa_keypair
from repro.obs import MetricsRegistry
from repro.util.stats import StatSummary, summarize

#: Mapping of Table 3 micro rows to cost-model operations.
MICRO_ROWS: list[tuple[str, CryptoOp]] = [
    ("Token Generation and Signing", CryptoOp.TOKEN_GENERATE_AND_SIGN),
    ("Verifying Authorization Token", CryptoOp.TOKEN_VERIFY),
    ("Encrypting Trace Message", CryptoOp.TRACE_ENCRYPT),
    ("Decrypting Trace Message", CryptoOp.TRACE_DECRYPT),
    ("Sign Trace Message", CryptoOp.TRACE_SIGN),
    ("Verify Signature in Trace Message", CryptoOp.TRACE_VERIFY),
    ("Sign Encrypted Trace Message", CryptoOp.TRACE_SIGN_ENCRYPTED),
    ("Verify Signature in Encrypted Trace Message", CryptoOp.TRACE_VERIFY_ENCRYPTED),
]


@dataclass(frozen=True, slots=True)
class MicroResult:
    """Table 3 micro-benchmark: one calibrated crypto operation cost."""

    label: str
    op: CryptoOp
    calibrated: StatSummary


def run_calibrated_micro(samples: int = 500, seed: int = 3) -> list[MicroResult]:
    """Sample every Table 3 micro operation from the calibrated model.

    The samples flow through a metrics-bound model into ``crypto.ms.*``
    histograms; the reported statistics are read back from the registry.
    """
    registry = MetricsRegistry()
    model = CryptoCostModel(seed=seed, metrics=registry)
    results = []
    for label, op in MICRO_ROWS:
        for _ in range(samples):
            model.sample_ms(op)
        results.append(
            MicroResult(
                label=label,
                op=op,
                calibrated=registry.histogram(f"crypto.ms.{op.value}").summary(),
            )
        )
    return results


def measure_real_primitives(iterations: int = 20, seed: int = 4) -> dict[str, StatSummary]:
    """Wall-clock costs of the actual pure-Python primitives (ms)."""
    rng = random.Random(seed)
    keypair = generate_rsa_keypair(rng)
    sym = SymmetricKey(generate_aes_key(rng, 192))
    message = bytes(rng.randrange(256) for _ in range(512))

    def timed(fn) -> list[float]:
        times = []
        for _ in range(iterations):
            # This helper exists to measure *real* host time: the calibration
            # source the virtual cost model is fitted against.
            start = time.perf_counter()  # repro: noqa[DET01]
            fn()
            times.append((time.perf_counter() - start) * 1000.0)  # repro: noqa[DET01]
        return times

    signature = keypair.private.sign(message)
    ciphertext = sym.encrypt(message, rng)
    results = {
        "rsa_sign": summarize(timed(lambda: keypair.private.sign(message))),
        "rsa_verify": summarize(
            timed(lambda: keypair.public.verify(message, signature))
        ),
        "aes_encrypt": summarize(timed(lambda: sym.encrypt(message, rng))),
        "aes_decrypt": summarize(timed(lambda: sym.decrypt(ciphertext))),
    }
    return results
