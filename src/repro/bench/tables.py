"""Paper-vs-measured table rendering for benchmark output."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.stats import StatSummary


@dataclass(frozen=True, slots=True)
class ComparisonRow:
    """One table row comparing the paper's value with ours."""

    label: str
    paper_mean: float | None
    paper_std: float | None
    measured: StatSummary

    @property
    def delta_mean(self) -> float | None:
        """Measured-minus-paper mean, or None without a paper value."""
        if self.paper_mean is None:
            return None
        return self.measured.mean - self.paper_mean


def render_comparison(title: str, rows: list[ComparisonRow]) -> str:
    """A fixed-width paper-vs-measured table."""
    lines = [
        title,
        "=" * len(title),
        f"{'Case':<34s} {'paper mean':>11s} {'paper sd':>9s} "
        f"{'ours mean':>10s} {'ours sd':>8s} {'ours se':>8s} {'delta':>8s}",
        "-" * 93,
    ]
    for row in rows:
        paper_mean = f"{row.paper_mean:.2f}" if row.paper_mean is not None else "-"
        paper_std = f"{row.paper_std:.2f}" if row.paper_std is not None else "-"
        delta = f"{row.delta_mean:+.2f}" if row.delta_mean is not None else "-"
        lines.append(
            f"{row.label:<34s} {paper_mean:>11s} {paper_std:>9s} "
            f"{row.measured.mean:>10.2f} {row.measured.std_dev:>8.2f} "
            f"{row.measured.std_error:>8.2f} {delta:>8s}"
        )
    return "\n".join(lines)


def render_series(title: str, xlabel: str, series: dict[str, list[tuple[float, float]]]) -> str:
    """Figure-style output: one column per named series of (x, y) points."""
    xs = sorted({x for points in series.values() for x, _ in points})
    names = sorted(series)
    lines = [
        title,
        "=" * len(title),
        f"{xlabel:>10s} " + " ".join(f"{name:>16s}" for name in names),
        "-" * (11 + 17 * len(names)),
    ]
    lookup = {
        name: {x: y for x, y in points} for name, points in series.items()
    }
    for x in xs:
        cells = []
        for name in names:
            y = lookup[name].get(x)
            cells.append(f"{y:>16.2f}" if y is not None else f"{'-':>16s}")
        lines.append(f"{x:>10.0f} " + " ".join(cells))
    return "\n".join(lines)
