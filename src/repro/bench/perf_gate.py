"""The perf-regression gate CI runs over wire-codec snapshots.

The ``perf-gate`` job replays the ping-heavy scenario under each codec and
compares the resulting metrics snapshots against the committed baselines
(``benchmarks/results/wire_codec_before.json`` for ``json``,
``wire_codec_after.json`` for ``compact``).  Any *increase* beyond a small
tolerance in a gated metric fails the job; improvements always pass.

Gated metrics (the hot-path cost triangle):

* ``transport.bytes.sent`` — total wire bytes (the codec win itself),
* ``broker.fanout`` — forwarding work per publish (histogram sum),
* ``crypto.ms.token_verify`` — verification cost the token cache already
  bought down (histogram sum; a regression here means the cache stopped
  biting).

The scenario is bit-deterministic per seed, so the tolerance only absorbs
legitimate cross-version float formatting, not nondeterminism — a real
regression overshoots 2% immediately because every frame pays it.
"""

from __future__ import annotations

from repro.obs.diff import diff_snapshots, load_snapshot

#: Counters gated on their final value.
GATED_COUNTERS = ("transport.bytes.sent",)

#: Histograms gated on their reproducible ``sum`` aggregate.
GATED_HISTOGRAMS = ("broker.fanout", "crypto.ms.token_verify")

#: Relative headroom before an increase counts as a regression.
DEFAULT_TOLERANCE_PCT = 2.0


def check_regressions(
    baseline: dict,
    current: dict,
    tolerance_pct: float = DEFAULT_TOLERANCE_PCT,
) -> list[str]:
    """Human-readable findings for every gated metric that regressed.

    ``baseline`` / ``current`` are snapshot dicts (as produced by
    :meth:`MetricsRegistry.snapshot` or normalized by
    :func:`repro.obs.diff.load_snapshot`).  Empty list means the gate
    passes.  Only increases fail — a metric falling below baseline is the
    point of the exercise.
    """
    findings: list[str] = []
    diff = diff_snapshots(baseline, current)

    def check(name: str, entry: dict, what: str) -> None:
        before, after = entry["before"], entry["after"]
        if before <= 0:
            if after > 0:
                findings.append(
                    f"{name} {what} appeared: baseline 0, now {after:g}"
                )
            return
        limit = before * (1.0 + tolerance_pct / 100.0)
        if after > limit:
            pct = 100.0 * (after - before) / before
            findings.append(
                f"{name} {what} regressed {pct:+.2f}% "
                f"({before:g} -> {after:g}, tolerance {tolerance_pct:g}%)"
            )

    for name in GATED_COUNTERS:
        check(name, diff["counters"][name], "counter")
    for name in GATED_HISTOGRAMS:
        check(name, diff["histograms"][name]["sum"], "histogram sum")
    return findings


def run_gate(
    baseline_path: str,
    codec: str,
    tolerance_pct: float = DEFAULT_TOLERANCE_PCT,
    seed: int = 42,
) -> list[str]:
    """Replay ping-heavy under ``codec`` and gate it against a baseline file."""
    from repro.bench.hotpath import run_ping_heavy

    baseline = load_snapshot(baseline_path)
    current = run_ping_heavy(seed=seed, codec=codec)
    return check_regressions(baseline, current, tolerance_pct)


def main(argv: list[str] | None = None) -> int:
    """CLI used by the ``perf-gate`` CI job.

    ``python -m repro.bench.perf_gate BASELINE --codec NAME`` exits 1 and
    prints findings when the live run regresses past tolerance.
    """
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed snapshot JSON to gate against")
    parser.add_argument("--codec", default="json", help="wire codec to run under")
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE_PCT,
        help="allowed regression in percent (default %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    findings = run_gate(
        args.baseline, args.codec, tolerance_pct=args.tolerance, seed=args.seed
    )
    for finding in findings:
        print(f"PERF-GATE: {finding}")
    if not findings:
        print(
            f"perf gate clean: codec={args.codec} vs {args.baseline} "
            f"(tolerance {args.tolerance:g}%)"
        )
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
