"""Minimal dependency-free SVG line charts for the reproduced figures.

The benchmark harness renders each figure's series to an ``.svg`` next to
its ``.txt`` table, so the repository can regenerate visual analogues of
the paper's Figures 2, 4 and 5 without any plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from xml.sax.saxutils import escape

from repro.errors import ValidationError

#: Line colors cycled across series.
PALETTE = ["#1f6feb", "#d29922", "#2da44e", "#cf222e", "#8250df", "#bf3989"]


@dataclass(frozen=True, slots=True)
class Series:
    """One named line: a list of (x, y) points."""

    name: str
    points: tuple[tuple[float, float], ...]


def _nice_ticks(low: float, high: float, count: int = 5) -> list[float]:
    """Roughly `count` round tick values spanning [low, high]."""
    if high <= low:
        high = low + 1.0
    raw_step = (high - low) / max(count - 1, 1)
    magnitude = 10 ** int(f"{raw_step:e}".split("e")[1])
    for multiple in (1, 2, 5, 10):
        step = multiple * magnitude
        if step >= raw_step:
            break
    start = step * int(low / step)
    ticks = []
    value = start
    while value <= high + step * 0.5:
        if value >= low - step * 0.5:
            ticks.append(round(value, 10))
        value += step
    return ticks


def line_chart(
    title: str,
    xlabel: str,
    ylabel: str,
    series: list[Series],
    width: int = 640,
    height: int = 400,
    y_from_zero: bool = False,
) -> str:
    """Render a complete SVG document for the given series."""
    if not series or not any(s.points for s in series):
        raise ValidationError("need at least one non-empty series")

    margin_left, margin_right = 64, 160
    margin_top, margin_bottom = 48, 56
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    xs = [x for s in series for x, _ in s.points]
    ys = [y for s in series for _, y in s.points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = (0.0 if y_from_zero else min(ys)), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    # breathing room on y
    pad = 0.08 * (y_hi - y_lo)
    y_lo = y_lo if y_from_zero else y_lo - pad
    y_hi = y_hi + pad

    def sx(x: float) -> float:
        return margin_left + plot_w * (x - x_lo) / (x_hi - x_lo)

    def sy(y: float) -> float:
        return margin_top + plot_h * (1.0 - (y - y_lo) / (y_hi - y_lo))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{width / 2}" y="24" text-anchor="middle" '
        f'font-size="15" font-weight="bold">{escape(title)}</text>',
    ]

    # axes + grid
    for tick in _nice_ticks(y_lo, y_hi):
        if not y_lo <= tick <= y_hi:
            continue
        y = sy(tick)
        parts.append(
            f'<line x1="{margin_left}" y1="{y:.1f}" '
            f'x2="{margin_left + plot_w}" y2="{y:.1f}" '
            f'stroke="#dddddd" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{margin_left - 8}" y="{y + 4:.1f}" '
            f'text-anchor="end">{tick:g}</text>'
        )
    for tick in _nice_ticks(x_lo, x_hi):
        if not x_lo <= tick <= x_hi:
            continue
        x = sx(tick)
        parts.append(
            f'<line x1="{x:.1f}" y1="{margin_top + plot_h}" '
            f'x2="{x:.1f}" y2="{margin_top + plot_h + 5}" '
            f'stroke="#333333"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{margin_top + plot_h + 20}" '
            f'text-anchor="middle">{tick:g}</text>'
        )
    parts.append(
        f'<rect x="{margin_left}" y="{margin_top}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#333333"/>'
    )
    parts.append(
        f'<text x="{margin_left + plot_w / 2}" y="{height - 12}" '
        f'text-anchor="middle">{escape(xlabel)}</text>'
    )
    parts.append(
        f'<text x="18" y="{margin_top + plot_h / 2}" text-anchor="middle" '
        f'transform="rotate(-90 18 {margin_top + plot_h / 2})">'
        f"{escape(ylabel)}</text>"
    )

    # series lines + legend
    for index, s in enumerate(sorted(series, key=lambda s: s.name)):
        if not s.points:
            continue
        color = PALETTE[index % len(PALETTE)]
        ordered = sorted(s.points)
        path = " ".join(
            f"{'M' if i == 0 else 'L'}{sx(x):.1f},{sy(y):.1f}"
            for i, (x, y) in enumerate(ordered)
        )
        parts.append(
            f'<path d="{path}" fill="none" stroke="{color}" stroke-width="2"/>'
        )
        for x, y in ordered:
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="3" '
                f'fill="{color}"/>'
            )
        legend_y = margin_top + 16 * index
        legend_x = margin_left + plot_w + 12
        parts.append(
            f'<line x1="{legend_x}" y1="{legend_y}" x2="{legend_x + 18}" '
            f'y2="{legend_y}" stroke="{color}" stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{legend_x + 24}" y="{legend_y + 4}">'
            f"{escape(s.name)}</text>"
        )

    parts.append("</svg>")
    return "\n".join(parts)


def series_dict_to_svg(
    title: str,
    xlabel: str,
    ylabel: str,
    data: dict[str, list[tuple[float, float]]],
    **kwargs,
) -> str:
    """Convenience: plot the same dict shape render_series consumes."""
    return line_chart(
        title,
        xlabel,
        ylabel,
        [Series(name, tuple(points)) for name, points in data.items()],
        **kwargs,
    )
