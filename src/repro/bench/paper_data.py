"""The paper's reported numbers, transcribed for side-by-side comparison.

All values in milliseconds, from Table 3 and Table 4 of the paper.
Figures 2, 4 and 5 plot the same/similar series; Figure 2 is exactly the
Table 3 macro rows.
"""

from __future__ import annotations

# --- Table 3: trace routing overhead, mean (std dev) by hops ------------------

TABLE3_TCP_AUTH = {
    2: (72.68, 4.14), 3: (79.45, 4.08), 4: (86.40, 4.90),
    5: (93.99, 4.33), 6: (100.81, 4.36),
}
TABLE3_TCP_AUTH_SEC = {
    2: (90.29, 4.41), 3: (98.12, 5.63), 4: (105.06, 6.17),
    5: (110.89, 7.38), 6: (116.21, 4.30),
}
TABLE3_UDP_AUTH = {
    2: (70.24, 3.45), 3: (76.47, 3.95), 4: (84.02, 4.00),
    5: (89.78, 3.69), 6: (96.79, 4.61),
}
TABLE3_UDP_AUTH_SEC = {
    2: (88.86, 4.52), 3: (95.19, 5.59), 4: (101.76, 5.13),
    5: (107.99, 5.81), 6: (114.33, 4.53),
}

#: (mean, std dev) of the per-operation security costs.
TABLE3_MICRO = {
    "Token Generation and Signing": (27.19, 2.99),
    "Verifying Authorization Token": (2.01, 1.04),
    "Encrypting Trace Message": (0.25, 0.73),
    "Decrypting Trace Message": (1.15, 0.68),
    "Sign Trace Message": (24.51, 1.81),
    "Verify Signature in Trace Message": (6.83, 1.81),
    "Sign Encrypted Trace Message": (24.00, 1.37),
    "Verify Signature in Encrypted Trace Message": (5.31, 1.09),
}

#: Key distribution overhead by hops: (mean, std dev).
TABLE3_KEYDIST = {
    2: (81.53, 36.59), 3: (114.16, 39.29), 4: (140.79, 40.12),
}

# --- Table 4: trace routing overhead by number of traced entities -------------

TABLE4_ENTITIES = {
    10: (75.64, 19.79), 20: (85.43, 30.53), 30: (118.77, 54.98),
}

# --- Qualitative claims used as acceptance bands -------------------------------

#: Per-hop slope of the Table 3 macro rows (~7 ms/hop across all variants).
EXPECTED_HOP_SLOPE_MS = (5.0, 9.0)

#: The auth+security premium over auth-only (~17.6 ms in Table 3).
EXPECTED_SECURITY_GAP_MS = (10.0, 26.0)

#: UDP saves a few ms over TCP at every hop count.
EXPECTED_UDP_SAVING_MS = (0.5, 6.0)

#: Figure 5: the section 6.3 optimization saves roughly sign - encrypt on
#: the entity side plus verify - decrypt at the broker (~30 ms).
EXPECTED_SYMMETRIC_OPT_SAVING_MS = (12.0, 40.0)
