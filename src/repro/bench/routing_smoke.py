"""Deterministic routing smoke scenario for CI regression checks.

Runs the quickstart deployment (three chained brokers, one traced entity,
one tracker) with a detach phase appended: mid-run the tracker's client is
detached from its broker, after which the entity keeps publishing traces
for the rest of the simulation.  With a correct interest lifecycle the
detach retracts the tracker's interest fabric-wide, so the tail of the run
must forward nothing toward the now-empty broker.

The routing-relevant counters of the final metrics snapshot form a small
JSON document that CI compares against the committed seed snapshot
(``benchmarks/results/routing_seed.json``).  Any increase in
``broker.msgs.unroutable`` or ``broker.interest.stale_forwards`` — or any
drift in delivery counts — fails the bench-smoke job.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

#: Counters whose values define the routing contract.  Missing counters
#: read as zero, so a regression that *introduces* e.g. stale forwards is
#: caught even though the seed snapshot records a 0 for it.
ROUTING_COUNTERS = (
    "broker.msgs.ingress",
    "broker.msgs.forwarded_out",
    "broker.msgs.delivered",
    "broker.msgs.unroutable",
    "broker.interest.announced",
    "broker.interest.retracted",
    "broker.interest.stale_forwards",
)

#: Per-topic-family delivery counters are collected by prefix; every name
#: under it must match the seed exactly (unchanged delivery is the
#: correctness bar for any routing optimization).
DELIVERED_PREFIX = "broker.delivered."

#: Counters that must never exceed the seed value (waste / bug signals).
MUST_NOT_REGRESS = (
    "broker.msgs.unroutable",
    "broker.interest.stale_forwards",
)

#: Counters that must match the seed exactly (routing determinism).
MUST_MATCH = ("broker.msgs.delivered",)


@dataclass(frozen=True, slots=True)
class RoutingCounters:
    """Fabric-wide routing counters captured at the end of a bench case.

    Benchmarks attach one of these to their result records so a run's
    report shows *how much* forwarding work produced the measured
    latencies — the evidence trail for routing optimizations.
    """

    ingress: int
    forwarded_out: int
    delivered: int
    unroutable: int
    stale_forwards: int

    @classmethod
    def capture(cls, registry) -> "RoutingCounters":
        """Read the routing-regression counter set from a registry."""
        return cls(
            ingress=registry.counter_value("broker.msgs.ingress"),
            forwarded_out=registry.counter_value("broker.msgs.forwarded_out"),
            delivered=registry.counter_value("broker.msgs.delivered"),
            unroutable=registry.counter_value("broker.msgs.unroutable"),
            stale_forwards=registry.counter_value(
                "broker.interest.stale_forwards"
            ),
        )

    def render(self) -> str:
        """Single-line counter summary for logs and seed diffs."""
        return (
            f"ingress={self.ingress} forwarded_out={self.forwarded_out} "
            f"delivered={self.delivered} unroutable={self.unroutable} "
            f"stale_forwards={self.stale_forwards}"
        )


def run_routing_smoke(
    seed: int = 42,
    duration_ms: float = 30_000.0,
    detach_at_ms: float = 20_000.0,
    legacy_hot_paths: bool = False,
    federation: bool = False,
) -> dict:
    """Run the scenario and return the routing counters as a snapshot dict.

    ``legacy_hot_paths`` disables the token-verification cache, ping
    coalescing, the TDN discovery cache (docs/PERFORMANCE.md) and the
    per-direction duplex-link jitter streams, reproducing the
    pre-optimization wire behaviour pinned by
    ``benchmarks/results/routing_seed_legacy.json``.  The codec is pinned
    to ``json`` so committed seeds stay valid under the CI codec matrix.

    ``federation`` runs the same scenario on the summarized-interest
    control plane; with this scenario's handful of patterns the
    summaries stay exact, so every routing counter must match the
    verbatim default exactly (the equivalence suite asserts that).  The
    pattern-entry gauge alone reads lower, since federated peers no
    longer mirror remote interest into their local indexes.
    """
    from repro import build_deployment

    dep = build_deployment(
        broker_ids=["b1", "b2", "b3"],
        seed=seed,
        token_cache=not legacy_hot_paths,
        ping_coalescing=not legacy_hot_paths,
        tdn_query_cache=not legacy_hot_paths,
        per_direction_link_rng=not legacy_hot_paths,
        federation=federation,
        codec="json",
    )
    entity = dep.add_traced_entity("demo-service")
    tracker = dep.add_tracker("demo-tracker")
    tracker.connect("b3")
    entity.start("b1")
    dep.sim.run(until=3_000)
    tracker.track("demo-service")
    dep.sim.run(until=detach_at_ms)

    # Detach phase: the tracker's broker loses its last subscriber for the
    # entity's trace topics; interest must be retracted fabric-wide and the
    # remaining publishes must not be forwarded toward b3.
    dep.network.broker("b3").detach_client("demo-tracker")
    dep.sim.run(until=duration_ms)

    registry = dep.metrics
    counters = {name: registry.counter_value(name) for name in ROUTING_COUNTERS}
    all_counters = registry.snapshot()["counters"]
    for name in sorted(all_counters):
        if name.startswith(DELIVERED_PREFIX):
            counters[name] = all_counters[name]
    return {
        "scenario": "quickstart+detach",
        "seed": seed,
        "duration_ms": duration_ms,
        "detach_at_ms": detach_at_ms,
        "counters": counters,
        "interest_patterns_gauge": registry.gauge_value("broker.interest.patterns"),
    }


def compare_to_seed(snapshot: dict, seed_snapshot: dict) -> list[str]:
    """Return human-readable regression findings; empty when clean."""
    findings: list[str] = []
    live = snapshot["counters"]
    seed = seed_snapshot["counters"]
    for name in MUST_NOT_REGRESS:
        if live.get(name, 0) > seed.get(name, 0):
            findings.append(
                f"{name} regressed: {live.get(name, 0)} > seed {seed.get(name, 0)}"
            )
    delivered = {
        name
        for name in (*live, *seed)
        if name.startswith(DELIVERED_PREFIX)
    }
    for name in (*MUST_MATCH, *sorted(delivered)):
        if live.get(name, 0) != seed.get(name, 0):
            findings.append(
                f"{name} drifted: {live.get(name, 0)} != seed {seed.get(name, 0)}"
            )
    return findings


def render_snapshot(snapshot: dict) -> str:
    """Stable JSON form used for the committed seed file and CI dumps."""
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
