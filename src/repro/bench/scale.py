"""Deterministic fabric-scale scenario: many brokers, 10⁴–10⁶ interests.

The scalability claim (§4) is about fabrics far past the paper's
three-broker chain: tens of brokers tracking the availability of
10⁵–10⁶ entities.  This module builds that fabric shape — ``brokers``
brokers in a ring, one trace-topic subscription per simulated entity
spread round-robin across them — publishes a seeded sample of trace
events from far-side brokers, and snapshots the *deterministic*
counters: control-plane floods, summary updates, delivery totals,
digest false positives, pattern/shard gauges.

Everything here is reproducible bit-for-bit per seed (RandomStreams +
blake2b digests, no wall clock), which is what lets CI gate a reduced
point against the committed ``benchmarks/results/scale_seed.json``.
The *measured* curve — RSS and per-event wall time per point, one
subprocess per point — lives in ``benchmarks/bench_scale.py``, which
drives :func:`run_scale_point` and commits
``benchmarks/results/scale_curve.{txt,json}``.

The headline numbers the committed curve must show (docs/ROADMAP.md):
at 64 brokers / 100 000 entities the federated control plane issues
``control.floods`` within a small multiple of the *broker* count — the
verbatim plane would issue one flood per pattern, plus an
O(patterns × brokers) interest table no host could hold.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ConfigurationError
from repro.messaging.broker_network import BrokerNetwork
from repro.messaging.message import Message, reset_message_ids
from repro.messaging.topics import Topic
from repro.sim.engine import Simulator

#: The committed CI smoke point (kept small: seconds, tens of MB).
SMOKE_BROKERS = 8
SMOKE_ENTITIES = 5_000
SMOKE_EVENTS = 500

#: Counters pinned exactly by the scale seed snapshot.
SCALE_COUNTERS = (
    "broker.msgs.delivered",
    "broker.msgs.forwarded_out",
    "broker.msgs.unroutable",
    "broker.interest.stale_forwards",
    "fed.forwards.false_positive",
    "fed.summary.updates",
    "fed.summary.replays",
)


def entity_topic(index: int) -> str:
    """The trace topic entity ``index`` is tracked on."""
    return f"Traces/{index:06x}/Change"


def run_scale_point(
    brokers: int = SMOKE_BROKERS,
    entities: int = SMOKE_ENTITIES,
    events: int = SMOKE_EVENTS,
    seed: int = 42,
    federation: bool = True,
) -> dict:
    """Run one fabric-scale point and return its deterministic snapshot.

    ``brokers`` ring-connected brokers; ``entities`` per-entity trace
    subscriptions spread round-robin; ``events`` publishes to seeded
    entity choices, each injected at the broker diametrically opposite
    the subscriber (worst-case hop count on a ring).  ``federation``
    selects the summarized control plane; the verbatim plane is only
    tractable at small points — its interest table is
    O(entities × brokers) — so the curve runs it for comparison where it
    fits and federated-only beyond.
    """
    if brokers < 2:
        raise ConfigurationError(f"need at least 2 brokers, got {brokers}")
    reset_message_ids()
    sim = Simulator()
    network = BrokerNetwork(sim, seed=seed, federation=federation)
    ids = [f"b{i:03d}" for i in range(brokers)]
    for broker_id in ids:
        network.add_broker(broker_id)
    for i in range(brokers):
        network.connect_brokers(ids[i], ids[(i + 1) % brokers])

    received = [0]

    def on_trace(message: Message) -> None:
        received[0] += 1

    for index in range(entities):
        network.broker(ids[index % brokers]).subscribe_local(
            entity_topic(index), on_trace
        )

    rng = network.streams.stream("scale.publish")
    offset = brokers // 2
    for event in range(events):
        index = rng.randrange(entities)
        origin = ids[(index + offset) % brokers]
        network.broker(origin).publish_from_broker(
            Message(
                topic=Topic(entity_topic(index)),
                body=event,
                source=origin,
            )
        )
    sim.run()

    metrics = network.monitor.metrics
    counters = {name: metrics.counter_value(name) for name in SCALE_COUNTERS}
    digest_summaries = 0
    if network.federation is not None:
        digest_summaries = sum(
            1 for summary in network.federation.iter_summaries() if not summary.exact
        )
    return {
        "scenario": "fabric-scale",
        "brokers": brokers,
        "entities": entities,
        "events": events,
        "seed": seed,
        "federation": federation,
        "counters": counters,
        "received": received[0],
        "control_floods": network.monitor.count("control.floods"),
        "interest_patterns_gauge": metrics.gauge_value("broker.interest.patterns"),
        "fed_patterns_gauge": metrics.gauge_value("fed.interest.patterns"),
        "shards_gauge": metrics.gauge_value("broker.interest.shards"),
        "digest_summaries": digest_summaries,
    }


def compare_to_seed(snapshot: dict, seed_snapshot: dict) -> list[str]:
    """Exact-match comparison against the committed scale seed.

    Scale runs are bit-identical per seed (same reasoning as the chaos
    gate): any drift is either nondeterminism or a behaviour change that
    needs a deliberate seed refresh.
    """
    findings: list[str] = []
    for field in (
        "scenario",
        "brokers",
        "entities",
        "events",
        "seed",
        "federation",
        "received",
        "control_floods",
        "interest_patterns_gauge",
        "fed_patterns_gauge",
        "shards_gauge",
        "digest_summaries",
    ):
        if snapshot.get(field) != seed_snapshot.get(field):
            findings.append(
                f"{field} drifted: {snapshot.get(field)!r} != "
                f"seed {seed_snapshot.get(field)!r}"
            )
    live, seed = snapshot.get("counters", {}), seed_snapshot.get("counters", {})
    for name in sorted({*live, *seed}):
        if live.get(name, 0) != seed.get(name, 0):
            findings.append(
                f"{name} drifted: {live.get(name, 0)} != seed {seed.get(name, 0)}"
            )
    return findings


def render_snapshot(snapshot: dict) -> str:
    """Stable JSON form used for the committed seed file and CI dumps."""
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"


def main(argv: list[str] | None = None) -> int:
    """CLI for one scale point: CI's ``scale-smoke`` gate.

    Runs the point, optionally compares the snapshot exactly against a
    committed seed file, and optionally enforces a peak-RSS ceiling
    (``resource.ru_maxrss``) so interest-table memory can never silently
    regress past what the fabric is budgeted.
    """
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--brokers", type=int, default=SMOKE_BROKERS)
    parser.add_argument("--entities", type=int, default=SMOKE_ENTITIES)
    parser.add_argument("--events", type=int, default=SMOKE_EVENTS)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--verbatim",
        action="store_true",
        help="run the legacy per-pattern control plane instead of federation",
    )
    parser.add_argument(
        "--compare",
        metavar="SEED_JSON",
        help="committed seed snapshot to compare against (exact match)",
    )
    parser.add_argument(
        "--max-rss-mb",
        type=float,
        default=None,
        help="fail if peak RSS exceeds this many MiB",
    )
    args = parser.parse_args(argv)

    snapshot = run_scale_point(
        brokers=args.brokers,
        entities=args.entities,
        events=args.events,
        seed=args.seed,
        federation=not args.verbatim,
    )
    sys.stdout.write(render_snapshot(snapshot))

    status = 0
    if args.compare:
        with open(args.compare, encoding="utf-8") as handle:
            seed_snapshot = json.load(handle)
        findings = compare_to_seed(snapshot, seed_snapshot)
        for finding in findings:
            print(f"SCALE-SMOKE: {finding}", file=sys.stderr)
        if findings:
            status = 1
        else:
            print(f"scale smoke clean vs {args.compare}", file=sys.stderr)
    if args.max_rss_mb is not None:
        import resource

        rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        rss_mb = rss_kb / 1024.0
        print(f"peak RSS: {rss_mb:.1f} MiB (ceiling {args.max_rss_mb})", file=sys.stderr)
        if rss_mb > args.max_rss_mb:
            print(
                f"SCALE-SMOKE: peak RSS {rss_mb:.1f} MiB exceeds "
                f"ceiling {args.max_rss_mb} MiB",
                file=sys.stderr,
            )
            status = 1
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
