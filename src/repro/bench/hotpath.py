"""Ping-heavy co-located scenario for the hot-path benchmarks.

The worst case for per-ping overhead: many traced entities share one host
machine behind one broker, so every ping interval the tracker's broker
verifies the same authorization token repeatedly and sends a burst of
near-identical ping frames down the same wire.  This is the scenario
``benchmarks/bench_token_cache.py`` runs twice — once with
``legacy_hot_paths=True`` (no token cache, no ping coalescing) and once
with the optimized defaults — to produce the committed before/after
snapshots under ``benchmarks/results/`` (docs/PERFORMANCE.md).

Determinism matters here exactly as in the chaos scenarios: message ids
ride on the wire, so :func:`run_ping_heavy` rewinds the process-global id
counter before building the deployment.
"""

from __future__ import annotations

from repro.messaging.message import reset_message_ids
from repro.tracing.failure import AdaptivePingPolicy

#: Fast cadence so a 60 s virtual run packs in many verification-bearing
#: traces and ping rounds per entity.
HOTPATH_PING_POLICY = AdaptivePingPolicy(
    base_interval_ms=500.0,
    min_interval_ms=125.0,
    max_interval_ms=1_000.0,
    response_deadline_ms=200.0,
)

#: Every traced entity lives on this one machine — the co-location that
#: makes ping coalescing bite.
EDGE_HOST = "edge-host"

DEFAULT_ENTITY_COUNT = 12


def run_ping_heavy(
    seed: int = 42,
    duration_ms: float = 60_000.0,
    entity_count: int = DEFAULT_ENTITY_COUNT,
    legacy_hot_paths: bool = False,
    codec: str = "json",
) -> dict:
    """Run the co-located ping-heavy scenario; returns the full snapshot.

    ``legacy_hot_paths`` disables the token-verification cache, ping
    coalescing and the TDN discovery cache so the same seed reproduces the
    pre-optimization cost profile (the "before" side of a perf diff).

    ``codec`` selects the wire codec explicitly (never the environment):
    the perf-gate CI job runs this scenario once per codec and diffs the
    snapshots, so the codec must be a function argument, not ambient state.
    """
    from repro import build_deployment

    reset_message_ids()
    dep = build_deployment(
        broker_ids=["b1", "b2", "b3"],
        seed=seed,
        ping_policy=HOTPATH_PING_POLICY,
        token_cache=not legacy_hot_paths,
        ping_coalescing=not legacy_hot_paths,
        tdn_query_cache=not legacy_hot_paths,
        per_direction_link_rng=not legacy_hot_paths,
        codec=codec,
    )
    entities = [
        dep.add_traced_entity(f"svc-{index:02d}", machine_name=EDGE_HOST)
        for index in range(entity_count)
    ]
    tracker = dep.add_tracker("watch")
    tracker.connect("b3")
    for entity in entities:
        entity.start("b1")
    dep.sim.run(until=3_000)
    for entity in entities:
        tracker.track(str(entity.entity_id))
    dep.sim.run(until=duration_ms)
    return dep.snapshot()
