"""Multi-seed replication of experiments.

A single seeded run gives one deterministic estimate; replicating across
seeds quantifies how much of a measured effect is luck.  ``replicate``
runs a case function once per seed and reports the distribution of the
per-seed means with a confidence interval (Student-t, since replication
counts are small).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ConfigurationError, StatsError
from repro.util.stats import RunningStats, StatSummary

#: Two-sided 95% Student-t critical values by degrees of freedom.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    15: 2.131, 20: 2.086, 30: 2.042,
}


def t_critical_95(dof: int) -> float:
    """Two-sided 95% t critical value (interpolates the standard table)."""
    if dof < 1:
        raise StatsError("degrees of freedom must be >= 1")
    if dof in _T95:
        return _T95[dof]
    keys = sorted(_T95)
    if dof > keys[-1]:
        return 1.96
    lower = max(k for k in keys if k < dof)
    upper = min(k for k in keys if k > dof)
    frac = (dof - lower) / (upper - lower)
    return _T95[lower] * (1 - frac) + _T95[upper] * frac


@dataclass(frozen=True, slots=True)
class ReplicatedResult:
    """Replication summary for one experimental case."""

    label: str
    seeds: tuple[int, ...]
    per_seed_means: tuple[float, ...]
    mean_of_means: float
    ci95_half_width: float

    @property
    def ci95(self) -> tuple[float, float]:
        """(low, high) bounds of the 95% confidence interval."""
        return (
            self.mean_of_means - self.ci95_half_width,
            self.mean_of_means + self.ci95_half_width,
        )

    def contains(self, value: float) -> bool:
        """Is ``value`` inside the 95% confidence interval?"""
        low, high = self.ci95
        return low <= value <= high

    def describe(self) -> str:
        """One-line human summary: mean, CI bounds, seed count."""
        low, high = self.ci95
        return (
            f"{self.label}: {self.mean_of_means:.2f} ms "
            f"(95% CI [{low:.2f}, {high:.2f}], {len(self.seeds)} seeds)"
        )


def replicate(
    label: str,
    case: Callable[[int], StatSummary],
    seeds: Sequence[int],
) -> ReplicatedResult:
    """Run ``case(seed)`` per seed; summarize the distribution of means."""
    if len(seeds) < 2:
        raise ConfigurationError("replication needs at least two seeds")
    means = RunningStats()
    per_seed = []
    for seed in seeds:
        summary = case(seed)
        per_seed.append(summary.mean)
        means.add(summary.mean)
    half_width = t_critical_95(len(seeds) - 1) * means.std_error
    return ReplicatedResult(
        label=label,
        seeds=tuple(seeds),
        per_seed_means=tuple(per_seed),
        mean_of_means=means.mean,
        ci95_half_width=half_width,
    )
