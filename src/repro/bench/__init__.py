"""Benchmark harness reproducing every table and figure of the paper.

Each experiment module exposes a ``run_*`` function returning structured
rows plus helpers that render paper-vs-measured tables.  The pytest
benchmarks under ``benchmarks/`` are thin wrappers over these.

Experiment index (see DESIGN.md section 3):

====================  =========================================
EXP-T3-hops           Table 3 trace routing overhead + Figure 2
EXP-T3-micro          Table 3 per-operation security costs
EXP-T3-keydist        Table 3 key distribution overhead
EXP-F4                Figure 4 increasing trackers
EXP-F5                Figure 5 signing-cost optimization
EXP-T4                Table 4 increasing traced entities
EXP-A1                N x (N-1) message-count ablation
EXP-A2                Gossip failure-detector baseline
EXP-A3                Adaptive vs fixed ping ablation
====================  =========================================
"""

from repro.bench.replication import ReplicatedResult, replicate
from repro.bench.tables import ComparisonRow, render_comparison, render_series
from repro.bench.topology import hops_chain, star_with_trackers, single_broker_colocated

__all__ = [
    "ComparisonRow",
    "render_comparison",
    "render_series",
    "hops_chain",
    "star_with_trackers",
    "single_broker_colocated",
    "ReplicatedResult",
    "replicate",
]
