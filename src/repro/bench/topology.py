"""Benchmark topologies (Figures 1 and 3, Table 4 setup).

Hop-count convention: the paper counts the entity-to-broker and
broker-to-tracker legs, so "H hops" means a chain of (H-1) brokers with
the traced entity attached to the first and the measuring tracker to the
last.  "In all cases, to obviate the need for clock synchronizations, the
traced entity and the measuring tracker were hosted on the same machine"
(section 6.1) — these builders colocate them the same way.
"""

from __future__ import annotations

from repro.deployment import Deployment, build_deployment

from repro.errors import ConfigurationError
from repro.tracing.entity import TracedEntity
from repro.tracing.failure import AdaptivePingPolicy
from repro.tracing.interest import ALL_CATEGORIES, InterestCategory
from repro.tracing.tracker import Tracker
from repro.transport.base import TransportProfile
from repro.transport.tcp import TCP_CLUSTER

#: Shared machine hosting the entity and the measuring tracker.
MEASURE_HOST = "measure-host"


def hops_chain(
    hops: int,
    profile: TransportProfile = TCP_CLUSTER,
    seed: int = 0,
    secured: bool = False,
    use_symmetric_channel: bool = False,
    ping_policy: AdaptivePingPolicy | None = None,
    gauge_interval_ms: float = 60_000.0,
) -> tuple[Deployment, TracedEntity, Tracker]:
    """Figure 1: entity -> broker chain -> measuring tracker, ``hops`` hops."""
    if hops < 2:
        raise ConfigurationError("the paper's topology needs at least 2 hops")
    broker_ids = [f"broker-{i}" for i in range(hops - 1)]
    dep = build_deployment(
        broker_ids=broker_ids,
        topology="chain",
        seed=seed,
        profile=profile,
        ping_policy=ping_policy,
        gauge_interval_ms=gauge_interval_ms,
    )
    entity = dep.add_traced_entity(
        "traced-entity",
        machine_name=MEASURE_HOST,
        secured=secured,
        use_symmetric_channel=use_symmetric_channel,
    )
    tracker = dep.add_tracker("measuring-tracker", machine_name=MEASURE_HOST)
    tracker.connect(broker_ids[-1], transport_profile=profile)
    return dep, entity, tracker


def star_with_trackers(
    tracker_count: int,
    trackers_per_machine: int = 10,
    profile: TransportProfile = TCP_CLUSTER,
    seed: int = 0,
    interests: frozenset[InterestCategory] = ALL_CATEGORIES,
) -> tuple[Deployment, TracedEntity, Tracker, list[Tracker]]:
    """Figure 3: the entity's broker plus a tracker broker.

    Trackers are added in groups of ``trackers_per_machine`` hosted on
    distinct machines (the paper introduced "10 trackers at a time", each
    group on a different machine).  Returns the measuring tracker
    (colocated with the entity) plus the load trackers.
    """
    if tracker_count < 0:
        raise ConfigurationError("tracker_count must be non-negative")
    dep = build_deployment(
        broker_ids=["broker-entity", "broker-trackers"],
        topology="chain",
        seed=seed,
        profile=profile,
    )
    entity = dep.add_traced_entity("traced-entity", machine_name=MEASURE_HOST)
    measuring = dep.add_tracker("measuring-tracker", machine_name=MEASURE_HOST)
    measuring.connect("broker-trackers", transport_profile=profile)

    load_trackers: list[Tracker] = []
    for i in range(tracker_count):
        group = i // trackers_per_machine
        tracker = dep.add_tracker(
            f"tracker-{i}",
            machine_name=f"tracker-host-{group}",
            interests=interests,
        )
        tracker.connect("broker-trackers", transport_profile=profile)
        load_trackers.append(tracker)
    return dep, entity, measuring, load_trackers


def single_broker_colocated(
    entity_count: int,
    tracker_count: int = 30,
    profile: TransportProfile = TCP_CLUSTER,
    seed: int = 0,
    interests: frozenset[InterestCategory] = frozenset(
        {InterestCategory.ALL_UPDATES}
    ),
    ping_policy: AdaptivePingPolicy | None = None,
) -> tuple[Deployment, list[TracedEntity], list[Tracker]]:
    """Table 4 setup: 1 broker, 30 trackers, N entities, all colocated.

    "To cope with clock skews and to avoid synchronization problems, we
    had the traced entities and the trackers reside on the same machine.
    However, this configuration also results in lowering the performance
    figures since the security operations ... are compute intensive"
    (section 6.4) — the shared machine's CPU is exactly what produces the
    growing means and deviations.
    """
    dep = build_deployment(
        broker_ids=["broker-0"],
        topology="none",
        seed=seed,
        profile=profile,
        ping_policy=ping_policy,
    )
    # One effective CPU for the crypto-heavy signing path: the paper notes
    # that the trace-generation security operations "performed by every
    # traced entity for every trace" are what depressed this experiment's
    # figures — sixty JVM-era processes sharing one host serialize far
    # harder than an idealized 4-way Xeon.  The trackers are passive
    # receivers here (per-trace verification cost is measured separately
    # in Table 3); what Table 4 isolates is the entity-side contention.
    dep.network.machine(MEASURE_HOST, cpu_capacity=1)
    entities = [
        dep.add_traced_entity(f"svc-{i}", machine_name=MEASURE_HOST)
        for i in range(entity_count)
    ]
    trackers = []
    for i in range(tracker_count):
        tracker = dep.add_tracker(
            f"tracker-{i}",
            machine_name=MEASURE_HOST,
            interests=interests,
            verify_traces=False,
        )
        tracker.connect("broker-0", transport_profile=profile)
        trackers.append(tracker)
    return dep, entities, trackers
