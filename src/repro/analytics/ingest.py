"""Ingestion adapters: journal records and trace streams into the store.

Two feeds populate an :class:`~repro.analytics.store.AnalyticsStore`:

* :class:`TraceIngestor` hooks a tracker's ``on_trace`` callback (the
  same chaining seam the availability archive and forecaster use) and
  persists every verified trace as a ``trace.observed`` event *while the
  run executes* — appends consume no virtual time and draw no random
  numbers, so an instrumented run stays bit-identical to a bare one
  (``tests/analytics`` pins this against the chaos seed).
* :func:`ingest_journal` copies the deployment's
  :class:`~repro.obs.journal.EventJournal` after the run, preserving
  each record's kind so audit evidence (``session.created``,
  ``fault.failover``, ``terminated``, ``key.distributed`` …) survives in
  the persistent log.

``Deployment.attach_analytics`` threads the trace feed through every
current and future tracker; ``repro.faults.run_scenario`` accepts an
``analytics_store=`` and finalizes both feeds plus run metadata.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analytics.availability import TRACE_OBSERVED
from repro.analytics.store import AnalyticsStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.journal import EventJournal
    from repro.tracing.tracker import ReceivedTrace, Tracker

#: Instrument names (documented in docs/OBSERVABILITY.md).
_JOURNAL_RECORDS = "analytics.ingest.journal_records"
_TRACES = "analytics.ingest.traces"


class TraceIngestor:
    """Persist every verified trace a tracker receives as a store event."""

    def __init__(self, store: AnalyticsStore, tracker: "Tracker") -> None:
        self.store = store
        self.tracker = tracker
        self._previous_hook = tracker.on_trace
        tracker.on_trace = self._observe

    def _observe(self, trace: "ReceivedTrace") -> None:
        self.store.append(
            trace.received_ms,
            TRACE_OBSERVED,
            entity=trace.entity_id,
            value=trace.latency_ms,
            trace_type=trace.trace_type.value,
            tracker=self.tracker.tracker_id,
        )
        metrics = self.store._metrics
        if metrics is not None:
            metrics.counter(_TRACES).inc()
        if self._previous_hook is not None:
            self._previous_hook(trace)


def ingest_journal(store: AnalyticsStore, journal: "EventJournal") -> int:
    """Copy every journal record into the store, preserving kinds.

    The journal's typed columns map onto the store's: ``principal``
    becomes the event's ``entity`` unless the record carries an explicit
    ``entity`` field, fault targets become the ``broker`` column when
    they name one, and ``recovery_ms`` is promoted to the numeric
    ``value``.  Returns the number of records copied.
    """
    copied = 0
    for record in journal:
        fields = dict(record.fields)
        entity = fields.pop("entity", None) or record.principal
        broker = fields.pop("broker", None)
        value = fields.get("recovery_ms")
        if record.topic is not None:
            fields["topic"] = record.topic
        if record.size_bytes is not None:
            fields["size_bytes"] = record.size_bytes
        store.append(
            record.time_ms,
            record.kind,
            entity=(str(entity) if entity is not None else None),
            broker=(str(broker) if broker is not None else None),
            value=(float(value) if value is not None else None),
            **fields,
        )
        copied += 1
    metrics = store._metrics
    if metrics is not None:
        metrics.counter(_JOURNAL_RECORDS).inc(copied)
    return copied
