"""Persistent, queryable availability analytics (docs/ANALYTICS.md).

The package turns one run's transient observability — the in-flight
:class:`~repro.obs.journal.EventJournal` and the trackers' verified
trace streams — into a durable, queryable record:

* :mod:`repro.analytics.store` — the append-only event log over a
  pluggable backend (:mod:`repro.analytics.backends`: in-memory for
  tests, sqlite for persistence), with JSON snapshot round-tripping.
* :mod:`repro.analytics.ingest` — the feeds: a tracker ``on_trace``
  adapter and a post-run journal copy.
* :mod:`repro.analytics.availability` — the up/down interval algebra
  shared by the live archive and the offline reports.
* :mod:`repro.analytics.reports` — SLO-style queries (uptime %, outage
  histograms, MTTR percentiles) rendered as text/JSON/markdown by
  ``repro analytics report``.
* :mod:`repro.analytics.audit` — the audit-completeness gate: every
  counted state mutation must have matching journal evidence.
"""

from repro.analytics.audit import (
    DEFAULT_RULES,
    AuditFinding,
    EvidenceRule,
    assert_audit_complete,
    audit_deployment,
)
from repro.analytics.availability import (
    DOWN_MARKERS,
    SUSPECT_MARKER,
    TRACE_OBSERVED,
    UP_MARKERS,
    EntityTimeline,
    Interval,
    build_timelines,
)
from repro.analytics.backends import (
    AnalyticsBackend,
    MemoryBackend,
    SqliteBackend,
    backend_names,
    create_backend,
    ingest_events,
    register_backend,
)
from repro.analytics.events import AnalyticsEvent
from repro.analytics.ingest import TraceIngestor, ingest_journal
from repro.analytics.reports import (
    build_report,
    render_report_json,
    render_report_markdown,
    render_report_text,
)
from repro.analytics.store import AnalyticsStore

__all__ = [
    "DEFAULT_RULES",
    "DOWN_MARKERS",
    "SUSPECT_MARKER",
    "TRACE_OBSERVED",
    "UP_MARKERS",
    "AnalyticsBackend",
    "AnalyticsEvent",
    "AnalyticsStore",
    "AuditFinding",
    "EntityTimeline",
    "EvidenceRule",
    "Interval",
    "MemoryBackend",
    "SqliteBackend",
    "TraceIngestor",
    "assert_audit_complete",
    "audit_deployment",
    "backend_names",
    "build_report",
    "build_timelines",
    "create_backend",
    "ingest_events",
    "ingest_journal",
    "register_backend",
    "render_report_json",
    "render_report_markdown",
    "render_report_text",
]
