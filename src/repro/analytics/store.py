"""The availability analytics store: an append-only, queryable event log.

The store is the system-of-record tier above the in-flight
:class:`~repro.obs.journal.EventJournal`: journal records and verified
trace observations are *ingested* into it (``repro.analytics.ingest``),
after which SLO-style questions — uptime per entity, outage histograms,
MTTR percentiles — are answered by pure queries over the persisted log
(``repro.analytics.reports``), never by re-running the simulation.

Storage is pluggable (:mod:`repro.analytics.backends`): the in-memory
backend serves tests and short scripts, sqlite persists across processes,
and both answer every query identically.  ``export_json`` /
``from_json`` round-trip the whole store (events + run metadata), which
is how the committed seed snapshot under ``benchmarks/results/analytics/``
is produced and replayed byte-for-byte in CI.
"""

from __future__ import annotations

import json
import pathlib
from typing import Mapping

from repro.errors import AnalyticsError
from repro.obs.registry import MetricsRegistry

from repro.analytics.backends import AnalyticsBackend, MemoryBackend, create_backend
from repro.analytics.events import AnalyticsEvent

#: Instrument names the store registers when bound to a registry
#: (documented in docs/OBSERVABILITY.md).
_EVENTS_INGESTED = "analytics.events.ingested"
_STORE_EVENTS = "analytics.store.events"


class AnalyticsStore:
    """Append-only analytics event log over a pluggable backend."""

    def __init__(
        self,
        backend: AnalyticsBackend | str | None = None,
        metrics: MetricsRegistry | None = None,
        **backend_kwargs,
    ) -> None:
        if isinstance(backend, str):
            backend = create_backend(backend, **backend_kwargs)
        elif backend_kwargs:
            raise AnalyticsError(
                "backend keyword arguments need a backend *name*, "
                f"got backend={backend!r}"
            )
        self.backend: AnalyticsBackend = (
            backend if backend is not None else MemoryBackend()
        )
        self.meta: dict = {}
        self._metrics = metrics

    # ------------------------------------------------------------------ writes

    def append(
        self,
        time_ms: float,
        kind: str,
        entity: str | None = None,
        broker: str | None = None,
        value: float | None = None,
        **fields,
    ) -> AnalyticsEvent:
        """Append one event at virtual time ``time_ms`` and return it."""
        event = self.backend.append(
            time_ms, kind, entity=entity, broker=broker, value=value, fields=fields
        )
        if self._metrics is not None:
            self._metrics.counter(_EVENTS_INGESTED).inc()
            self._metrics.gauge(_STORE_EVENTS).set(self.backend.count())
        return event

    def set_meta(self, **meta) -> None:
        """Merge run metadata (scenario name, seed, horizon) into the store."""
        self.meta.update(meta)

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """Attach a registry so appends count into ``analytics.*``."""
        self._metrics = metrics

    # ------------------------------------------------------------------ queries

    def events(
        self,
        kind: str | None = None,
        entity: str | None = None,
        since_ms: float | None = None,
        until_ms: float | None = None,
    ) -> list[AnalyticsEvent]:
        """Events matching every given filter, in ``seq`` order."""
        return self.backend.events(
            kind=kind, entity=entity, since_ms=since_ms, until_ms=until_ms
        )

    def kinds(self) -> dict[str, int]:
        """Event kind -> occurrence count."""
        return self.backend.kinds()

    def entities(self) -> list[str]:
        """Distinct entities mentioned by any event, sorted."""
        return self.backend.entities()

    def count(self) -> int:
        """Total stored events."""
        return self.backend.count()

    def summary(self) -> dict:
        """Small JSON block for ``Deployment.snapshot()`` embedding."""
        return {
            "backend": self.backend.name,
            "events": self.count(),
            "kinds": self.kinds(),
        }

    # ------------------------------------------------------------------- export

    def export_json(self, indent: int = 2) -> str:
        """The whole store (meta + events) as deterministic JSON."""
        return json.dumps(
            {
                "meta": dict(self.meta),
                "events": [event.to_dict() for event in self.events()],
            },
            indent=indent,
            sort_keys=True,
            default=str,
        )

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write :meth:`export_json` (plus trailing newline) to ``path``."""
        path = pathlib.Path(path)
        path.write_text(self.export_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def from_json(
        cls, text: str, backend: AnalyticsBackend | str | None = None
    ) -> "AnalyticsStore":
        """Rebuild a store from an :meth:`export_json` document."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise AnalyticsError(f"invalid analytics snapshot: {exc}") from None
        if not isinstance(data, Mapping) or "events" not in data:
            raise AnalyticsError(
                "analytics snapshot must be an object with an 'events' array"
            )
        store = cls(backend=backend)
        store.meta = dict(data.get("meta", {}))
        for row in data["events"]:
            event = AnalyticsEvent.from_dict(row)
            store.backend.append(
                event.time_ms,
                event.kind,
                entity=event.entity,
                broker=event.broker,
                value=event.value,
                fields=dict(event.fields),
            )
        return store

    @classmethod
    def load(
        cls,
        path: str | pathlib.Path,
        backend: AnalyticsBackend | str | None = None,
    ) -> "AnalyticsStore":
        """Read a snapshot file written by :meth:`save`."""
        return cls.from_json(
            pathlib.Path(path).read_text(encoding="utf-8"), backend=backend
        )

    def close(self) -> None:
        """Close the underlying backend."""
        self.backend.close()
