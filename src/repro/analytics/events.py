"""The analytics event row: one immutable record in the availability store.

Where a :class:`~repro.obs.journal.JournalRecord` narrates a protocol
moment for an operator, an :class:`AnalyticsEvent` is the *persisted*
form of that moment: sequence-numbered by the backend that stored it, with
the columns availability queries group by (``entity``, ``broker``) and an
optional numeric ``value`` (a latency, a recovery time) promoted out of
the free-form ``fields`` so backends can index and aggregate without
parsing JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True, slots=True)
class AnalyticsEvent:
    """One stored analytics event; ``seq`` is assigned by the backend."""

    seq: int
    time_ms: float
    kind: str
    entity: str | None = None
    broker: str | None = None
    value: float | None = None
    fields: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready row form; :meth:`from_dict` round-trips it."""
        out: dict = {"seq": self.seq, "time_ms": self.time_ms, "kind": self.kind}
        if self.entity is not None:
            out["entity"] = self.entity
        if self.broker is not None:
            out["broker"] = self.broker
        if self.value is not None:
            out["value"] = self.value
        if self.fields:
            out["fields"] = dict(self.fields)
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "AnalyticsEvent":
        """Rebuild an event from its :meth:`to_dict` form."""
        return cls(
            seq=int(data["seq"]),
            time_ms=float(data["time_ms"]),
            kind=str(data["kind"]),
            entity=data.get("entity"),
            broker=data.get("broker"),
            value=(float(data["value"]) if data.get("value") is not None else None),
            fields=dict(data.get("fields", {})),
        )
