"""Availability timelines: interval algebra shared by archive and reports.

This module is the single home of the up/down semantics the paper's
trace types imply (formerly private to ``repro.tracing.archive``): an
entity is **up** from JOIN (or first READY) until FAILED, DISCONNECT,
SHUTDOWN or REVERTING_TO_SILENT_MODE; FAILURE_SUSPICION marks it
*suspect* but not yet down; RECOVERING counts as up.  A later JOIN/READY
after a down-marker opens a new interval.

Timelines are built from persisted ``trace.observed`` analytics events
(:func:`build_timelines`), so every consumer — the live
:class:`~repro.tracing.archive.AvailabilityArchive`, the SLO report
queries, the CLI — derives identical numbers from the same stored log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.analytics.events import AnalyticsEvent

#: Store event kind for one verified trace observation.
TRACE_OBSERVED = "trace.observed"

#: Trace-type values that open an availability interval.
UP_MARKERS = frozenset({"JOIN", "READY", "RECOVERING", "ALLS_WELL"})
#: Trace-type values that close one.
DOWN_MARKERS = frozenset(
    {"FAILED", "DISCONNECT", "SHUTDOWN", "REVERTING_TO_SILENT_MODE"}
)
#: The suspect-but-not-down marker.
SUSPECT_MARKER = "FAILURE_SUSPICION"


@dataclass(frozen=True, slots=True)
class Interval:
    """One closed-or-open availability interval."""

    start_ms: float
    end_ms: float | None  # None while still up

    def duration_ms(self, now_ms: float) -> float:
        """Length of the interval, clamping an open end to ``now_ms``."""
        end = self.end_ms if self.end_ms is not None else now_ms
        return max(0.0, end - self.start_ms)

    def contains(self, t_ms: float, now_ms: float) -> bool:
        """Whether ``t_ms`` falls inside the (possibly open) interval."""
        end = self.end_ms if self.end_ms is not None else now_ms
        return self.start_ms <= t_ms < end


@dataclass(slots=True)
class EntityTimeline:
    """Availability state and history for one entity."""

    entity_id: str
    intervals: list[Interval] = field(default_factory=list)
    suspect_since_ms: float | None = None
    last_trace_ms: float | None = None
    down_count: int = 0

    @property
    def up(self) -> bool:
        """Whether the most recent interval is still open."""
        return bool(self.intervals) and self.intervals[-1].end_ms is None

    def _open(self, t_ms: float) -> None:
        if not self.up:
            self.intervals.append(Interval(start_ms=t_ms, end_ms=None))

    def _close(self, t_ms: float) -> None:
        if self.up:
            last = self.intervals[-1]
            self.intervals[-1] = Interval(last.start_ms, t_ms)
            self.down_count += 1

    def apply(self, trace_type_value: str, t_ms: float) -> None:
        """Advance the timeline with one trace-type marker at ``t_ms``."""
        self.last_trace_ms = t_ms
        if trace_type_value in UP_MARKERS:
            self._open(t_ms)
            self.suspect_since_ms = None
        elif trace_type_value == SUSPECT_MARKER:
            if self.suspect_since_ms is None:
                self.suspect_since_ms = t_ms
        elif trace_type_value in DOWN_MARKERS:
            self._close(t_ms)
            self.suspect_since_ms = None

    # ------------------------------------------------------------- statistics

    def uptime_ms(self, now_ms: float) -> float:
        """Total up time across all intervals (open end clamps to now)."""
        return sum(i.duration_ms(now_ms) for i in self.intervals)

    def availability(self, now_ms: float) -> float:
        """Fraction of time up since first observed, in [0, 1]."""
        if not self.intervals:
            return 0.0
        observed = now_ms - self.intervals[0].start_ms
        if observed <= 0:
            return 1.0 if self.up else 0.0
        return min(1.0, self.uptime_ms(now_ms) / observed)

    def was_up_at(self, t_ms: float, now_ms: float) -> bool:
        """Whether any interval covered ``t_ms``."""
        return any(i.contains(t_ms, now_ms) for i in self.intervals)

    def outage_durations_ms(self) -> list[float]:
        """Gap lengths between an interval's end and the next one's start."""
        return [
            later.start_ms - earlier.end_ms
            for earlier, later in zip(self.intervals, self.intervals[1:], strict=False)
            if earlier.end_ms is not None
        ]

    def mean_time_to_recover_ms(self) -> float | None:
        """Mean outage duration, or ``None`` with no completed outage."""
        gaps = self.outage_durations_ms()
        return sum(gaps) / len(gaps) if gaps else None


def build_timelines(
    events: Iterable[AnalyticsEvent],
    timelines: dict[str, EntityTimeline] | None = None,
) -> dict[str, EntityTimeline]:
    """Fold ``trace.observed`` events into per-entity timelines.

    Pass an existing ``timelines`` dict to extend incrementally (the
    archive's live view does this); events of other kinds and events with
    no entity are ignored.  Events are applied in (time, seq) order so
    the result is independent of backend iteration details.
    """
    timelines = timelines if timelines is not None else {}
    relevant = [
        e for e in events if e.kind == TRACE_OBSERVED and e.entity is not None
    ]
    relevant.sort(key=lambda e: (e.time_ms, e.seq))
    for event in relevant:
        timeline = timelines.get(event.entity)
        if timeline is None:
            timeline = EntityTimeline(entity_id=event.entity)
            timelines[event.entity] = timeline
        timeline.apply(str(event.fields.get("trace_type", "")), event.time_ms)
    return timelines
