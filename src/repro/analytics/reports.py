"""SLO-style report queries over the availability analytics store.

:func:`build_report` turns a store into one JSON-serializable report
dict — uptime %, outage counts and durations per entity, an outage
histogram, MTTR percentiles from persisted ``recovery.completed``
evidence (the ``trace.recovery_ms`` values), per-broker fault exposure,
and the evidence-kind inventory the audit gate checks.  The renderers
(:func:`render_report_text`, :func:`render_report_markdown`) are pure
functions of that dict, following the campaign report's rule: generated
artifacts are regenerable byte-for-byte from the committed snapshot, so
CI's ``analytics-smoke`` step fails on any drift.
"""

from __future__ import annotations

import json

from repro.analytics.availability import TRACE_OBSERVED, build_timelines
from repro.analytics.store import AnalyticsStore

#: Outage-duration histogram bucket upper bounds (last bucket is overflow).
OUTAGE_BOUNDS_MS = (100.0, 500.0, 1_000.0, 5_000.0, 15_000.0, 60_000.0)

#: Journal kinds that count as fault exposure for a broker.
_BROKER_FAULT_KINDS = ("fault.injected", "fault.reverted")


def _percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile over a non-empty sorted value list."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def _round(value: float | None, digits: int = 3) -> float | None:
    """Stable rounding (reports are diffed byte-for-byte in CI)."""
    return None if value is None else round(value, digits)


def build_report(store: AnalyticsStore, now_ms: float | None = None) -> dict:
    """One report dict answering the SLO questions over ``store``.

    ``now_ms`` closes open availability intervals; it defaults to the
    store's ``meta["now_ms"]`` and falls back to the latest event time,
    so a report over a snapshot file needs no live clock.
    """
    events = store.events()
    if now_ms is None:
        now_ms = store.meta.get("now_ms")
    if now_ms is None:
        now_ms = max((e.time_ms for e in events), default=0.0)
    now_ms = float(now_ms)

    timelines = build_timelines(e for e in events if e.kind == TRACE_OBSERVED)

    entities: dict[str, dict] = {}
    all_outages: list[float] = []
    for entity_id in sorted(timelines):
        timeline = timelines[entity_id]
        outages = timeline.outage_durations_ms()
        all_outages.extend(outages)
        entities[entity_id] = {
            "state": "up" if timeline.up else "down",
            "availability_pct": _round(100.0 * timeline.availability(now_ms)),
            "uptime_ms": _round(timeline.uptime_ms(now_ms)),
            "outages": timeline.down_count,
            "mttr_ms": _round(timeline.mean_time_to_recover_ms()),
            "suspect": timeline.suspect_since_ms is not None,
        }

    counts = [0] * (len(OUTAGE_BOUNDS_MS) + 1)
    for duration in all_outages:
        for position, bound in enumerate(OUTAGE_BOUNDS_MS):
            if duration < bound:
                counts[position] += 1
                break
        else:
            counts[-1] += 1
    outage_histogram = {
        "bounds_ms": list(OUTAGE_BOUNDS_MS),
        "counts": counts,
        "total": len(all_outages),
    }

    # MTTR percentiles prefer the journal's recovery evidence (the
    # detection -> re-registration windows of trace.recovery_ms); the
    # interval gaps are the fallback when no probe ran.
    recovery_values = [
        e.value for e in store.events(kind="recovery.completed") if e.value is not None
    ]
    mttr_source = "recovery.completed" if recovery_values else "intervals"
    values = recovery_values if recovery_values else all_outages
    mttr = {"count": len(values), "source": mttr_source}
    if values:
        mttr.update(
            mean_ms=_round(sum(values) / len(values)),
            p50_ms=_round(_percentile(values, 0.50)),
            p90_ms=_round(_percentile(values, 0.90)),
            p99_ms=_round(_percentile(values, 0.99)),
        )

    brokers: dict[str, dict] = {}

    def _broker_entry(name: str) -> dict:
        return brokers.setdefault(
            name, {"faults_injected": 0, "faults_reverted": 0,
                   "failovers_out": 0, "failovers_in": 0, "sessions_created": 0}
        )

    for event in events:
        if event.kind in _BROKER_FAULT_KINDS:
            target = event.fields.get("target")
            if isinstance(target, str) and target.startswith("b"):
                entry = _broker_entry(target)
                key = (
                    "faults_injected"
                    if event.kind == "fault.injected"
                    else "faults_reverted"
                )
                entry[key] += 1
        elif event.kind == "fault.failover":
            source = event.fields.get("from_broker")
            destination = event.fields.get("to_broker")
            if isinstance(source, str):
                _broker_entry(source)["failovers_out"] += 1
            if isinstance(destination, str):
                _broker_entry(destination)["failovers_in"] += 1
        elif event.kind == "session.created" and event.broker is not None:
            _broker_entry(event.broker)["sessions_created"] += 1

    return {
        "meta": dict(store.meta),
        "now_ms": now_ms,
        "entities": entities,
        "outage_histogram": outage_histogram,
        "mttr": mttr,
        "brokers": {name: brokers[name] for name in sorted(brokers)},
        "evidence": store.kinds(),
    }


# ------------------------------------------------------------------ rendering


def _fmt(value) -> str:
    """Table-cell formatting: em-dash for missing, ``%g`` floats."""
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


_ENTITY_COLUMNS = (
    ("state", "state"),
    ("uptime %", "availability_pct"),
    ("outages", "outages"),
    ("MTTR (ms)", "mttr_ms"),
)
_BROKER_COLUMNS = (
    ("faults", "faults_injected"),
    ("reverted", "faults_reverted"),
    ("failovers out", "failovers_out"),
    ("failovers in", "failovers_in"),
    ("sessions", "sessions_created"),
)


def render_report_text(report: dict) -> str:
    """Fixed-width text rendering (the ``repro analytics report`` default)."""
    lines: list[str] = []
    meta = report.get("meta", {})
    title_bits = [f"now={report['now_ms']:g}ms"]
    if meta.get("scenario"):
        title_bits.insert(0, f"scenario={meta['scenario']}")
    if meta.get("seed") is not None:
        title_bits.append(f"seed={meta['seed']}")
    lines.append("availability report (" + " ".join(title_bits) + ")")
    lines.append("")

    header = f"{'entity':<20s} " + " ".join(
        f"{name:>12s}" for name, _ in _ENTITY_COLUMNS
    )
    lines.append(header)
    for entity_id, row in report["entities"].items():
        cells = " ".join(f"{_fmt(row[key]):>12s}" for _, key in _ENTITY_COLUMNS)
        lines.append(f"{entity_id:<20s} {cells}")
    if not report["entities"]:
        lines.append("(no trace.observed events)")

    mttr = report["mttr"]
    lines.append("")
    if mttr["count"]:
        lines.append(
            f"MTTR over {mttr['count']} recover(ies) [{mttr['source']}]: "
            f"mean {_fmt(mttr['mean_ms'])} ms · p50 {_fmt(mttr['p50_ms'])} ms · "
            f"p90 {_fmt(mttr['p90_ms'])} ms · p99 {_fmt(mttr['p99_ms'])} ms"
        )
    else:
        lines.append("MTTR: no completed recoveries")

    histogram = report["outage_histogram"]
    if histogram["total"]:
        lines.append("")
        lines.append("outage durations:")
        lower = 0.0
        for bound, count in zip(
            histogram["bounds_ms"], histogram["counts"], strict=False
        ):
            lines.append(f"  [{lower:>8g}, {bound:>8g}) ms  {count}")
            lower = bound
        lines.append(f"  [{lower:>8g},      inf) ms  {histogram['counts'][-1]}")

    if report["brokers"]:
        lines.append("")
        lines.append(
            f"{'broker':<10s} "
            + " ".join(f"{name:>14s}" for name, _ in _BROKER_COLUMNS)
        )
        for broker_id, row in report["brokers"].items():
            cells = " ".join(f"{_fmt(row[key]):>14s}" for _, key in _BROKER_COLUMNS)
            lines.append(f"{broker_id:<10s} {cells}")

    lines.append("")
    lines.append(
        "evidence: "
        + ", ".join(
            f"{kind}={count}" for kind, count in sorted(report["evidence"].items())
        )
    )
    return "\n".join(lines)


def render_report_markdown(report: dict) -> str:
    """Markdown rendering (the committed ``report.md`` artifact form)."""
    meta = report.get("meta", {})
    lines = ["# Availability report", ""]
    descriptors = [f"`now_ms` {report['now_ms']:g}"]
    if meta.get("scenario"):
        descriptors.insert(0, f"scenario `{meta['scenario']}`")
    if meta.get("seed") is not None:
        descriptors.append(f"seed `{meta['seed']}`")
    if meta.get("duration_ms") is not None:
        descriptors.append(f"duration `{meta['duration_ms']:g}` ms")
    lines += ["- " + " · ".join(descriptors), ""]

    lines.append("## Entities")
    lines.append("")
    lines.append("| entity | " + " | ".join(n for n, _ in _ENTITY_COLUMNS) + " |")
    lines.append("|---" * (len(_ENTITY_COLUMNS) + 1) + "|")
    for entity_id, row in report["entities"].items():
        cells = " | ".join(_fmt(row[key]) for _, key in _ENTITY_COLUMNS)
        lines.append(f"| {entity_id} | {cells} |")
    lines.append("")

    mttr = report["mttr"]
    lines.append("## MTTR")
    lines.append("")
    if mttr["count"]:
        lines.append(
            f"{mttr['count']} completed recover(ies) from `{mttr['source']}`: "
            f"mean {_fmt(mttr['mean_ms'])} ms, p50 {_fmt(mttr['p50_ms'])} ms, "
            f"p90 {_fmt(mttr['p90_ms'])} ms, p99 {_fmt(mttr['p99_ms'])} ms."
        )
    else:
        lines.append("No completed recoveries in this run.")
    lines.append("")

    histogram = report["outage_histogram"]
    lines.append("## Outage histogram")
    lines.append("")
    if histogram["total"]:
        lines.append("| bucket (ms) | outages |")
        lines.append("|---|---|")
        lower = 0.0
        for bound, count in zip(
            histogram["bounds_ms"], histogram["counts"], strict=False
        ):
            lines.append(f"| [{lower:g}, {bound:g}) | {count} |")
            lower = bound
        lines.append(f"| [{lower:g}, inf) | {histogram['counts'][-1]} |")
    else:
        lines.append("No completed outages in this run.")
    lines.append("")

    if report["brokers"]:
        lines.append("## Brokers")
        lines.append("")
        lines.append(
            "| broker | " + " | ".join(n for n, _ in _BROKER_COLUMNS) + " |"
        )
        lines.append("|---" * (len(_BROKER_COLUMNS) + 1) + "|")
        for broker_id, row in report["brokers"].items():
            cells = " | ".join(_fmt(row[key]) for _, key in _BROKER_COLUMNS)
            lines.append(f"| {broker_id} | {cells} |")
        lines.append("")

    lines.append("## Evidence inventory")
    lines.append("")
    lines.append("| journal kind | events |")
    lines.append("|---|---|")
    for kind, count in sorted(report["evidence"].items()):
        lines.append(f"| `{kind}` | {count} |")

    lines += [
        "",
        "---",
        "",
        "*Generated by `repro analytics report` — do not edit by hand.*",
        "*Regenerate with:*",
        "",
        "```sh",
        "PYTHONPATH=src python -m repro analytics report "
        "--snapshot benchmarks/results/analytics/analytics_seed.json "
        "--format markdown --out benchmarks/results/analytics/report.md",
        "```",
    ]
    return "\n".join(lines)


def render_report_json(report: dict) -> str:
    """Deterministic JSON rendering of the report dict."""
    return json.dumps(report, indent=2, sort_keys=True)
