"""Pluggable storage backends for the availability analytics store.

The seam mirrors the wire-codec registry (``repro.wire``): a small named
registry of interchangeable implementations behind one query contract, so
tests run against the in-memory backend while persistent deployments keep
the same event log in sqlite.  Both backends must return *identical*
query results for the same ingested run — ``tests/analytics`` pins that
equivalence.

Backends number events with a 1-based ``seq`` in append order; queries
always return events ordered by ``seq``, so iteration order never depends
on backend internals.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Callable, Iterable

from repro.errors import AnalyticsError, ConfigurationError

from repro.analytics.events import AnalyticsEvent


class AnalyticsBackend:
    """Contract every storage backend implements (append-only + queries)."""

    #: registry name; subclasses override.
    name = "abstract"

    def append(
        self,
        time_ms: float,
        kind: str,
        entity: str | None = None,
        broker: str | None = None,
        value: float | None = None,
        fields: dict | None = None,
    ) -> AnalyticsEvent:
        """Store one event and return it with its assigned ``seq``."""
        raise NotImplementedError

    def events(
        self,
        kind: str | None = None,
        entity: str | None = None,
        since_ms: float | None = None,
        until_ms: float | None = None,
    ) -> list[AnalyticsEvent]:
        """Events matching every given filter, ordered by ``seq``."""
        raise NotImplementedError

    def kinds(self) -> dict[str, int]:
        """Event kind -> occurrence count, over the whole log."""
        raise NotImplementedError

    def entities(self) -> list[str]:
        """Distinct non-null ``entity`` values, sorted."""
        raise NotImplementedError

    def count(self) -> int:
        """Total number of stored events."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any held resources (no-op for in-memory backends)."""

    @staticmethod
    def _matches(
        event: AnalyticsEvent,
        kind: str | None,
        entity: str | None,
        since_ms: float | None,
        until_ms: float | None,
    ) -> bool:
        """Shared filter predicate (used by the in-memory backend)."""
        if kind is not None and event.kind != kind:
            return False
        if entity is not None and event.entity != entity:
            return False
        if since_ms is not None and event.time_ms < since_ms:
            return False
        if until_ms is not None and event.time_ms >= until_ms:
            return False
        return True


class MemoryBackend(AnalyticsBackend):
    """List-backed backend: the default for tests and short-lived runs."""

    name = "memory"

    def __init__(self) -> None:
        self._events: list[AnalyticsEvent] = []

    def append(
        self,
        time_ms: float,
        kind: str,
        entity: str | None = None,
        broker: str | None = None,
        value: float | None = None,
        fields: dict | None = None,
    ) -> AnalyticsEvent:
        """Append one event; ``seq`` is the 1-based position in the log."""
        event = AnalyticsEvent(
            seq=len(self._events) + 1,
            time_ms=float(time_ms),
            kind=kind,
            entity=entity,
            broker=broker,
            value=(float(value) if value is not None else None),
            fields=dict(fields or {}),
        )
        self._events.append(event)
        return event

    def events(
        self,
        kind: str | None = None,
        entity: str | None = None,
        since_ms: float | None = None,
        until_ms: float | None = None,
    ) -> list[AnalyticsEvent]:
        """Filtered view of the log, in append (``seq``) order."""
        return [
            event
            for event in self._events
            if self._matches(event, kind, entity, since_ms, until_ms)
        ]

    def kinds(self) -> dict[str, int]:
        """Event kind -> occurrence count."""
        counts: dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def entities(self) -> list[str]:
        """Distinct entities mentioned by any event, sorted."""
        return sorted({e.entity for e in self._events if e.entity is not None})

    def count(self) -> int:
        """Total stored events."""
        return len(self._events)


class SqliteBackend(AnalyticsBackend):
    """Sqlite-backed backend: the persistent tier of the seam.

    ``path`` defaults to ``":memory:"`` (a private in-process database);
    pass a filesystem path for a store that survives the process.  The
    free-form ``fields`` mapping is stored as canonical (sorted-key) JSON
    text, so rows round-trip exactly and two backends fed the same run
    export identical snapshots.
    """

    name = "sqlite"

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS events (
            seq     INTEGER PRIMARY KEY AUTOINCREMENT,
            time_ms REAL NOT NULL,
            kind    TEXT NOT NULL,
            entity  TEXT,
            broker  TEXT,
            value   REAL,
            fields  TEXT NOT NULL DEFAULT '{}'
        );
        CREATE INDEX IF NOT EXISTS idx_events_kind ON events (kind);
        CREATE INDEX IF NOT EXISTS idx_events_entity ON events (entity);
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.executescript(self._SCHEMA)

    def append(
        self,
        time_ms: float,
        kind: str,
        entity: str | None = None,
        broker: str | None = None,
        value: float | None = None,
        fields: dict | None = None,
    ) -> AnalyticsEvent:
        """Insert one row and return it with the assigned rowid as ``seq``."""
        payload = json.dumps(dict(fields or {}), sort_keys=True, default=str)
        cursor = self._conn.execute(
            "INSERT INTO events (time_ms, kind, entity, broker, value, fields)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            (float(time_ms), kind, entity, broker, value, payload),
        )
        self._conn.commit()
        return AnalyticsEvent(
            seq=int(cursor.lastrowid),
            time_ms=float(time_ms),
            kind=kind,
            entity=entity,
            broker=broker,
            value=(float(value) if value is not None else None),
            fields=dict(fields or {}),
        )

    def events(
        self,
        kind: str | None = None,
        entity: str | None = None,
        since_ms: float | None = None,
        until_ms: float | None = None,
    ) -> list[AnalyticsEvent]:
        """Filtered rows ordered by ``seq`` (same contract as memory)."""
        clauses, params = [], []
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if entity is not None:
            clauses.append("entity = ?")
            params.append(entity)
        if since_ms is not None:
            clauses.append("time_ms >= ?")
            params.append(since_ms)
        if until_ms is not None:
            clauses.append("time_ms < ?")
            params.append(until_ms)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self._conn.execute(
            "SELECT seq, time_ms, kind, entity, broker, value, fields"
            f" FROM events{where} ORDER BY seq",
            params,
        ).fetchall()
        return [
            AnalyticsEvent(
                seq=int(seq),
                time_ms=float(time_ms),
                kind=row_kind,
                entity=row_entity,
                broker=row_broker,
                value=(float(row_value) if row_value is not None else None),
                fields=json.loads(fields_json),
            )
            for seq, time_ms, row_kind, row_entity, row_broker, row_value, fields_json
            in rows
        ]

    def kinds(self) -> dict[str, int]:
        """Event kind -> occurrence count via a grouped query."""
        rows = self._conn.execute(
            "SELECT kind, COUNT(*) FROM events GROUP BY kind ORDER BY kind"
        ).fetchall()
        return {kind: int(count) for kind, count in rows}

    def entities(self) -> list[str]:
        """Distinct non-null entities, sorted."""
        rows = self._conn.execute(
            "SELECT DISTINCT entity FROM events"
            " WHERE entity IS NOT NULL ORDER BY entity"
        ).fetchall()
        return [row[0] for row in rows]

    def count(self) -> int:
        """Total stored rows."""
        return int(self._conn.execute("SELECT COUNT(*) FROM events").fetchone()[0])

    def close(self) -> None:
        """Close the sqlite connection."""
        self._conn.close()


#: name -> factory, the backend seam's registry (sorted for stable errors).
_BACKENDS: dict[str, Callable[..., AnalyticsBackend]] = {
    "memory": MemoryBackend,
    "sqlite": SqliteBackend,
}


def backend_names() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_BACKENDS)


def register_backend(name: str, factory: Callable[..., AnalyticsBackend]) -> None:
    """Register (or replace) a backend factory under ``name``."""
    if not name or not name.islower():
        raise ConfigurationError(f"backend name must be lowercase, got {name!r}")
    _BACKENDS[name] = factory


def create_backend(name: str, **kwargs) -> AnalyticsBackend:
    """Instantiate a registered backend by name.

    ``kwargs`` are passed to the factory (``path=`` for sqlite).
    """
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise AnalyticsError(
            f"unknown analytics backend {name!r}; known: {', '.join(backend_names())}"
        ) from None
    return factory(**kwargs)


def ingest_events(
    backend: AnalyticsBackend, events: Iterable[AnalyticsEvent]
) -> int:
    """Replay already-built events into ``backend`` (imports, migrations)."""
    appended = 0
    for event in events:
        backend.append(
            event.time_ms,
            event.kind,
            entity=event.entity,
            broker=event.broker,
            value=event.value,
            fields=dict(event.fields),
        )
        appended += 1
    return appended
