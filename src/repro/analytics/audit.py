"""Audit-completeness validator: every mutation must leave journal evidence.

The paper's authorization story only holds if availability-affecting
state mutations are *accountable*: a session that was created, a client
that was terminated, a trace key that was re-distributed must each be
reconstructible from the persistent record, not just from in-memory
counters.  This module enforces that as an equality check — for each
:class:`EvidenceRule`, the number of mutations the instruments counted
must equal the number of journal records carrying the rule's evidence
kind.  A shortfall means a code path mutated state without writing its
evidence record; a surplus means evidence was fabricated or
double-written.  Both fail the gate.

:func:`assert_audit_complete` is wired into the chaos-scenario and
campaign test suites, so every mutation path the fault catalog exercises
is audited on every CI run (see docs/ANALYTICS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from repro.errors import AuditIncompleteError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.deployment import Deployment


@dataclass(frozen=True, slots=True)
class EvidenceRule:
    """One mutation counter that must be matched by journal evidence."""

    #: Short rule identifier, e.g. ``"sessions"``.
    name: str
    #: Human description of the state mutation being audited.
    mutation: str
    #: Journal record kind that constitutes evidence for one mutation.
    evidence_kind: str
    #: Where the mutation count comes from, for the failure message.
    counted_by: str
    #: Extracts the mutation count from a deployment.
    count: Callable[["Deployment"], int]


def _monitor_counter(name: str) -> Callable[["Deployment"], int]:
    return lambda dep: dep.monitor.count(name)


def _metrics_counter(name: str) -> Callable[["Deployment"], int]:
    return lambda dep: dep.metrics.counter_value(name)


def _faults_injected(dep: "Deployment") -> int:
    return sum(
        value
        for name, value in dep.metrics.snapshot().get("counters", {}).items()
        if name.startswith("faults.injected.")
    )


def _faults_reverted(dep: "Deployment") -> int:
    # The controller tracks reverts implicitly: every injection bumps the
    # ``faults.active`` gauge and every revert decrements it.
    return _faults_injected(dep) - int(dep.metrics.gauge_value("faults.active"))


#: The audited mutation surface.  Every rule pairs an instrument that
#: code *already* increments with the journal kind its mutation path
#: must write; tests prove the gate trips when a write is suppressed.
DEFAULT_RULES: tuple[EvidenceRule, ...] = (
    EvidenceRule(
        name="sessions",
        mutation="trace session registered",
        evidence_kind="session.created",
        counted_by="monitor counter 'trace.sessions_created'",
        count=_monitor_counter("trace.sessions_created"),
    ),
    EvidenceRule(
        name="keys",
        mutation="trace key (re-)distributed to trackers",
        evidence_kind="key.distributed",
        counted_by="monitor counter 'trace.keys_distributed'",
        count=_monitor_counter("trace.keys_distributed"),
    ),
    EvidenceRule(
        name="violations",
        mutation="authorization/DoS violation recorded against a client",
        evidence_kind="violation",
        counted_by="monitor counter 'dos.violations'",
        count=_monitor_counter("dos.violations"),
    ),
    EvidenceRule(
        name="terminations",
        mutation="client forcibly terminated",
        evidence_kind="terminated",
        counted_by="monitor counter 'dos.terminated'",
        count=_monitor_counter("dos.terminated"),
    ),
    EvidenceRule(
        name="failovers",
        mutation="entity failed over to a surviving broker",
        evidence_kind="fault.failover",
        counted_by="metrics counter 'faults.failovers'",
        count=_metrics_counter("faults.failovers"),
    ),
    EvidenceRule(
        name="faults-injected",
        mutation="fault injected into the deployment",
        evidence_kind="fault.injected",
        counted_by="sum of metrics counters 'faults.injected.*'",
        count=_faults_injected,
    ),
    EvidenceRule(
        name="faults-reverted",
        mutation="fault reverted",
        evidence_kind="fault.reverted",
        counted_by="'faults.injected.*' total minus the 'faults.active' gauge",
        count=_faults_reverted,
    ),
    EvidenceRule(
        name="recoveries-detected",
        mutation="entity failure detected by the recovery probe",
        evidence_kind="recovery.detected",
        counted_by="metrics counter 'trace.recovery.detected'",
        count=_metrics_counter("trace.recovery.detected"),
    ),
    EvidenceRule(
        name="recoveries-completed",
        mutation="entity re-registered after a detected failure",
        evidence_kind="recovery.completed",
        counted_by="metrics counter 'trace.recovery.completed'",
        count=_metrics_counter("trace.recovery.completed"),
    ),
)


@dataclass(frozen=True, slots=True)
class AuditFinding:
    """One rule's outcome: mutation count versus journal evidence count."""

    rule: EvidenceRule
    mutations: int
    evidence: int

    @property
    def complete(self) -> bool:
        """Whether every counted mutation has exactly one evidence record."""
        return self.mutations == self.evidence

    def describe(self) -> str:
        """One-line human summary, actionable when incomplete."""
        if self.complete:
            return (
                f"[{self.rule.name}] ok: {self.mutations} mutation(s), "
                f"{self.evidence} '{self.rule.evidence_kind}' record(s)"
            )
        if self.evidence < self.mutations:
            missing = self.mutations - self.evidence
            return (
                f"[{self.rule.name}] {missing} {self.rule.mutation} mutation(s) "
                f"have no '{self.rule.evidence_kind}' journal evidence "
                f"({self.mutations} counted by {self.rule.counted_by}, "
                f"{self.evidence} journal record(s) found) — the mutation path "
                f"must journal a '{self.rule.evidence_kind}' record"
            )
        surplus = self.evidence - self.mutations
        return (
            f"[{self.rule.name}] {surplus} surplus '{self.rule.evidence_kind}' "
            f"journal record(s) with no counted {self.rule.mutation} mutation "
            f"({self.evidence} record(s) vs {self.mutations} counted by "
            f"{self.rule.counted_by}) — evidence without a mutation is as "
            f"suspect as a mutation without evidence"
        )


def audit_deployment(
    deployment: "Deployment",
    rules: Iterable[EvidenceRule] = DEFAULT_RULES,
    journal_kinds: Mapping[str, int] | None = None,
) -> list[AuditFinding]:
    """Evaluate every rule against the deployment; return all findings.

    ``journal_kinds`` overrides where evidence counts come from (the
    analytics store's persisted ``kinds()``, say, instead of the live
    journal) so the gate can run against a snapshot.
    """
    kinds = (
        dict(journal_kinds)
        if journal_kinds is not None
        else deployment.journal.kinds()
    )
    return [
        AuditFinding(
            rule=rule,
            mutations=rule.count(deployment),
            evidence=kinds.get(rule.evidence_kind, 0),
        )
        for rule in rules
    ]


def assert_audit_complete(
    deployment: "Deployment",
    rules: Iterable[EvidenceRule] = DEFAULT_RULES,
    journal_kinds: Mapping[str, int] | None = None,
) -> list[AuditFinding]:
    """Raise :class:`AuditIncompleteError` unless every rule balances.

    The exception message names each failing rule, the missing (or
    surplus) evidence kind, and both counts, so the offending mutation
    path can be found without re-running under a debugger.  Returns the
    findings on success for callers that want to log them.
    """
    findings = audit_deployment(deployment, rules=rules, journal_kinds=journal_kinds)
    failures = [f for f in findings if not f.complete]
    if failures:
        details = "\n  ".join(f.describe() for f in failures)
        raise AuditIncompleteError(
            f"audit incomplete — {len(failures)} rule(s) unbalanced:\n  {details}"
        )
    return findings
