"""Campaign report generation: markdown tables + SVG figures.

:func:`generate_report` turns a campaign snapshot (the JSON
:func:`~repro.campaigns.runner.run_campaign` produces) into the
artifact set committed under ``benchmarks/results/campaigns/<name>/``:

* ``report.md`` — one grid table per family, a dependability summary
  (MTTR percentiles + availability envelopes from ``trace.recovery_ms``),
  an adversarial-defense table for the §5 families, and a baseline
  comparison grid keyed on the shared ``entities`` axis;
* ``fig_availability.svg`` / ``fig_baselines.svg`` — :mod:`svgplot`
  figures (deterministic, dependency-free SVG).

The report is *generated*, never hand-edited: CI re-renders it from
the committed snapshot and fails on any diff, the same drift-checking
treatment EXPERIMENTS.md tables get from ``tools/check_experiments.py``.
"""

from __future__ import annotations

import pathlib

from repro.bench.svgplot import Series, line_chart

#: Columns shown per family kind, as (header, dotted metrics path) pairs.
_PROTOCOL_COLUMNS = (
    ("delivered", "metrics.counters.broker.msgs.delivered"),
    ("pings", "metrics.counters.tracker.pings.sent"),
    ("recoveries", "metrics.counters.trace.recovery.completed"),
    ("MTTR p50 (ms)", "metrics.recovery.p50_ms"),
    ("MTTR p99 (ms)", "metrics.recovery.p99_ms"),
    ("availability %", "metrics.availability.availability_pct"),
)
_ADVERSARIAL_COLUMNS = (
    ("attempts", "metrics.attack.attempts"),
    ("replays", "metrics.attack.replays"),
    ("rejected", "metrics.counters.broker.msgs.rejected"),
    ("violations", "metrics.counters.broker.violations"),
    ("terminated", "metrics.defense.terminated"),
    ("forged FAILED seen", "metrics.forged_failed_seen"),
    ("recoveries", "metrics.counters.trace.recovery.completed"),
)
_BASELINE_COLUMNS = (
    ("population", "metrics.population"),
    ("msgs/s", "metrics.msgs_per_s"),
    ("detect first (ms)", "metrics.detect_first_ms"),
    ("detect last (ms)", "metrics.detect_last_ms"),
)


def _lookup(record: dict, dotted: str):
    """Resolve a dotted path against a nested dict, or ``None``.

    Counter names themselves contain dots, so after descending into the
    ``counters`` mapping the remaining path is looked up as one key.
    """
    node = record
    parts = dotted.split(".")
    for position, part in enumerate(parts):
        if not isinstance(node, dict):
            return None
        if part == "counters":
            return node.get("counters", {}).get(".".join(parts[position + 1 :]))
        node = node.get(part)
    return node


def _fmt(value) -> str:
    """Table-cell formatting: blanks for missing, plain repr otherwise."""
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _param_columns(records: list[dict]) -> list[str]:
    """The union of parameter names across records, sorted."""
    names: set[str] = set()
    for record in records:
        names.update(record.get("params", {}))
    return sorted(names)


def _family_table(records: list[dict], columns) -> list[str]:
    """One markdown grid table: param columns then metric columns."""
    params = _param_columns(records)
    used = [
        (header, path)
        for header, path in columns
        if any(_lookup(r, path) is not None for r in records)
    ]
    header = params + ["seed"] + [header for header, _ in used]
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for record in records:
        cells = [_fmt(record.get("params", {}).get(p)) for p in params]
        cells.append(str(record.get("seed")))
        cells += [_fmt(_lookup(record, path)) for _, path in used]
        lines.append("| " + " | ".join(cells) + " |")
    return lines


def _columns_for(kind_of_family: str):
    """The column set for a family kind."""
    if kind_of_family == "baseline":
        return _BASELINE_COLUMNS
    return _PROTOCOL_COLUMNS


def _dependability_section(records: list[dict]) -> list[str]:
    """MTTR percentile + availability-envelope summary across points."""
    rows = [
        record
        for record in records
        if _lookup(record, "metrics.recovery.count")
    ]
    if not rows:
        return []
    lines = [
        "## Dependability summary",
        "",
        "MTTR percentiles and availability envelopes from the",
        "`trace.recovery_ms` probes (detection → re-registration), per",
        "point with at least one completed recovery:",
        "",
        "| family | params | MTTR mean | p50 | p90 | p99 | availability % | unrecovered |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for record in rows:
        params = ", ".join(
            f"{k}={v}" for k, v in sorted(record.get("params", {}).items())
        )
        lines.append(
            "| {family} | {params} | {mean} | {p50} | {p90} | {p99} "
            "| {avail} | {unrec} |".format(
                family=record["family"],
                params=params or "—",
                mean=_fmt(_lookup(record, "metrics.recovery.mean_ms")),
                p50=_fmt(_lookup(record, "metrics.recovery.p50_ms")),
                p90=_fmt(_lookup(record, "metrics.recovery.p90_ms")),
                p99=_fmt(_lookup(record, "metrics.recovery.p99_ms")),
                avail=_fmt(
                    _lookup(record, "metrics.availability.availability_pct")
                ),
                unrec=_fmt(_lookup(record, "metrics.availability.unrecovered")),
            )
        )
    lines.append("")
    return lines


def _baseline_comparison(snapshot: dict) -> list[str]:
    """Tracing vs baseline grid keyed on the shared ``entities`` axis."""
    by_family: dict[str, list[dict]] = {}
    for record in snapshot.get("results", []):
        by_family.setdefault(record["family"], []).append(record)
    baselines = {
        name: records
        for name, records in by_family.items()
        if records and records[0]["kind"] == "baseline"
    }
    tracing = [
        record
        for name, records in by_family.items()
        if records and records[0]["kind"] == "workload"
        for record in records
        if _lookup(record, "metrics.detection.count")
    ]
    if not baselines:
        return []
    lines = [
        "## Baseline comparison",
        "",
        "The same grid run through the §1/§7 baselines.  Tracing rows",
        "report FAILED-verdict latency (`tracker.detection.latency_ms`);",
        "baseline rows report crash-to-suspicion time at each member.",
        "",
        "| system | entities | detect mean/first (ms) | detect max/last (ms) | msgs/s |",
        "|---|---|---|---|---|",
    ]
    for record in tracing:
        lines.append(
            "| tracing ({family}) | {entities} | {mean} | {max} | — |".format(
                family=record["family"],
                entities=_fmt(record.get("params", {}).get("entities")),
                mean=_fmt(_lookup(record, "metrics.detection.mean_ms")),
                max=_fmt(_lookup(record, "metrics.detection.max_ms")),
            )
        )
    for name in sorted(baselines):
        for record in baselines[name]:
            lines.append(
                "| {name} | {entities} | {first} | {last} | {rate} |".format(
                    name=name,
                    entities=_fmt(record.get("params", {}).get("entities")),
                    first=_fmt(_lookup(record, "metrics.detect_first_ms")),
                    last=_fmt(_lookup(record, "metrics.detect_last_ms")),
                    rate=_fmt(_lookup(record, "metrics.msgs_per_s")),
                )
            )
    lines.append("")
    return lines


def _availability_figure(records: list[dict]) -> str | None:
    """Availability vs entities, one line per (family, churn cell)."""
    series: dict[str, list[tuple[float, float]]] = {}
    for record in records:
        availability = _lookup(record, "metrics.availability.availability_pct")
        entities = record.get("params", {}).get("entities")
        if availability is None or entities is None:
            continue
        extra = {
            k: v
            for k, v in sorted(record.get("params", {}).items())
            if k not in ("entities",)
        }
        label = record["family"]
        if extra:
            label += " " + ",".join(f"{k}={v}" for k, v in extra.items())
        series.setdefault(label, []).append((float(entities), float(availability)))
    series = {k: v for k, v in series.items() if len(v) >= 2}
    if not series:
        return None
    return line_chart(
        "Availability envelope vs entity count",
        "entities",
        "availability %",
        [Series(name, tuple(sorted(points))) for name, points in sorted(series.items())],
    )


def _baseline_figure(snapshot: dict) -> str | None:
    """Detection-time-vs-entities comparison figure."""
    series: dict[str, list[tuple[float, float]]] = {}
    for record in snapshot.get("results", []):
        entities = record.get("params", {}).get("entities")
        if entities is None:
            continue
        if record["kind"] == "baseline":
            value = _lookup(record, "metrics.detect_last_ms")
            label = record["family"]
        else:
            value = _lookup(record, "metrics.detection.mean_ms")
            label = f"tracing ({record['family']})"
        if value is None:
            continue
        series.setdefault(label, []).append((float(entities), float(value)))
    series = {k: v for k, v in series.items() if len(v) >= 2}
    if not series:
        return None
    return line_chart(
        "Failure detection time vs entity count",
        "entities",
        "detection time (ms)",
        [Series(name, tuple(sorted(points))) for name, points in sorted(series.items())],
    )


def generate_report(snapshot: dict, out_dir: str | pathlib.Path) -> list[pathlib.Path]:
    """Render ``report.md`` and figures for a campaign snapshot.

    Returns the list of files written.  Output is a pure function of
    the snapshot, so regenerating from the committed snapshot must be a
    no-op diff (CI's ``campaign-smoke`` job enforces this).
    """
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[pathlib.Path] = []

    by_family: dict[str, list[dict]] = {}
    for record in snapshot.get("results", []):
        by_family.setdefault(record["family"], []).append(record)

    spec = snapshot.get("spec", {})
    lines = [
        f"# Campaign report: {snapshot.get('campaign', '?')}",
        "",
    ]
    if snapshot.get("description"):
        lines += [snapshot["description"], ""]
    axes = spec.get("axes", [])
    lines += [
        f"- seed: `{snapshot.get('seed')}`"
        f" · repetitions: {spec.get('repetitions', 1)}"
        f" · points: {snapshot.get('point_count', 0)}",
        "- axes: "
        + (
            ", ".join(
                "`{name}` ∈ {values}".format(
                    name=axis["name"], values=axis["values"]
                )
                for axis in axes
            )
            if axes
            else "(none)"
        ),
        "- fixed: "
        + (
            ", ".join(
                f"`{k}`={v}" for k, v in sorted(spec.get("fixed", {}).items())
            )
            or "(none)"
        ),
        "",
    ]

    for family_name, records in by_family.items():
        kind = records[0]["kind"]
        family_kind = snapshot.get("families", {}).get(family_name, {}).get(
            "kind", kind
        )
        lines.append(f"## {family_name}")
        lines.append("")
        columns = (
            _ADVERSARIAL_COLUMNS
            if any(_lookup(r, "metrics.attack.attempts") is not None for r in records)
            else _columns_for(family_kind)
        )
        lines += _family_table(records, columns)
        swept = {axis["name"] for axis in axes}
        accepted = _param_columns(records)
        ignored = sorted(swept - set(accepted))
        if ignored:
            lines.append("")
            lines.append(
                "_Axes not applicable to this family (projected away): "
                + ", ".join(f"`{name}`" for name in ignored)
                + "._"
            )
        lines.append("")

    lines += _dependability_section(snapshot.get("results", []))
    lines += _baseline_comparison(snapshot)

    figures = []
    availability_svg = _availability_figure(snapshot.get("results", []))
    if availability_svg is not None:
        path = out / "fig_availability.svg"
        path.write_text(availability_svg, encoding="utf-8")
        written.append(path)
        figures.append(("Availability envelope", path.name))
    baseline_svg = _baseline_figure(snapshot)
    if baseline_svg is not None:
        path = out / "fig_baselines.svg"
        path.write_text(baseline_svg, encoding="utf-8")
        written.append(path)
        figures.append(("Baseline detection comparison", path.name))
    if figures:
        lines.append("## Figures")
        lines.append("")
        for title, name in figures:
            lines.append(f"- [{title}]({name})")
        lines.append("")

    lines += [
        "---",
        "",
        "*Generated by `repro campaign report` — do not edit by hand.*",
        "*Regenerate with:*",
        "",
        "```sh",
        "PYTHONPATH=src python -m repro campaign run "
        f"--spec benchmarks/campaigns/{snapshot.get('campaign', '<name>')}.json "
        f"--seed {snapshot.get('seed')} "
        f"--out benchmarks/results/campaigns/{snapshot.get('campaign', '<name>')}",
        "```",
    ]

    report = out / "report.md"
    report.write_text("\n".join(lines) + "\n", encoding="utf-8")
    written.insert(0, report)
    return written
