"""Scenario campaigns: declarative seeded sweeps with generated reports.

The campaign engine generalizes the single-scenario harnesses
(``repro faults --scenario``, the routing smoke, the scale curve) into
declarative *campaigns*: a :class:`~repro.campaigns.spec.CampaignSpec`
names the axes to sweep, the workload families to run over the grid,
the baselines to compare against, and the seeded repetitions — and the
whole thing expands, runs, snapshots, and renders deterministically
(docs/CAMPAIGNS.md).

Layout:

* :mod:`repro.campaigns.spec` — the spec model and its deterministic
  expansion into a run matrix;
* :mod:`repro.campaigns.workloads` — the workload-family registry:
  churn-mobile, the §5 adversarial families, and the gossip /
  all-pairs baselines;
* :mod:`repro.campaigns.runner` — sequential or subprocess-parallel
  execution plus the byte-stable snapshot and its seed-gate compare;
* :mod:`repro.campaigns.report` — markdown tables + SVG figures from a
  snapshot.
"""

from repro.campaigns.report import generate_report
from repro.campaigns.runner import (
    campaign_snapshot,
    compare_to_snapshot,
    render_snapshot,
    run_campaign,
    run_point,
)
from repro.campaigns.spec import (
    Axis,
    CampaignPoint,
    CampaignSpec,
    expand,
    ignored_axes,
    load_spec,
    unused_parameters,
)
from repro.campaigns.workloads import (
    WORKLOADS,
    WorkloadFamily,
    observe_deployments,
    workload_family,
)

__all__ = [
    "WORKLOADS",
    "Axis",
    "CampaignPoint",
    "CampaignSpec",
    "WorkloadFamily",
    "campaign_snapshot",
    "compare_to_snapshot",
    "expand",
    "generate_report",
    "ignored_axes",
    "load_spec",
    "observe_deployments",
    "render_snapshot",
    "run_campaign",
    "run_point",
    "unused_parameters",
    "workload_family",
]
