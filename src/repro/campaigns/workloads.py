"""Campaign workload families: churn, §5 adversarial, and baselines.

Each family is a named, seeded scenario generator the campaign runner
sweeps over a parameter grid (docs/CAMPAIGNS.md).  A family's ``run``
takes a parameter dict and a seed and returns a *deterministic* snapshot
dict — counters, recovery/dependability blocks, defense outcomes — and
never wall-clock or host-dependent values, so campaign snapshots can be
gated byte-for-byte like the chaos and scale seeds.

Families:

* ``churn-mobile`` — the mobile-trace workload: entities leave and
  rejoin on a schedule (layered on :mod:`repro.faults`), optionally
  under loss/delay windows, with MTTR percentiles and availability
  envelopes computed from ``trace.recovery_ms``.
* ``unauthorized-publisher`` — §5.2: an attacker without a delegation
  floods fabricated traces; brokers discard and terminate.
* ``token-replay-flood`` — §5.2/§4.3: an attacker replays a captured,
  validly signed trace frame; the token-verification cache bounds the
  crypto cost of absorbing the flood.
* ``malicious-termination`` — §5.2 under churn: forged FAILED floods
  try to bury a churning entity's real lifecycle; recovery completes
  and no forged verdict reaches a verifying tracker.
* ``baseline-gossip`` / ``baseline-allpairs`` — the §1/§7 baselines run
  over the same grid for frontier comparison tables.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.faults.controller import FaultController
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.messaging.message import reset_message_ids
from repro.tracing.failure import AdaptivePingPolicy
from repro.tracing.traces import TraceType

#: Counters every tracing-deployment family snapshots (all deterministic).
CAMPAIGN_COUNTERS = (
    "broker.msgs.delivered",
    "broker.msgs.unroutable",
    "broker.msgs.rejected",
    "broker.violations",
    "broker.interest.stale_forwards",
    "tracker.pings.sent",
    "tracker.traces.received",
    "trace.recovery.detected",
    "trace.recovery.completed",
    "auth.token.cache.hit",
    "auth.token.cache.miss",
)

#: Virtual instant entities/trackers are bootstrapped by and tracking begins.
_TRACK_AT_MS = 3_000.0

#: Active deployment probe (``observe_deployments``); families that build a
#: tracing deployment hand it to the probe after their horizon, which is how
#: the analytics audit gate inspects campaign runs without changing any
#: family's snapshot shape.
_DEPLOYMENT_PROBE: Callable | None = None


@contextmanager
def observe_deployments(probe: Callable):
    """Call ``probe(deployment)`` after every tracing-family run inside.

    Baseline families build no deployment and are never probed.  The
    probe only *reads* (counters, journal, analytics) — run outcomes are
    already sealed by the time it fires, so snapshots stay bit-identical.
    """
    global _DEPLOYMENT_PROBE
    previous = _DEPLOYMENT_PROBE
    _DEPLOYMENT_PROBE = probe
    try:
        yield
    finally:
        _DEPLOYMENT_PROBE = previous


def _probe(dep) -> None:
    if _DEPLOYMENT_PROBE is not None:
        _DEPLOYMENT_PROBE(dep)


@dataclass(frozen=True, slots=True)
class WorkloadFamily:
    """One runnable workload family: metadata plus its ``run`` callable."""

    name: str
    kind: str  # "protocol" | "adversarial" | "baseline"
    description: str
    accepts: frozenset[str]
    defaults: dict
    run: Callable[[dict, int], dict]

    def resolve(self, params: dict) -> dict:
        """Defaults overlaid with ``params``; rejects unknown names."""
        unknown = set(params) - self.accepts
        if unknown:
            raise ConfigurationError(
                f"family {self.name!r} does not accept "
                f"{', '.join(sorted(unknown))} (accepts: "
                f"{', '.join(sorted(self.accepts))})"
            )
        resolved = dict(self.defaults)
        resolved.update(params)
        return resolved


def _ping_policy(interval_ms: float) -> AdaptivePingPolicy:
    """The fast campaign ping policy, scaled from one base interval."""
    return AdaptivePingPolicy(
        base_interval_ms=interval_ms,
        min_interval_ms=interval_ms / 4.0,
        max_interval_ms=interval_ms * 2.0,
        response_deadline_ms=interval_ms * 0.4,
    )


def _ring_deployment(brokers: int, seed: int, ping_interval_ms: float):
    """A ring of ``brokers`` brokers with the campaign ping policy.

    The codec is pinned to ``json`` for the same reason the chaos
    scenarios pin it: campaign snapshots are compared byte-for-byte and
    wire sizes feed sampled latencies.
    """
    from repro import build_deployment

    if brokers < 2:
        raise ConfigurationError(f"need at least 2 brokers, got {brokers}")
    ids = [f"b{i + 1}" for i in range(brokers)]
    return build_deployment(
        broker_ids=ids,
        seed=seed,
        ping_policy=_ping_policy(ping_interval_ms),
        extra_links=[(ids[0], ids[-1])] if brokers > 2 else [],
        codec="json",
    )


def _recovery_block(dep) -> dict:
    """MTTR distribution from ``trace.recovery_ms`` (count, moments, pXX)."""
    histogram = dep.metrics.snapshot()["histograms"].get("trace.recovery_ms")
    if not histogram or not histogram.get("count"):
        return {"count": 0}
    return {
        "count": histogram["count"],
        "mean_ms": round(histogram["mean"], 3),
        "min_ms": round(histogram["min"], 3),
        "max_ms": round(histogram["max"], 3),
        "p50_ms": round(histogram["p50"], 3),
        "p90_ms": round(histogram["p90"], 3),
        "p99_ms": round(histogram["p99"], 3),
    }


def _availability_block(dep, entities: int, window_ms: float) -> dict:
    """Availability envelope: measured downtime over the tracked window.

    Downtime is the sum of completed detection→re-registration windows
    (``trace.recovery_ms``); the envelope divides it by the total tracked
    entity-time.  An entity still down at end of run contributes nothing
    to the histogram, so ``unrecovered`` is reported alongside to keep
    the envelope honest.
    """
    histogram = dep.metrics.snapshot()["histograms"].get("trace.recovery_ms")
    downtime_ms = 0.0
    if histogram and histogram.get("count"):
        downtime_ms = histogram["count"] * histogram["mean"]
    total_ms = entities * window_ms
    detected = dep.metrics.counter_value("trace.recovery.detected")
    completed = dep.metrics.counter_value("trace.recovery.completed")
    return {
        "window_ms": window_ms,
        "downtime_ms": round(downtime_ms, 3),
        "availability_pct": round(100.0 * (1.0 - downtime_ms / total_ms), 4),
        "unrecovered": detected - completed,
    }


def _detection_block(dep) -> dict:
    """FAILED-verdict latency distribution (``tracker.detection.latency_ms``)."""
    histogram = dep.metrics.snapshot()["histograms"].get(
        "tracker.detection.latency_ms"
    )
    if not histogram or not histogram.get("count"):
        return {"count": 0}
    return {
        "count": histogram["count"],
        "mean_ms": round(histogram["mean"], 3),
        "max_ms": round(histogram["max"], 3),
    }


def _counters(dep) -> dict:
    """The pinned campaign counter set, read from the shared registry."""
    return {name: dep.metrics.counter_value(name) for name in CAMPAIGN_COUNTERS}


def _churn_plan(entities: list[str], params: dict) -> FaultPlan:
    """The mobile churn schedule: staggered crash/rejoin cycles per entity."""
    events = []
    period = float(params["churn_period_ms"])
    offline = float(params["offline_ms"])
    stagger = period / max(len(entities), 1) / 2.0
    for cycle in range(int(params["churn_cycles"])):
        for position, entity_id in enumerate(entities):
            events.append(
                FaultEvent(
                    kind=FaultKind.ENTITY_CRASH,
                    at_ms=10_000.0 + cycle * period + position * stagger,
                    target=entity_id,
                    duration_ms=offline,
                )
            )
    if float(params["loss"]) > 0.0:
        events.append(
            FaultEvent(
                kind=FaultKind.PACKET_LOSS,
                at_ms=5_000.0,
                target="b1",
                duration_ms=float(params["duration_ms"]) - 10_000.0,
                loss_probability=float(params["loss"]),
            )
        )
    if float(params["delay_ms"]) > 0.0:
        events.append(
            FaultEvent(
                kind=FaultKind.DELAY_SPIKE,
                at_ms=5_000.0,
                target="b1",
                duration_ms=float(params["duration_ms"]) - 10_000.0,
                extra_delay_ms=float(params["delay_ms"]),
            )
        )
    return FaultPlan(name="campaign-churn", events=tuple(events))


def _bootstrap_tracing(dep, entities: int):
    """Start ``entities`` traced entities round-robin and one tracker.

    Returns ``(entity_ids, tracker)`` with tracking active from
    ``_TRACK_AT_MS``.
    """
    ids = [f"e{i:02d}" for i in range(entities)]
    broker_ids = list(dep.managers)
    for position, entity_id in enumerate(ids):
        entity = dep.add_traced_entity(entity_id)
        entity.start(broker_ids[position % len(broker_ids)])
    tracker = dep.add_tracker("campaign-tracker")
    tracker.interest_refresh_ms = 0.0
    tracker.connect(broker_ids[-1])
    dep.sim.run(until=_TRACK_AT_MS)
    for entity_id in ids:
        tracker.track(entity_id)
    return ids, tracker


def run_churn_mobile(params: dict, seed: int) -> dict:
    """Run one churn-mobile point: seeded churn plus optional loss/delay."""
    reset_message_ids()
    params = workload_family("churn-mobile").resolve(params)
    duration_ms = float(params["duration_ms"])
    dep = _ring_deployment(
        int(params["brokers"]), seed, float(params["ping_interval_ms"])
    )
    entity_ids, tracker = _bootstrap_tracing(dep, int(params["entities"]))
    controller = FaultController(dep, _churn_plan(entity_ids, params))
    controller.start()
    dep.sim.run(until=duration_ms)
    _probe(dep)
    return {
        "counters": _counters(dep),
        "faults_injected": dep.metrics.counter_value(
            "faults.injected.entity_crash"
        )
        + dep.metrics.counter_value("faults.injected.packet_loss")
        + dep.metrics.counter_value("faults.injected.delay_spike"),
        "recovery": _recovery_block(dep),
        "availability": _availability_block(
            dep, int(params["entities"]), duration_ms - _TRACK_AT_MS
        ),
        "detection": _detection_block(dep),
        "failed_verdicts": len(tracker.traces_of_type(TraceType.FAILED)),
    }


def _attack_deployment(params: dict, seed: int):
    """Shared §5.2 setup: victim on b1, tracker on the last broker."""
    dep = _ring_deployment(
        int(params["brokers"]), seed, float(params["ping_interval_ms"])
    )
    victim = dep.add_traced_entity("svc")
    tracker = dep.add_tracker("campaign-tracker")
    tracker.interest_refresh_ms = 0.0
    tracker.connect(list(dep.managers)[-1])
    victim.start("b1")
    dep.sim.run(until=_TRACK_AT_MS)
    tracker.track("svc")
    dep.sim.run(until=8_000.0)  # token delivered, tracing warm
    return dep, victim, tracker


def _defense_block(dep, attacker_broker: str) -> dict:
    """Defense outcome counters for an adversarial point."""
    return {
        "rejected": dep.metrics.counter_value("broker.msgs.rejected"),
        "violations": dep.metrics.counter_value("broker.violations"),
        "terminated": dep.monitor.count("dos.terminated"),
        "dropped_blacklisted": dep.monitor.count("dos.dropped_blacklisted"),
        "attacker_blacklisted": dep.network.broker(
            attacker_broker
        ).is_blacklisted("attacker"),
    }


def run_unauthorized_publisher(params: dict, seed: int) -> dict:
    """§5.2 spurious-trace attack: tokenless flood plus one forged token."""
    from repro.security.dos import SpuriousTracePublisher

    reset_message_ids()
    params = workload_family("unauthorized-publisher").resolve(params)
    dep, victim, tracker = _attack_deployment(params, seed)
    attacker = SpuriousTracePublisher(
        dep.sim, "attacker", dep.network, dep.network.machine("machine-attacker")
    )
    attacker_broker = list(dep.managers)[1 % len(dep.managers)]
    attacker.connect(attacker_broker)
    trace_topic = victim.advertisement.trace_topic
    dep.sim.process(
        attacker.inject_with_forged_token(
            trace_topic, "svc", victim.advertisement
        ),
        name="attack.forged",
    )
    dep.sim.process(
        attacker.flood(
            trace_topic, "svc", count=int(params["flood"]), spacing_ms=200.0
        ),
        name="attack.flood",
    )
    dep.sim.run(until=float(params["duration_ms"]))
    _probe(dep)
    return {
        "counters": _counters(dep),
        "attack": {"attempts": attacker.attempts},
        "defense": _defense_block(dep, attacker_broker),
        "forged_failed_seen": len(tracker.traces_of_type(TraceType.FAILED)),
        "alls_well_received": len(tracker.traces_of_type(TraceType.ALLS_WELL)),
    }


def run_token_replay_flood(params: dict, seed: int) -> dict:
    """Replay attack: re-publish a captured, validly signed trace frame.

    A sniffer subscribes to the victim's ``AllUpdates`` topic and
    captures one genuine broker-published ALLS_WELL (body, signature
    and token are all valid — the worst replay case).  The attacker
    then re-publishes the identical frame ``flood`` times.  The defense
    is §4.1's Constrained topics: trace publication topics are
    broker-publish-only, so the first broker rejects every replayed
    frame *before any signature or token verification* — the snapshot's
    ``token_verifies_during_flood`` stays zero — and after three
    violations the attacker is terminated and blacklisted (§5.2).
    """
    reset_message_ids()
    params = workload_family("token-replay-flood").resolve(params)
    dep, victim, tracker = _attack_deployment(params, seed)

    captured: list = []
    sniffer = dep.network.add_client(
        "sniffer", machine_name="machine-sniffer"
    )
    sniffer_broker = list(dep.managers)[1 % len(dep.managers)]
    dep.network.connect_client(sniffer, sniffer_broker)
    sniffer.subscribe(
        victim.topics.all_updates.canonical,
        lambda message: captured.append(message),
    )
    dep.sim.run(until=14_000.0)  # let a genuine ALLS_WELL cross the sniffer

    replays = 0
    if captured:
        frame = captured[0]
        verify_before = dep.metrics.counter_value("crypto.ops.token_verify")
        attacker = dep.network.add_client(
            "attacker", machine_name="machine-attacker"
        )
        dep.network.connect_client(attacker, sniffer_broker)
        for _ in range(int(params["flood"])):
            attacker.publish(
                frame.topic,
                frame.body,
                signature=frame.signature,
                auth_token=frame.auth_token,
                encrypted=frame.encrypted,
            )
            replays += 1
            dep.sim.run(until=dep.sim.now + 100.0)
    else:  # pragma: no cover - bootstrap always publishes within 14 s
        verify_before = 0
    dep.sim.run(until=float(params["duration_ms"]))
    _probe(dep)
    return {
        "counters": _counters(dep),
        "attack": {
            "captured": len(captured),
            "replays": replays,
            "token_verifies_during_flood": dep.metrics.counter_value(
                "crypto.ops.token_verify"
            )
            - verify_before,
        },
        "defense": {
            "rejected_constrained": dep.monitor.count(
                "messages.rejected_constrained"
            ),
            "violations": dep.monitor.count("dos.violations"),
            "terminated": dep.monitor.count("dos.terminated"),
            "dropped_blacklisted": dep.monitor.count("dos.dropped_blacklisted"),
        },
    }


def run_malicious_termination(params: dict, seed: int) -> dict:
    """§5.2 under churn: forged FAILED floods race a real churn cycle.

    The victim genuinely churns (crash + rejoin via the fault
    controller) while an attacker floods forged FAILED traces trying to
    bury the real lifecycle.  The defense invariants the snapshot
    captures: every forged frame is rejected at the first broker, the
    attacker is terminated, the churn recovery still completes, and the
    verifying tracker sees exactly the genuine FAILED verdicts.
    """
    from repro.security.dos import SpuriousTracePublisher

    reset_message_ids()
    params = workload_family("malicious-termination").resolve(params)
    dep, victim, tracker = _attack_deployment(params, seed)
    churn = FaultPlan(
        name="campaign-malicious-termination",
        events=tuple(
            FaultEvent(
                kind=FaultKind.ENTITY_CRASH,
                at_ms=15_000.0 + cycle * float(params["churn_period_ms"]),
                target="svc",
                duration_ms=float(params["offline_ms"]),
            )
            for cycle in range(int(params["churn_cycles"]))
        ),
    )
    controller = FaultController(dep, churn)
    controller.start()
    attacker = SpuriousTracePublisher(
        dep.sim, "attacker", dep.network, dep.network.machine("machine-attacker")
    )
    attacker_broker = list(dep.managers)[1 % len(dep.managers)]
    attacker.connect(attacker_broker)
    dep.sim.process(
        attacker.flood(
            victim.advertisement.trace_topic,
            "svc",
            count=int(params["flood"]),
            spacing_ms=500.0,
        ),
        name="attack.termination-flood",
    )
    dep.sim.run(until=float(params["duration_ms"]))
    _probe(dep)
    return {
        "counters": _counters(dep),
        "attack": {"attempts": attacker.attempts},
        "defense": _defense_block(dep, attacker_broker),
        "recovery": _recovery_block(dep),
        "genuine_churn_cycles": int(params["churn_cycles"]),
        "failed_verdicts_seen": len(tracker.traces_of_type(TraceType.FAILED)),
    }


def run_baseline_gossip(params: dict, seed: int) -> dict:
    """Gossip failure detection (§7 / Ref [7]) on the campaign grid."""
    from repro.baselines.gossip import GossipFailureDetector
    from repro.sim.engine import Simulator

    params = workload_family("baseline-gossip").resolve(params)
    population = int(params["entities"]) + 1  # victim + watchers, like tracing
    sim = Simulator()
    detector = GossipFailureDetector(
        sim,
        population,
        gossip_interval_ms=float(params["ping_interval_ms"]) * 2.0,
        fail_timeout_ms=float(params["ping_interval_ms"]) * 16.0,
        fanout=min(2, population - 1),
        seed=seed,
    )
    detector.start()
    sim.run(until=15_000.0)
    crash_at = sim.now
    detector.crash(0)
    sim.run(until=crash_at + float(params["duration_ms"]))
    times = detector.detection_times_for(0)
    return {
        "population": population,
        "messages_sent": detector.messages_sent,
        "msgs_per_s": round(detector.messages_sent / (sim.now / 1000.0), 3),
        "detect_first_ms": round(times[0] - crash_at, 3) if times else None,
        "detect_last_ms": round(times[-1] - crash_at, 3) if times else None,
        "detection_spread_ms": round(times[-1] - times[0], 3) if times else None,
        "all_live_nodes_suspect": detector.all_live_nodes_suspect(0),
    }


def run_baseline_allpairs(params: dict, seed: int) -> dict:
    """All-pairs heartbeating (§1) on the campaign grid."""
    from repro.baselines.allpairs import AllPairsHeartbeatSystem
    from repro.sim.engine import Simulator

    params = workload_family("baseline-allpairs").resolve(params)
    population = int(params["entities"]) + 1
    sim = Simulator()
    system = AllPairsHeartbeatSystem(
        sim,
        population,
        heartbeat_interval_ms=float(params["ping_interval_ms"]) * 2.0,
        failure_timeout_ms=float(params["ping_interval_ms"]) * 7.0,
        seed=seed,
    )
    system.start()
    sim.run(until=15_000.0)
    crash_at = sim.now
    system.crash(0)
    sim.run(until=crash_at + float(params["duration_ms"]))
    times = system.detection_times_for(0)
    return {
        "population": population,
        "messages_sent": system.messages_sent,
        "msgs_per_s": round(system.messages_sent / (sim.now / 1000.0), 3),
        "detect_first_ms": round(times[0] - crash_at, 3) if times else None,
        "detect_last_ms": round(times[-1] - crash_at, 3) if times else None,
        "detection_spread_ms": round(times[-1] - times[0], 3) if times else None,
    }


#: Parameters every tracing-deployment family shares.
_COMMON_DEFAULTS = {
    "brokers": 3,
    "ping_interval_ms": 500.0,
    "duration_ms": 75_000.0,
}

#: The workload-family registry (docs/CAMPAIGNS.md documents each one).
WORKLOADS: dict[str, WorkloadFamily] = {
    family.name: family
    for family in (
        WorkloadFamily(
            name="churn-mobile",
            kind="protocol",
            description=(
                "mobile-trace churn: entities leave and rejoin on a "
                "staggered schedule, optionally under loss/delay windows"
            ),
            accepts=frozenset(
                {
                    "brokers",
                    "entities",
                    "churn_cycles",
                    "churn_period_ms",
                    "offline_ms",
                    "loss",
                    "delay_ms",
                    "ping_interval_ms",
                    "duration_ms",
                }
            ),
            defaults={
                **_COMMON_DEFAULTS,
                "entities": 2,
                "churn_cycles": 1,
                "churn_period_ms": 25_000.0,
                "offline_ms": 8_000.0,
                "loss": 0.0,
                "delay_ms": 0.0,
            },
            run=run_churn_mobile,
        ),
        WorkloadFamily(
            name="unauthorized-publisher",
            kind="adversarial",
            description=(
                "§5.2 spurious-trace attack: tokenless + forged-token "
                "floods, discarded and terminated by the first broker"
            ),
            accepts=frozenset(
                {"brokers", "flood", "ping_interval_ms", "duration_ms"}
            ),
            defaults={**_COMMON_DEFAULTS, "duration_ms": 40_000.0, "flood": 10},
            run=run_unauthorized_publisher,
        ),
        WorkloadFamily(
            name="token-replay-flood",
            kind="adversarial",
            description=(
                "replay attack: a captured validly-signed frame is "
                "re-published; §4.1 constrained topics reject it before "
                "any crypto and the attacker is terminated"
            ),
            accepts=frozenset(
                {"brokers", "flood", "ping_interval_ms", "duration_ms"}
            ),
            defaults={**_COMMON_DEFAULTS, "duration_ms": 40_000.0, "flood": 10},
            run=run_token_replay_flood,
        ),
        WorkloadFamily(
            name="malicious-termination",
            kind="adversarial",
            description=(
                "§5.2 under churn: forged FAILED floods race a genuine "
                "churn cycle; recovery completes, forgeries never land"
            ),
            accepts=frozenset(
                {
                    "brokers",
                    "flood",
                    "churn_cycles",
                    "churn_period_ms",
                    "offline_ms",
                    "ping_interval_ms",
                    "duration_ms",
                }
            ),
            defaults={
                **_COMMON_DEFAULTS,
                "flood": 10,
                "churn_cycles": 1,
                "churn_period_ms": 25_000.0,
                "offline_ms": 8_000.0,
            },
            run=run_malicious_termination,
        ),
        WorkloadFamily(
            name="baseline-gossip",
            kind="baseline",
            description=(
                "gossip failure detection (Ref [7]) on the same grid, "
                "for the frontier comparison tables"
            ),
            accepts=frozenset({"entities", "ping_interval_ms", "duration_ms"}),
            defaults={
                "entities": 2,
                "ping_interval_ms": 500.0,
                "duration_ms": 60_000.0,
            },
            run=run_baseline_gossip,
        ),
        WorkloadFamily(
            name="baseline-allpairs",
            kind="baseline",
            description=(
                "all-pairs heartbeating (§1) on the same grid, for the "
                "frontier comparison tables"
            ),
            accepts=frozenset({"entities", "ping_interval_ms", "duration_ms"}),
            defaults={
                "entities": 2,
                "ping_interval_ms": 500.0,
                "duration_ms": 60_000.0,
            },
            run=run_baseline_allpairs,
        ),
    )
}


def workload_family(name: str) -> WorkloadFamily:
    """Look up a registered family; raises with the known names otherwise."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload family {name!r}; known: "
            f"{', '.join(sorted(WORKLOADS))}"
        ) from None
