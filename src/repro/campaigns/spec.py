"""Declarative campaign specifications and their deterministic expansion.

A :class:`CampaignSpec` is data, exactly like a
:class:`~repro.faults.plan.FaultPlan`: it names *what* to sweep (axes),
*which* workload families to run over the grid (plus baseline families
for frontier comparisons), and *how many* seeded repetitions each grid
cell gets.  :func:`expand` turns a spec into an ordered, fully explicit
run matrix of :class:`CampaignPoint` records — the expansion is pure and
deterministic, so the same spec and base seed always produce the same
matrix, which is what lets CI gate a committed campaign snapshot
byte-for-byte (docs/CAMPAIGNS.md).

Baseline families usually accept only a subset of the swept axes (a
gossip detector has no broker count); expansion projects the grid onto
each family's accepted axes and de-duplicates, so baselines run *the
same grid* without repeating identical work for axes they ignore.
"""

from __future__ import annotations

import itertools
import json
import pathlib
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ValidationError

#: Axis values must stay JSON scalars so specs and snapshots round-trip.
_SCALAR_TYPES = (int, float, str, bool)


@dataclass(frozen=True, slots=True)
class Axis:
    """One swept parameter: a name and its ordered list of values."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("axis needs a name")
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValidationError(f"axis {self.name!r} needs at least one value")
        for value in self.values:
            if not isinstance(value, _SCALAR_TYPES):
                raise ValidationError(
                    f"axis {self.name!r} value {value!r} is not a JSON scalar"
                )


@dataclass(frozen=True, slots=True)
class CampaignSpec:
    """A named, declarative parameter-sweep campaign.

    ``axes`` are swept (cartesian product, in declaration order);
    ``fixed`` parameters apply to every point unchanged.  ``workloads``
    and ``baselines`` name families from
    :mod:`repro.campaigns.workloads`; baselines run the same grid
    projected onto the axes they accept.  ``repetitions`` replicates
    every grid cell at ``base_seed + repetition`` so seed stability is
    part of the sweep itself.
    """

    name: str
    workloads: tuple[str, ...]
    axes: tuple[Axis, ...] = ()
    baselines: tuple[str, ...] = ()
    fixed: dict = field(default_factory=dict)
    repetitions: int = 1
    base_seed: int = 42
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("campaign spec needs a name")
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "axes", tuple(self.axes))
        object.__setattr__(self, "baselines", tuple(self.baselines))
        if not self.workloads:
            raise ConfigurationError(
                f"campaign {self.name!r} needs at least one workload family"
            )
        if self.repetitions < 1:
            raise ValidationError(
                f"repetitions must be >= 1, got {self.repetitions}"
            )
        seen: set[str] = set()
        for axis in self.axes:
            if axis.name in seen:
                raise ValidationError(f"duplicate axis {axis.name!r}")
            seen.add(axis.name)
        for name, value in self.fixed.items():
            if name in seen:
                raise ValidationError(
                    f"{name!r} is both a swept axis and a fixed parameter"
                )
            if not isinstance(value, _SCALAR_TYPES):
                raise ValidationError(
                    f"fixed parameter {name!r} value {value!r} is not a "
                    "JSON scalar"
                )

    def grid_size(self) -> int:
        """Grid cells per family (product of axis lengths)."""
        size = 1
        for axis in self.axes:
            size *= len(axis.values)
        return size

    def to_dict(self) -> dict:
        """JSON-ready spec form; :meth:`from_dict` round-trips it."""
        return {
            "name": self.name,
            "description": self.description,
            "workloads": list(self.workloads),
            "baselines": list(self.baselines),
            "axes": [
                {"name": axis.name, "values": list(axis.values)}
                for axis in self.axes
            ],
            "fixed": dict(self.fixed),
            "repetitions": self.repetitions,
            "base_seed": self.base_seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        """Parse a spec dict; raises on malformed or non-scalar input."""
        try:
            return cls(
                name=str(data["name"]),
                description=str(data.get("description", "")),
                workloads=tuple(str(w) for w in data["workloads"]),
                baselines=tuple(str(b) for b in data.get("baselines", ())),
                axes=tuple(
                    Axis(name=str(axis["name"]), values=tuple(axis["values"]))
                    for axis in data.get("axes", ())
                ),
                fixed=dict(data.get("fixed", {})),
                repetitions=int(data.get("repetitions", 1)),
                base_seed=int(data.get("base_seed", 42)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(f"malformed campaign spec: {exc}") from exc


def load_spec(path: str | pathlib.Path) -> CampaignSpec:
    """Load and validate a JSON campaign spec file."""
    path = pathlib.Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigurationError(f"cannot read campaign spec {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValidationError(f"campaign spec {path} is not valid JSON: {exc}") from exc
    return CampaignSpec.from_dict(data)


@dataclass(frozen=True, slots=True)
class CampaignPoint:
    """One fully resolved run: a family, its parameters, and a seed."""

    index: int
    family: str
    kind: str  # "workload" | "baseline"
    params: dict
    seed: int
    repetition: int

    def label(self) -> str:
        """Short stable label used in reports and progress lines."""
        parts = [f"{k}={self.params[k]}" for k in sorted(self.params)]
        return f"{self.family}[{', '.join(parts)}] seed={self.seed}"


def expand(spec: CampaignSpec, seed: int | None = None) -> tuple[CampaignPoint, ...]:
    """Expand a spec into its deterministic, ordered run matrix.

    Point order is: workload families in declaration order, then baseline
    families; within a family, the cartesian product of axis values in
    axis order; within a cell, repetitions at ``seed + repetition``.
    ``seed`` overrides the spec's ``base_seed`` (the CLI's ``--seed``).

    Every family must be registered.  Parameters a family does not
    accept — swept axes *and* fixed parameters alike — are projected
    away: the family runs the de-duplicated sub-grid of the parameters
    it understands, so baselines sweep the same campaign without
    repeating identical work for axes they ignore.  (A parameter no
    family accepts is a spec bug; :func:`unused_parameters` surfaces
    those, and reports footnote per-family projections.)
    """
    from repro.campaigns.workloads import workload_family

    base_seed = spec.base_seed if seed is None else seed
    points: list[CampaignPoint] = []
    families = [(name, "workload") for name in spec.workloads]
    families += [(name, "baseline") for name in spec.baselines]
    for family_name, kind in families:
        family = workload_family(family_name)
        accepted_axes = [a for a in spec.axes if a.name in family.accepts]
        seen_cells: set[tuple] = set()
        for combo in itertools.product(*(a.values for a in accepted_axes)):
            cell = tuple(zip((a.name for a in accepted_axes), combo))
            if cell in seen_cells:
                continue
            seen_cells.add(cell)
            params = {
                name: value
                for name, value in spec.fixed.items()
                if name in family.accepts
            }
            params.update(cell)
            for repetition in range(spec.repetitions):
                points.append(
                    CampaignPoint(
                        index=len(points),
                        family=family_name,
                        kind=kind,
                        params=params,
                        seed=base_seed + repetition,
                        repetition=repetition,
                    )
                )
    return tuple(points)


def ignored_axes(spec: CampaignSpec, family_name: str) -> tuple[str, ...]:
    """Swept axes a family projects away (for report footnotes)."""
    from repro.campaigns.workloads import workload_family

    family = workload_family(family_name)
    return tuple(a.name for a in spec.axes if a.name not in family.accepts)


def unused_parameters(spec: CampaignSpec) -> tuple[str, ...]:
    """Spec parameters (axes or fixed) that *no* named family accepts.

    Projection makes per-family mismatches silent by design, so this is
    the lint for outright typos: a parameter every family projects away
    sweeps nothing and is almost certainly a spelling mistake.
    """
    from repro.campaigns.workloads import workload_family

    accepted: set[str] = set()
    for name in (*spec.workloads, *spec.baselines):
        accepted |= workload_family(name).accepts
    names = [axis.name for axis in spec.axes] + list(spec.fixed)
    return tuple(n for n in names if n not in accepted)
