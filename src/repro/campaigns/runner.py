"""Seeded campaign execution: sequential or subprocess-parallel points.

:func:`run_campaign` executes the matrix :func:`~repro.campaigns.spec.expand`
produces.  The default is sequential and in-process — every family
resets the message-id stream and builds its own deployment, so points
are isolated without process boundaries.  With ``parallel > 1`` each
point runs in its own subprocess (``repro campaign run --point I``),
the same isolation trick :mod:`benchmarks.bench_scale` uses, and the
parent reassembles results *in matrix order* so the snapshot is
byte-identical to a sequential run.

The campaign snapshot (:func:`campaign_snapshot`) is deliberately free
of wall-clock, RSS, or host-dependent values: CI gates the committed
smoke snapshot byte-for-byte with :func:`compare_to_snapshot`, exactly
like the chaos and scale seeds (docs/CAMPAIGNS.md).
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

from repro.campaigns.spec import CampaignPoint, CampaignSpec, expand
from repro.errors import BenchmarkError, ConfigurationError
from repro.obs.registry import MetricsRegistry

#: Campaign-engine instruments (documented in docs/OBSERVABILITY.md).
_POINTS_TOTAL = "campaign.points.total"
_POINTS_COMPLETED = "campaign.points.completed"
_POINTS_FAILED = "campaign.points.failed"


def run_point(point: CampaignPoint) -> dict:
    """Execute one campaign point and return its result record."""
    from repro.campaigns.workloads import workload_family

    family = workload_family(point.family)
    metrics = family.run(dict(point.params), point.seed)
    return {
        "index": point.index,
        "family": point.family,
        "kind": point.kind,
        "params": dict(point.params),
        "seed": point.seed,
        "repetition": point.repetition,
        "metrics": metrics,
    }


def _run_point_subprocess(
    spec_path: pathlib.Path, point: CampaignPoint, seed: int
) -> dict:
    """Run one point via ``repro campaign run --point`` in a child process."""
    src_dir = pathlib.Path(__file__).resolve().parents[2]
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "campaign",
            "run",
            "--spec",
            str(spec_path),
            "--seed",
            str(seed),
            "--point",
            str(point.index),
            "--json",
        ],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(src_dir)},
    )
    if proc.returncode != 0:
        raise BenchmarkError(
            f"campaign point {point.index} ({point.label()}) failed:\n"
            f"{proc.stderr.strip()}"
        )
    return json.loads(proc.stdout)


def run_campaign(
    spec: CampaignSpec,
    seed: int | None = None,
    parallel: int = 1,
    spec_path: str | pathlib.Path | None = None,
    registry: MetricsRegistry | None = None,
    progress=None,
) -> dict:
    """Run every point of ``spec`` and return the campaign snapshot.

    ``seed`` overrides the spec's base seed.  ``parallel > 1`` fans
    points out over that many subprocesses (requires ``spec_path``, the
    file to hand to children); results are reassembled in matrix order
    so the snapshot is identical to a sequential run.  ``registry``
    receives the ``campaign.*`` engine instruments; ``progress`` is an
    optional callable invoked with one line per completed point.
    """
    if parallel < 1:
        raise ConfigurationError(f"parallel must be >= 1, got {parallel}")
    if parallel > 1 and spec_path is None:
        raise ConfigurationError(
            "parallel campaign execution needs the spec file path "
            "(children re-load the spec)"
        )
    registry = registry if registry is not None else MetricsRegistry()
    points = expand(spec, seed=seed)
    registry.gauge(_POINTS_TOTAL).set(len(points))
    effective_seed = spec.base_seed if seed is None else seed

    results: list[dict | None] = [None] * len(points)

    def _finish(point: CampaignPoint, record: dict) -> None:
        results[point.index] = record
        registry.counter(_POINTS_COMPLETED).inc()
        if progress is not None:
            progress(f"[{point.index + 1}/{len(points)}] {point.label()}")

    if parallel == 1:
        for point in points:
            try:
                record = run_point(point)
            except Exception:
                registry.counter(_POINTS_FAILED).inc()
                raise
            _finish(point, record)
    else:
        spec_file = pathlib.Path(spec_path)
        with ThreadPoolExecutor(max_workers=parallel) as pool:
            futures = {
                pool.submit(
                    _run_point_subprocess, spec_file, point, effective_seed
                ): point
                for point in points
            }
            for future, point in futures.items():
                try:
                    record = future.result()
                except Exception:
                    registry.counter(_POINTS_FAILED).inc()
                    raise
                _finish(point, record)

    return campaign_snapshot(spec, effective_seed, [r for r in results if r])


def campaign_snapshot(
    spec: CampaignSpec, seed: int, results: list[dict]
) -> dict:
    """Assemble the deterministic campaign snapshot (spec + results).

    Results are keyed back to the spec so the report generator — and a
    human reading the committed JSON — can reconstruct the full grid
    without re-expanding.  Only deterministic values are included.
    """
    families: dict[str, dict] = {}
    for record in results:
        family = families.setdefault(
            record["family"], {"kind": record["kind"], "points": 0}
        )
        family["points"] += 1
    return {
        "campaign": spec.name,
        "description": spec.description,
        "seed": seed,
        "spec": spec.to_dict(),
        "families": families,
        "point_count": len(results),
        "results": results,
    }


def render_snapshot(snapshot: dict) -> str:
    """Canonical byte-stable JSON form of a campaign snapshot."""
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"


def compare_to_snapshot(live: dict, seed: dict) -> list[str]:
    """Findings where a live snapshot diverges from a committed seed.

    Empty list means byte-identical payloads.  Findings are coarse on
    purpose — point-level, not leaf-level — because any drift at all
    fails the gate; the diff itself is what the developer inspects.
    """
    findings: list[str] = []
    for field in ("campaign", "seed", "point_count"):
        if live.get(field) != seed.get(field):
            findings.append(
                f"{field}: live={live.get(field)!r} seed={seed.get(field)!r}"
            )
    if live.get("spec") != seed.get("spec"):
        findings.append("spec block differs")
    live_results = live.get("results", [])
    seed_results = seed.get("results", [])
    for index in range(max(len(live_results), len(seed_results))):
        live_record = live_results[index] if index < len(live_results) else None
        seed_record = seed_results[index] if index < len(seed_results) else None
        if live_record == seed_record:
            continue
        label = (live_record or seed_record or {}).get("family", "?")
        findings.append(f"point {index} ({label}) differs")
    return findings
