"""repro — reproduction of "A Scalable Approach for the Secure and
Authorized Tracking of the Availability of Entities in Distributed Systems"
(Pallickara, Ekanayake & Fox, IPDPS 2007).

The package implements the paper's full stack in a deterministic
discrete-event simulation: a NaradaBrokering-style pub/sub broker network,
Topic Discovery Nodes, constrained topics, and on top of them the secure
and authorized availability-tracing scheme with its benchmarks.

Quickstart::

    from repro import build_deployment

    dep = build_deployment(broker_ids=["b1", "b2", "b3"])
    entity = dep.add_traced_entity("service-42")
    tracker = dep.add_tracker("watcher-1")
    tracker.connect("b3")
    entity.start("b1")
    dep.sim.run(until=5_000)
    tracker.track("service-42")
    dep.sim.run(until=60_000)
    print(tracker.received)
"""

from repro.deployment import Deployment, build_deployment
from repro.sim.engine import Simulator
from repro.tracing import (
    EntityState,
    InterestCategory,
    TracedEntity,
    Tracker,
    TraceType,
)

__version__ = "1.0.0"

__all__ = [
    "build_deployment",
    "Deployment",
    "Simulator",
    "TracedEntity",
    "Tracker",
    "TraceType",
    "EntityState",
    "InterestCategory",
    "__version__",
]
