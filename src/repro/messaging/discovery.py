"""Broker discovery (Ref [3] of the paper).

Before registering for tracing, an entity "proceeds to securely discover a
valid broker within the broker network" (section 3.2).  We model the
discovery service as a directory that knows the live brokers and answers
queries under a placement policy, charging a modeled round-trip delay.
"""

from __future__ import annotations

import enum
from typing import Generator

from repro.errors import DiscoveryError
from repro.messaging.broker import Broker
from repro.sim.engine import Event, Simulator
from repro.sim.monitor import Monitor


class PlacementPolicy(enum.Enum):
    """How the discovery service picks a broker for a requester."""

    ROUND_ROBIN = "round_robin"
    LEAST_LOADED = "least_loaded"
    FIRST = "first"


class BrokerDiscoveryService:
    """Directory of live brokers with pluggable placement."""

    def __init__(
        self,
        sim: Simulator,
        monitor: Monitor | None = None,
        response_delay_ms: float = 4.0,
    ) -> None:
        self.sim = sim
        self.monitor = monitor or Monitor()
        self.response_delay_ms = response_delay_ms
        self._brokers: dict[str, Broker] = {}
        self._round_robin_index = 0

    def register_broker(self, broker: Broker) -> None:
        """Make a broker discoverable to joining clients."""
        self._brokers[broker.broker_id] = broker

    def deregister_broker(self, broker_id: str) -> None:
        """Remove a broker (e.g. crashed) from the discoverable set."""
        self._brokers.pop(broker_id, None)

    def known_brokers(self) -> list[str]:
        """Ids of every currently discoverable broker, sorted."""
        return sorted(self._brokers)

    def discover(
        self, policy: PlacementPolicy = PlacementPolicy.ROUND_ROBIN
    ) -> Generator[Event, None, Broker]:
        """Process body: resolve one valid broker after the modeled delay."""
        yield self.sim.timeout(self.response_delay_ms)
        self.monitor.increment("broker_discovery.requests")
        if not self._brokers:
            raise DiscoveryError("no live brokers registered")
        ordered = sorted(self._brokers)
        if policy is PlacementPolicy.FIRST:
            chosen = ordered[0]
        elif policy is PlacementPolicy.ROUND_ROBIN:
            chosen = ordered[self._round_robin_index % len(ordered)]
            self._round_robin_index += 1
        elif policy is PlacementPolicy.LEAST_LOADED:
            chosen = min(ordered, key=lambda b: len(self._brokers[b].client_ids))
        else:  # pragma: no cover - exhaustive enum
            raise DiscoveryError(f"unknown policy {policy}")
        return self._brokers[chosen]
