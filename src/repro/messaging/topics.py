"""Topic strings and subscription matching.

Topics are '/'-separated strings, e.g. ``StockQuotes/Companies/Adobe``
(section 2.1).  Subscriptions may use two wildcards:

* ``*`` matches exactly one segment,
* ``>`` as the final segment matches one or more remaining segments
  (JMS-style), which lets a tracker subscribe to every trace type of a
  traced entity at once.

A leading '/' is tolerated on input and stripped in the canonical form,
since the paper writes topics both ways.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import TopicError

WILDCARD_ONE = "*"
WILDCARD_MANY = ">"


class TopicValidationError(TopicError):
    """A topic string violates the syntax rules."""


def split_topic(topic: str) -> list[str]:
    """Split into segments, tolerating a single leading '/'."""
    if not isinstance(topic, str) or not topic:
        raise TopicValidationError(f"topic must be a non-empty string: {topic!r}")
    text = topic[1:] if topic.startswith("/") else topic
    if not text:
        raise TopicValidationError(f"topic has no segments: {topic!r}")
    segments = text.split("/")
    for segment in segments:
        if not segment:
            raise TopicValidationError(f"empty segment in topic {topic!r}")
    return segments


def validate_topic(topic: str, allow_wildcards: bool = False) -> list[str]:
    """Validate and return segments; wildcards only if ``allow_wildcards``."""
    segments = split_topic(topic)
    for index, segment in enumerate(segments):
        if segment in (WILDCARD_ONE, WILDCARD_MANY):
            if not allow_wildcards:
                raise TopicValidationError(
                    f"wildcard {segment!r} not allowed in publish topic {topic!r}"
                )
            if segment == WILDCARD_MANY and index != len(segments) - 1:
                raise TopicValidationError(
                    f"'>' must be the final segment: {topic!r}"
                )
    return segments


@lru_cache(maxsize=4096)
def _cached_segments(topic: str) -> tuple[str, ...]:
    return tuple(split_topic(topic))


def topic_matches(pattern: str, topic: str) -> bool:
    """True if subscription ``pattern`` matches concrete ``topic``."""
    pattern_segments = _cached_segments(pattern)
    topic_segments = _cached_segments(topic)
    for index, pat in enumerate(pattern_segments):
        if pat == WILDCARD_MANY:
            if index != len(pattern_segments) - 1:
                raise TopicValidationError(f"'>' must be final in {pattern!r}")
            return len(topic_segments) > index
        if index >= len(topic_segments):
            return False
        if pat != WILDCARD_ONE and pat != topic_segments[index]:
            return False
    return len(pattern_segments) == len(topic_segments)


@dataclass(frozen=True, slots=True)
class Topic:
    """A validated, canonicalized topic value object."""

    canonical: str

    @classmethod
    def parse(cls, text: str, allow_wildcards: bool = False) -> "Topic":
        """Validate and canonicalize a topic string."""
        segments = validate_topic(text, allow_wildcards)
        return cls("/".join(segments))

    @classmethod
    def of(cls, *segments: str) -> "Topic":
        """Build from segments: ``Topic.of("Availability", "Traces", eid)``."""
        return cls.parse("/".join(segments))

    @property
    def segments(self) -> tuple[str, ...]:
        """The canonical form split into its path segments."""
        return _cached_segments(self.canonical)

    def child(self, *extra: str) -> "Topic":
        """This topic extended by additional segments."""
        return Topic.parse("/".join((self.canonical, *extra)))

    def matches(self, concrete: "Topic | str") -> bool:
        """Treat self as a subscription pattern and test ``concrete``."""
        other = concrete.canonical if isinstance(concrete, Topic) else concrete
        return topic_matches(self.canonical, other)

    def __str__(self) -> str:
        return self.canonical
