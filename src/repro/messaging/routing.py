"""Routing-table computation for the broker graph.

Brokers forward messages toward interested peers along shortest paths.  The
fabric computes, for every broker, a next-hop table via breadth-first search
over the (undirected) broker adjacency graph.  Recomputed whenever topology
changes; O(B * (B + E)) which is fine at simulation scales.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Mapping

from repro.errors import RoutingError

NodeId = Hashable


def bfs_next_hops(
    adjacency: Mapping[NodeId, set[NodeId]], source: NodeId
) -> dict[NodeId, NodeId]:
    """Next-hop table from ``source`` to every reachable node.

    ``result[dest]`` is the neighbor of ``source`` on a shortest path to
    ``dest``.  Deterministic: neighbors are explored in sorted-repr order.
    """
    if source not in adjacency:
        raise RoutingError(f"unknown source node {source!r}")
    next_hop: dict[NodeId, NodeId] = {}
    visited = {source}
    queue: deque[tuple[NodeId, NodeId | None]] = deque()
    for neighbor in sorted(adjacency[source], key=repr):
        visited.add(neighbor)
        next_hop[neighbor] = neighbor
        queue.append((neighbor, neighbor))
    while queue:
        node, first_hop = queue.popleft()
        for neighbor in sorted(adjacency.get(node, ()), key=repr):
            if neighbor not in visited:
                visited.add(neighbor)
                next_hop[neighbor] = first_hop  # type: ignore[assignment]
                queue.append((neighbor, first_hop))
    return next_hop


def all_next_hops(
    adjacency: Mapping[NodeId, set[NodeId]]
) -> dict[NodeId, dict[NodeId, NodeId]]:
    """Next-hop tables for every node."""
    return {node: bfs_next_hops(adjacency, node) for node in adjacency}


def hop_distance(
    adjacency: Mapping[NodeId, set[NodeId]], a: NodeId, b: NodeId
) -> int:
    """Shortest hop count between two brokers (0 if identical)."""
    if a == b:
        return 0
    if a not in adjacency:
        raise RoutingError(f"unknown node {a!r}")
    visited = {a}
    queue: deque[tuple[NodeId, int]] = deque([(a, 0)])
    while queue:
        node, dist = queue.popleft()
        for neighbor in adjacency.get(node, ()):
            if neighbor == b:
                return dist + 1
            if neighbor not in visited:
                visited.add(neighbor)
                queue.append((neighbor, dist + 1))
    raise RoutingError(f"no path from {a!r} to {b!r}")
