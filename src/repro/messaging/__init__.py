"""NaradaBrokering-style publish/subscribe substrate.

A distributed network of cooperating broker nodes routes messages by topic:
producers and consumers never interact directly (section 2).  This package
provides topic syntax and matching, the constrained-topic scheme of section
3.1, the message envelope, broker nodes, the broker network fabric, and the
broker discovery service of Ref [3].
"""

from repro.messaging.topics import Topic, topic_matches, validate_topic, TopicValidationError
from repro.messaging.constrained import (
    AllowedActions,
    ConstrainedTopic,
    Distribution,
    is_constrained,
)
from repro.messaging.message import Message, RoutedFrame
from repro.messaging.matching import SubscriptionIndex
from repro.messaging.broker import Broker
from repro.messaging.client import BrokerClient
from repro.messaging.broker_network import BrokerNetwork
from repro.messaging.discovery import BrokerDiscoveryService

__all__ = [
    "Topic",
    "topic_matches",
    "validate_topic",
    "TopicValidationError",
    "ConstrainedTopic",
    "AllowedActions",
    "Distribution",
    "is_constrained",
    "Message",
    "RoutedFrame",
    "SubscriptionIndex",
    "Broker",
    "BrokerClient",
    "BrokerNetwork",
    "BrokerDiscoveryService",
]
