"""Indexed subscription matching: the segment-trie ``SubscriptionIndex``.

A broker answers "who is interested in this concrete topic?" for every
message it routes (section 2).  The naive answer — re-testing every
subscription pattern with :func:`~repro.messaging.topics.topic_matches` —
costs O(patterns) per message and dominated broker CPU once deployments
grew past a handful of subscriptions.  This module replaces those linear
scans with a trie keyed by topic segments, answering match queries in
O(topic depth) independent of how many patterns are stored.

One index instance holds all three kinds of interest a broker tracks:

* **client subscriptions** — connected entities, delivered over links,
* **broker-local handlers** — the broker's own subscriptions (sessions),
* **remote interest** — peer brokers with subscribers for a pattern.

Wildcards follow the topic grammar: ``*`` matches exactly one segment and
a trailing ``>`` matches one or more remaining segments.  Patterns are
canonicalized on insertion (a tolerated leading ``/`` is stripped), so
``/a/b`` and ``a/b`` share one entry.

Lifecycle correctness is part of the contract: every removal prunes
entries and trie nodes that became empty, so a retracted pattern costs
nothing on later messages, and :meth:`SubscriptionIndex.remove_client`
/ :meth:`remove_client_everywhere` report exactly which patterns lost
their last subscriber so the broker can retract interest from its peers.

Determinism: match results are returned in sorted-pattern order and
subscriber lists are sorted, so routing never depends on hash order
(the DET02 contract); callers that want unbiased fan-out shuffle with a
seeded stream, as :meth:`Broker._deliver_local` does.
"""

from __future__ import annotations

import sys
from typing import Callable, Iterable

from repro.messaging.topics import (
    WILDCARD_MANY,
    WILDCARD_ONE,
    split_topic,
    validate_topic,
)
from repro.obs.registry import MetricsRegistry

#: Registry gauge tracking live pattern entries (deployment-wide total).
PATTERNS_GAUGE = "broker.interest.patterns"

#: Registry gauge tracking live first-segment shards (deployment-wide).
SHARDS_GAUGE = "broker.interest.shards"


class PatternEntry:
    """Everything stored for one subscription pattern."""

    __slots__ = ("pattern", "clients", "handlers", "remote")

    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        self.clients: dict[str, bool] = {}
        self.handlers: list[Callable] = []
        self.remote: set[str] = set()

    def is_empty(self) -> bool:
        """No clients, handlers, or remote interest left at all."""
        return not (self.clients or self.handlers or self.remote)

    def has_local(self) -> bool:
        """Any client subscription or broker-local handler?"""
        return bool(self.clients or self.handlers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PatternEntry {self.pattern} clients={sorted(self.clients)} "
            f"handlers={len(self.handlers)} remote={sorted(self.remote)}>"
        )


class _TrieNode:
    """One trie level; children keyed by segment (including ``*``/``>``)."""

    __slots__ = ("children", "entry")

    def __init__(self) -> None:
        self.children: dict[str, _TrieNode] = {}
        self.entry: PatternEntry | None = None


class SubscriptionIndex:
    """Segment trie over subscription patterns with pruning removals.

    The trie is **sharded by first topic segment**: each first segment
    (including the ``*`` and ``>`` wildcards) owns an independent subtrie,
    so a match query touches at most three shards — the topic's literal
    root, ``*`` and ``>`` — regardless of how many root segments exist,
    and a shard whose last pattern is retracted frees its whole subtrie
    at once.  Segment strings are interned on insertion
    (:func:`sys.intern`): at the 100k-entity scale most segments are
    shared constants (``Constrained``, ``Traces``, trace-type suffixes),
    and interning keeps one copy per process instead of one per pattern.
    """

    def __init__(self, metrics: MetricsRegistry | None = None) -> None:
        self._shards: dict[str, _TrieNode] = {}
        self._by_pattern: dict[str, PatternEntry] = {}
        self._metrics = metrics

    # ------------------------------------------------------------ entry access

    @staticmethod
    def canonical(pattern: str) -> str:
        """Canonical spelling of a pattern (leading ``/`` stripped)."""
        return "/".join(split_topic(pattern))

    def _get_or_create(self, pattern: str) -> PatternEntry:
        segments = [sys.intern(s) for s in validate_topic(pattern, allow_wildcards=True)]
        canonical = sys.intern("/".join(segments))
        entry = self._by_pattern.get(canonical)
        if entry is not None:
            return entry
        node = self._shards.get(segments[0])
        if node is None:
            node = self._shards[segments[0]] = _TrieNode()
            if self._metrics is not None:
                self._metrics.gauge(SHARDS_GAUGE).inc()
        for segment in segments[1:]:
            node = node.children.setdefault(segment, _TrieNode())
        entry = PatternEntry(canonical)
        node.entry = entry
        self._by_pattern[canonical] = entry
        if self._metrics is not None:
            self._metrics.gauge(PATTERNS_GAUGE).inc()
        return entry

    def _lookup(self, pattern: str) -> PatternEntry | None:
        return self._by_pattern.get(self.canonical(pattern))

    def _prune_if_empty(self, entry: PatternEntry) -> None:
        """Drop an empty entry and every trie node it leaves childless."""
        if not entry.is_empty():
            return
        del self._by_pattern[entry.pattern]
        if self._metrics is not None:
            self._metrics.gauge(PATTERNS_GAUGE).dec()
        segments = entry.pattern.split("/")
        path = [self._shards[segments[0]]]
        for segment in segments[1:]:
            path.append(path[-1].children[segment])
        path[-1].entry = None
        for depth in range(len(segments) - 1, 0, -1):
            child = path[depth]
            if child.entry is None and not child.children:
                del path[depth - 1].children[segments[depth]]
            else:
                break
        shard = path[0]
        if shard.entry is None and not shard.children:
            del self._shards[segments[0]]
            if self._metrics is not None:
                self._metrics.gauge(SHARDS_GAUGE).dec()

    # --------------------------------------------------------------- mutation

    def add_client(self, pattern: str, client_id: str) -> None:
        """Record a client subscription on ``pattern``."""
        self._get_or_create(pattern).clients[client_id] = True

    def remove_client(self, pattern: str, client_id: str) -> bool:
        """Remove one client subscription; True if it was present."""
        entry = self._lookup(pattern)
        if entry is None or entry.clients.pop(client_id, None) is None:
            return False
        self._prune_if_empty(entry)
        return True

    def remove_client_everywhere(self, client_id: str) -> list[str]:
        """Drop every subscription of ``client_id``.

        Returns the (sorted) patterns that thereby lost their **last**
        local subscriber — exactly the set the broker must retract
        interest for when a client detaches or is terminated.
        """
        orphaned: list[str] = []
        for entry in list(self._by_pattern.values()):
            if entry.clients.pop(client_id, None) is None:
                continue
            if not entry.has_local():
                orphaned.append(entry.pattern)
            self._prune_if_empty(entry)
        return sorted(orphaned)

    def add_handler(self, pattern: str, handler: Callable) -> None:
        """Record a broker-local handler subscription on ``pattern``."""
        self._get_or_create(pattern).handlers.append(handler)

    def remove_handler(self, pattern: str, handler: Callable) -> bool:
        """Remove one handler; True if it was present."""
        entry = self._lookup(pattern)
        if entry is None or handler not in entry.handlers:
            return False
        entry.handlers.remove(handler)
        self._prune_if_empty(entry)
        return True

    def add_remote(self, pattern: str, broker_id: str) -> None:
        """Record a peer broker's interest in ``pattern``."""
        self._get_or_create(pattern).remote.add(broker_id)

    def remove_remote(self, pattern: str, broker_id: str) -> bool:
        """Retract one peer's interest, pruning the entry if it empties."""
        entry = self._lookup(pattern)
        if entry is None or broker_id not in entry.remote:
            return False
        entry.remote.discard(broker_id)
        self._prune_if_empty(entry)
        return True

    # ---------------------------------------------------------------- queries

    def _matching_entries(self, topic: str) -> list[PatternEntry]:
        """Entries whose pattern matches the concrete ``topic``.

        Probes at most three shards — the topic's literal first segment,
        ``*`` and ``>`` — then walks each subtrie once (literal child,
        ``*`` child and a terminal ``>`` child per level), so the cost is
        O(topic depth), not O(stored patterns).  Results come back in
        sorted-pattern order.
        """
        segments = split_topic(topic)
        found: list[PatternEntry] = []

        def collect(node: _TrieNode, index: int) -> None:
            many = node.children.get(WILDCARD_MANY)
            if many is not None and many.entry is not None and index < len(segments):
                found.append(many.entry)
            if index == len(segments):
                if node.entry is not None:
                    found.append(node.entry)
                return
            literal = node.children.get(segments[index])
            if literal is not None:
                collect(literal, index + 1)
            star = node.children.get(WILDCARD_ONE)
            if star is not None:
                collect(star, index + 1)

        # A bare ``>`` pattern lives in its own shard and matches any
        # (non-empty) topic; the grammar keeps ``>`` terminal, so that
        # shard is a single node probed without descending.
        many_shard = self._shards.get(WILDCARD_MANY)
        if many_shard is not None and many_shard.entry is not None and segments:
            found.append(many_shard.entry)
        literal_shard = self._shards.get(segments[0]) if segments else None
        if literal_shard is not None:
            collect(literal_shard, 1)
        star_shard = self._shards.get(WILDCARD_ONE)
        if star_shard is not None and segments:
            collect(star_shard, 1)
        found.sort(key=lambda entry: entry.pattern)
        return found

    def match_patterns(self, topic: str) -> list[str]:
        """Sorted patterns matching ``topic`` (tests / introspection)."""
        return [entry.pattern for entry in self._matching_entries(topic)]

    def match_clients(self, topic: str) -> list[tuple[str, list[str]]]:
        """``(pattern, sorted client ids)`` per matching pattern."""
        return [
            (entry.pattern, sorted(entry.clients))
            for entry in self._matching_entries(topic)
            if entry.clients
        ]

    def match_handlers(self, topic: str) -> list[tuple[str, list[Callable]]]:
        """``(pattern, handlers)`` per matching pattern, handlers in
        registration order; the list is a copy, safe to mutate under."""
        return [
            (entry.pattern, list(entry.handlers))
            for entry in self._matching_entries(topic)
            if entry.handlers
        ]

    def match_remote(self, topic: str, exclude: str | None = None) -> set[str]:
        """Peer brokers with interest in ``topic``."""
        interested: set[str] = set()
        for entry in self._matching_entries(topic):
            interested |= entry.remote
        if exclude is not None:
            interested.discard(exclude)
        return interested

    def client_count(self, topic: str) -> int:
        """Total client subscriptions matching ``topic``."""
        return sum(
            len(entry.clients) for entry in self._matching_entries(topic)
        )

    def has_local_match(self, topic: str) -> bool:
        """Any local consumer (client or handler) for ``topic``?"""
        return any(
            entry.has_local() for entry in self._matching_entries(topic)
        )

    def has_any_match(self, topic: str, exclude_remote: str | None = None) -> bool:
        """Anyone at all — local or a (non-excluded) peer — for ``topic``?"""
        for entry in self._matching_entries(topic):
            if entry.has_local():
                return True
            remote = entry.remote
            if exclude_remote is not None:
                remote = remote - {exclude_remote}
            if remote:
                return True
        return False

    # ----------------------------------------------------------- introspection

    def has_local(self, pattern: str) -> bool:
        """Does this exact pattern still have a local subscriber?"""
        entry = self._lookup(pattern)
        return entry is not None and entry.has_local()

    def clients_for(self, pattern: str) -> list[str]:
        """Client ids subscribed to exactly ``pattern``, sorted."""
        entry = self._lookup(pattern)
        return sorted(entry.clients) if entry is not None else []

    def remote_for(self, pattern: str) -> set[str]:
        """Peer brokers interested in exactly ``pattern``."""
        entry = self._lookup(pattern)
        return set(entry.remote) if entry is not None else set()

    def patterns(self) -> list[str]:
        """Every live pattern in the index, sorted."""
        return sorted(self._by_pattern)

    @property
    def pattern_count(self) -> int:
        """Number of live pattern entries."""
        return len(self._by_pattern)

    @property
    def shard_count(self) -> int:
        """Live first-segment shards (tests assert shard pruning)."""
        return len(self._shards)

    def node_count(self) -> int:
        """Trie nodes currently allocated (shard roots included); tests
        use this to assert that retraction actually prunes."""
        total = len(self._shards)
        stack = list(self._shards.values())
        while stack:
            node = stack.pop()
            total += len(node.children)
            stack.extend(node.children.values())
        return total

    def __len__(self) -> int:
        return len(self._by_pattern)

    def __contains__(self, pattern: str) -> bool:
        return self._lookup(pattern) is not None


def linear_match_patterns(patterns: Iterable[str], topic: str) -> list[str]:
    """Reference implementation: the old linear scan over every pattern.

    Kept for the equivalence test suite, which checks the trie against
    this oracle over randomized corpora.
    """
    from repro.messaging.topics import topic_matches

    return sorted(p for p in patterns if topic_matches(p, topic))
