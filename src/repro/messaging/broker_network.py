"""The broker-network fabric: machines, brokers, links, and routing.

One :class:`BrokerNetwork` owns a simulation's topology.  It creates
machines (with independent RNG streams, calibrated crypto cost models and
NTP-skewed clocks), brokers on those machines, inter-broker links with a
chosen transport profile, and client connections.  Subscription interest is
flooded through the fabric's control plane: every broker learns which peers
have subscribers for which patterns (counted, but charged no data-plane
latency — brokers exchange subscription state continuously in the real
system, off the critical path of trace routing).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.crypto.costmodel import CryptoCostModel, CryptoOp, OpCost, PAPER_CALIBRATION
from repro.errors import ConfigurationError, RoutingError
from repro.messaging.broker import Broker, RoutedFrame
from repro.messaging.client import BrokerClient
from repro.messaging.federation import FederatedInterestPlane, FederationConfig
from repro.messaging.routing import all_next_hops, hop_distance
from repro.sim.engine import Simulator
from repro.sim.machine import Machine
from repro.sim.monitor import Monitor
from repro.sim.random import RandomStreams
from repro.transport.base import TransportProfile
from repro.transport.link import Link
from repro.transport.tcp import TCP_CLUSTER
from repro.util.clock import NTPSkewModel, SkewedClock


class BrokerNetwork:
    """Builder and registry for one simulated deployment."""

    def __init__(
        self,
        sim: Simulator,
        seed: int = 0,
        monitor: Monitor | None = None,
        default_profile: TransportProfile = TCP_CLUSTER,
        cost_calibration: Mapping[CryptoOp, OpCost] | None = None,
        cost_scale: float = 1.0,
        ntp_model: NTPSkewModel | None = None,
        codec: str | None = None,
        federation: FederationConfig | bool | None = None,
        per_direction_link_rng: bool = True,
    ) -> None:
        self.sim = sim
        self.streams = RandomStreams(seed)
        self.monitor = monitor or Monitor()
        self.default_profile = default_profile
        #: Wire codec name for every link this fabric creates; ``None``
        #: falls through to each profile's ``codec`` and then ``json``.
        self.codec = codec
        self._cost_calibration = dict(cost_calibration or PAPER_CALIBRATION)
        self._cost_scale = cost_scale
        self._ntp_model = ntp_model
        #: Jitter-stream derivation for duplex broker links.  ``True``
        #: (the fixed behaviour) gives each direction its own stream;
        #: ``False`` reproduces the historical shared-stream draws that
        #: the ``*_legacy.json`` seed snapshots pin.
        self.per_direction_link_rng = per_direction_link_rng

        #: Summarized-interest control plane (``repro.messaging.federation``);
        #: ``None`` keeps the verbatim per-pattern flooding path.
        self.federation: FederatedInterestPlane | None = None
        if federation:
            config = federation if isinstance(federation, FederationConfig) else None
            self.federation = FederatedInterestPlane(
                monitor=self.monitor, config=config
            )

        self._machines: dict[str, Machine] = {}
        self._brokers: dict[str, Broker] = {}
        self._adjacency: dict[str, set[str]] = {}
        self._clients: dict[str, BrokerClient] = {}
        # edges severed by partition_link, keyed as sorted pairs; kept
        # separate from _adjacency so a crash/recover cycle of either
        # endpoint cannot silently heal a partition (heal_link clears it)
        self._partitioned: set[tuple[str, str]] = set()
        # fabric view of announced interest: pattern -> interested brokers.
        # Kept so brokers that join after a subscription was flooded still
        # learn it (replayed in add_broker), and pruned on retraction.
        # The federated plane keeps its own aggregate state instead.
        self._interest: dict[str, set[str]] = {}

    # ---------------------------------------------------------------- machines

    def machine(self, name: str, cpu_capacity: int | None = None) -> Machine:
        """Get-or-create the machine called ``name``.

        ``cpu_capacity`` applies only on creation (default 4, the paper's
        Xeon hosts); pass a lower value to model a more contended host.
        """
        if name not in self._machines:
            cost_model = CryptoCostModel(
                calibration=self._cost_calibration,
                seed=self.streams.derive_seed(f"cost.{name}"),
                scale=self._cost_scale,
                metrics=self.monitor.metrics,
            )
            if self._ntp_model is not None:
                clock = self._ntp_model.clock_for_node(self.sim.clock)
            else:
                clock = SkewedClock(self.sim.clock, 0.0)
            kwargs = {}
            if cpu_capacity is not None:
                kwargs["cpu_capacity"] = cpu_capacity
            self._machines[name] = Machine(
                sim=self.sim,
                name=name,
                cost_model=cost_model,
                rng=self.streams.stream(f"machine.{name}"),
                clock=clock,
                **kwargs,
            )
        return self._machines[name]

    def machines(self) -> list[Machine]:
        """Every machine in the deployment, sorted by name."""
        return [self._machines[k] for k in sorted(self._machines)]

    # ----------------------------------------------------------------- brokers

    def add_broker(
        self,
        broker_id: str,
        machine_name: str | None = None,
        processing_ms: float | None = None,
    ) -> Broker:
        """Create a broker; by default it gets its own machine."""
        if broker_id in self._brokers:
            raise ConfigurationError(f"duplicate broker id {broker_id!r}")
        machine = self.machine(machine_name or f"machine-{broker_id}")
        kwargs = {}
        if processing_ms is not None:
            kwargs["processing_ms"] = processing_ms
        broker = Broker(
            sim=self.sim,
            broker_id=broker_id,
            machine=machine,
            monitor=self.monitor,
            **kwargs,
        )
        broker.set_interest_announcer(self._announce_interest, self._retract_interest)
        self._brokers[broker_id] = broker
        self._adjacency[broker_id] = set()
        if self.federation is not None:
            # late joiners receive one summary per established peer
            # (fed.summary.replays), not a replay of every pattern
            self.federation.register_broker(broker_id)
            broker.set_federation(self.federation)
        else:
            # replay interest flooded before this broker existed, so a late
            # joiner routes toward established subscribers like everyone else
            for pattern in sorted(self._interest):
                for owner in sorted(self._interest[pattern]):
                    broker.note_remote_interest(pattern, owner)
        self._recompute_routes()
        return broker

    def broker(self, broker_id: str) -> Broker:
        """The broker called ``broker_id``; RoutingError if unknown."""
        try:
            return self._brokers[broker_id]
        except KeyError:
            raise RoutingError(f"unknown broker {broker_id!r}") from None

    def brokers(self) -> list[Broker]:
        """Every broker in the fabric, sorted by id."""
        return [self._brokers[k] for k in sorted(self._brokers)]

    def connect_brokers(
        self, a: str, b: str, profile: TransportProfile | None = None
    ) -> None:
        """Create a duplex link between two brokers and refresh routing."""
        if a == b:
            raise ConfigurationError("cannot link a broker to itself")
        broker_a, broker_b = self.broker(a), self.broker(b)
        prof = profile or self.default_profile
        lo, hi = min(a, b), max(a, b)
        if self.per_direction_link_rng:
            # independent jitter streams per direction: draws on a->b can
            # never perturb the latencies sampled on b->a
            rng_ab = self.streams.stream(f"link.{lo}.{hi}:{a}->{b}")
            rng_ba = self.streams.stream(f"link.{lo}.{hi}:{b}->{a}")
        else:
            # legacy shared stream (both directions interleave draws);
            # kept only so *_legacy.json seed snapshots stay reproducible
            rng_ab = rng_ba = self.streams.stream(f"link.{lo}.{hi}")

        link_ab = Link(
            self.sim, prof,
            receiver=lambda frame: broker_b.receive_from_neighbor(a, frame),
            rng=rng_ab, name=f"{a}->{b}", monitor=self.monitor, codec=self.codec,
        )
        link_ba = Link(
            self.sim, prof,
            receiver=lambda frame: broker_a.receive_from_neighbor(b, frame),
            rng=rng_ba, name=f"{b}->{a}", monitor=self.monitor, codec=self.codec,
        )
        broker_a.attach_neighbor(b, link_ab)
        broker_b.attach_neighbor(a, link_ba)
        self._adjacency[a].add(b)
        self._adjacency[b].add(a)
        self._recompute_routes()

    def build_chain(
        self, broker_ids: Iterable[str], profile: TransportProfile | None = None
    ) -> list[Broker]:
        """Convenience: a linear chain (the paper's Figure 1 topology)."""
        ids = list(broker_ids)
        brokers = [
            self._brokers.get(bid) or self.add_broker(bid) for bid in ids
        ]
        for left, right in zip(ids, ids[1:], strict=False):
            self.connect_brokers(left, right, profile)
        return brokers

    def hop_distance(self, a: str, b: str) -> int:
        """Broker-to-broker hop count over the current topology."""
        return hop_distance(self._adjacency, a, b)

    def _recompute_routes(self) -> None:
        tables = all_next_hops(self._adjacency)
        for broker_id, table in tables.items():
            self._brokers[broker_id].set_routing_table(table)

    # ------------------------------------------------------------------ clients

    def add_client(
        self, client_id: str, machine_name: str | None = None
    ) -> BrokerClient:
        """Create a client endpoint (unconnected) on the named machine."""
        if client_id in self._clients:
            raise ConfigurationError(f"duplicate client id {client_id!r}")
        machine = self.machine(machine_name or f"machine-{client_id}")
        client = BrokerClient(
            sim=self.sim, client_id=client_id, machine=machine, monitor=self.monitor
        )
        self._clients[client_id] = client
        return client

    def client(self, client_id: str) -> BrokerClient:
        """The client endpoint called ``client_id``."""
        return self._clients[client_id]

    def remove_client(self, client_id: str) -> None:
        """Forget a client so its id can be reused (e.g. after migration).

        Beyond disconnecting, this sweeps every broker for leftover
        subscriptions of the departing client and retracts whatever lost
        its last subscriber.  ``disconnect`` alone only purges the
        currently attached broker — a client that hopped brokers, or
        whose broker was failed at detach time, could otherwise leave
        stale fabric-wide interest that attracts traffic forever.
        """
        client = self._clients.pop(client_id, None)
        if client is not None and client.connected:
            client.disconnect()
        for broker_id in sorted(self._brokers):
            self._brokers[broker_id].purge_client_subscriptions(client_id)

    def stale_interest_entries(self, client_id: str | None = None) -> list[str]:
        """Fabric-interest rows with no live local subscriber behind them.

        Diagnostic (tests assert this is empty after ``remove_client``):
        every ``(pattern, owner)`` the control plane still advertises must
        be backed by a local subscription on the owning broker, and if
        ``client_id`` is given, no broker may still index a subscription
        for that client.
        """
        stale: list[str] = []
        if self.federation is not None:
            advertised = [
                (pattern, owner)
                for owner in self.federation.brokers()
                for pattern in self.federation.patterns_of(owner)
            ]
        else:
            advertised = [
                (pattern, owner)
                for pattern in sorted(self._interest)
                for owner in sorted(self._interest[pattern])
            ]
        for pattern, owner in advertised:
            broker = self._brokers.get(owner)
            if broker is None or not broker.subscription_index.has_local(pattern):
                stale.append(f"{pattern} advertised by {owner} with no local subscriber")
        if client_id is not None:
            for broker_id in sorted(self._brokers):
                index = self._brokers[broker_id].subscription_index
                for pattern in index.patterns():
                    if client_id in index.clients_for(pattern):
                        stale.append(
                            f"{pattern} on {broker_id} still lists client {client_id}"
                        )
        return stale

    def connect_client(
        self,
        client: BrokerClient | str,
        broker_id: str,
        profile: TransportProfile | None = None,
    ) -> BrokerClient:
        """Wire a client to a broker with a duplex link."""
        if isinstance(client, str):
            client = self._clients[client]
        broker = self.broker(broker_id)
        prof = profile or self.default_profile
        rng = self.streams.stream(f"clientlink.{client.client_id}")

        to_broker = Link(
            self.sim, prof,
            receiver=lambda msg, c=client.client_id: broker.receive_from_client(c, msg),
            rng=rng, name=f"{client.client_id}->{broker_id}", monitor=self.monitor,
            codec=self.codec,
        )
        to_client = Link(
            self.sim, prof,
            receiver=client._receive,
            rng=rng, name=f"{broker_id}->{client.client_id}", monitor=self.monitor,
            codec=self.codec,
        )
        broker.attach_client(client.client_id, to_client)
        client.attach(broker, to_broker)
        return client

    # ------------------------------------------------------------ failures

    def neighbors_of(self, broker_id: str) -> tuple[str, ...]:
        """Snapshot of a broker's current adjacency (sorted).

        Fault controllers capture this *before* ``fail_broker`` wipes the
        adjacency, so the same neighbor set can be handed back to
        ``recover_broker`` when the fault is reverted.
        """
        self.broker(broker_id)
        return tuple(sorted(self._adjacency[broker_id]))

    def partition_link(self, a: str, b: str) -> None:
        """Sever the ``a``–``b`` adjacency without failing either broker.

        The physical :class:`Link` objects survive (in-flight payloads
        still arrive) but routing stops using the edge, so traffic steers
        around it or becomes unroutable — a network partition, not a crash.
        """
        broker_a, broker_b = self.broker(a), self.broker(b)
        if b not in broker_a.neighbor_links or a not in broker_b.neighbor_links:
            raise RoutingError(f"no link between {a!r} and {b!r}")
        self._partitioned.add((min(a, b), max(a, b)))
        self._adjacency[a].discard(b)
        self._adjacency[b].discard(a)
        self._recompute_routes()

    def heal_link(self, a: str, b: str) -> None:
        """Restore an adjacency removed by :meth:`partition_link`.

        A failed endpoint stays out of the routing graph; healing a link
        to a crashed broker only takes effect once ``recover_broker``
        brings it back.
        """
        broker_a, broker_b = self.broker(a), self.broker(b)
        if b not in broker_a.neighbor_links or a not in broker_b.neighbor_links:
            raise RoutingError(f"no link between {a!r} and {b!r}")
        self._partitioned.discard((min(a, b), max(a, b)))
        if not broker_a.failed and not broker_b.failed:
            self._adjacency[a].add(b)
            self._adjacency[b].add(a)
        self._recompute_routes()

    def is_partitioned(self, a: str, b: str) -> bool:
        """Whether the ``a``–``b`` edge is currently administratively severed."""
        return (min(a, b), max(a, b)) in self._partitioned

    def links_of(self, broker_id: str) -> tuple[Link, ...]:
        """Every directed :class:`Link` touching a broker, both directions.

        Covers inter-broker links (outgoing and the peer's return link)
        and client connections; the fault controller installs loss/delay
        disruptions across this set to degrade a broker's whole vicinity.
        """
        broker = self.broker(broker_id)
        links: list[Link] = []
        for neighbor_id in sorted(broker.neighbor_links):
            links.append(broker.neighbor_links[neighbor_id])
            peer = self._brokers.get(neighbor_id)
            if peer is not None and broker_id in peer.neighbor_links:
                links.append(peer.neighbor_links[broker_id])
        for client_id in broker.client_ids:
            links.append(broker._client_links[client_id])
            client = self._clients.get(client_id)
            if (
                client is not None
                and client.connected
                and client.broker is broker
                and client._link_to_broker is not None
            ):
                links.append(client._link_to_broker)
        return tuple(links)

    def fail_broker(self, broker_id: str) -> None:
        """Take a broker down: it drops traffic and routing steers around it.

        Clients connected to it receive nothing further; they are expected
        to discover a live broker and re-register (section 3.2 / Ref [3]).
        """
        broker = self.broker(broker_id)
        broker.failed = True
        for neighbor in list(self._adjacency[broker_id]):
            self._adjacency[neighbor].discard(broker_id)
        self._adjacency[broker_id] = set()
        self._recompute_routes()

    def recover_broker(self, broker_id: str, neighbors: Iterable[str] = ()) -> None:
        """Bring a failed broker back, reattaching the given neighbor links.

        Edges severed by :meth:`partition_link` stay severed even when
        they appear in ``neighbors``: a partition is an independent fault
        with its own lifetime, and a crash/recover cycle of one endpoint
        must not silently heal it (only :meth:`heal_link` does).  Links
        to still-failed neighbors are likewise skipped — they return when
        *that* broker recovers.
        """
        broker = self.broker(broker_id)
        broker.failed = False
        for neighbor in neighbors:
            # links still exist physically; just restore the adjacency
            if neighbor not in broker.neighbor_links:
                continue
            if (min(broker_id, neighbor), max(broker_id, neighbor)) in self._partitioned:
                continue
            peer = self._brokers.get(neighbor)
            if peer is not None and peer.failed:
                continue
            self._adjacency[broker_id].add(neighbor)
            self._adjacency[neighbor].add(broker_id)
        self._recompute_routes()

    # ------------------------------------------------------------ control plane

    def _announce_interest(self, pattern: str, broker_id: str) -> None:
        """Propagate subscription interest through the control plane.

        Verbatim mode floods the pattern to every broker (one
        ``control.floods`` message per pattern).  Federated mode only
        updates the owner's interest summary; the re-broadcast is batched
        into the next routing epoch by
        :meth:`~repro.messaging.federation.FederatedInterestPlane.flush`,
        which is where ``control.floods`` is counted.
        """
        if self.federation is not None:
            self.federation.announce(pattern, broker_id)
            return
        self._interest.setdefault(pattern, set()).add(broker_id)
        for other in self._brokers.values():
            other.note_remote_interest(pattern, broker_id)
        self.monitor.increment("control.floods")

    def _retract_interest(self, pattern: str, broker_id: str) -> None:
        """Flood an interest retraction (last subscriber gone)."""
        if self.federation is not None:
            self.federation.retract(pattern, broker_id)
            return
        owners = self._interest.get(pattern)
        if owners is not None:
            owners.discard(broker_id)
            if not owners:
                del self._interest[pattern]
        for other in self._brokers.values():
            other.drop_remote_interest(pattern, broker_id)
        self.monitor.increment("control.retractions")

    def route_of(self, message_frame: RoutedFrame) -> tuple[str, ...]:
        """The destination list a routed frame is addressed to."""
        return message_frame.destinations
