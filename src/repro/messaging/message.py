"""The message envelope routed by the broker network.

All messages contain topic information, which forms the basis of routing
(section 2).  The envelope additionally carries the security artifacts the
tracing scheme attaches: an optional signature envelope (section 4.2), an
optional authorization token (section 4.3), and an encrypted-body flag
(section 5.1).

The broker-to-broker forwarding envelope (:class:`RoutedFrame`) lives here
too: it is pure wire vocabulary — a message plus its remaining explicit
destinations — shared by the broker (which splits it per next hop) and the
``repro.wire`` codecs (which put it on the wire).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.messaging.topics import Topic

_message_ids = itertools.count(1)

#: Callbacks invoked by :func:`reset_message_ids`.  Caches keyed by message
#: id (the ``repro.wire`` encoded-size memo) register here so a rewound id
#: counter can never alias a stale entry onto a fresh message.
_reset_hooks: list[Callable[[], None]] = []


def register_reset_hook(hook: Callable[[], None]) -> None:
    """Run ``hook`` whenever the message-id counter is rewound.

    Message ids are unique per process *until* a deterministic-replay
    harness calls :func:`reset_message_ids`; any cache keyed by message id
    must be dropped at that moment.  Registering the same hook twice is a
    no-op.
    """
    if hook not in _reset_hooks:
        _reset_hooks.append(hook)


def reset_message_ids(start: int = 1) -> None:
    """Rewind the process-global message-id counter.

    Message ids appear in :meth:`Message.wire_dict`, so their *digit width*
    feeds into wire-size accounting and therefore into sampled virtual
    latencies.  Harnesses that promise bit-identical replays at a fixed seed
    (``repro.faults.run_scenario``) must rewind the counter before each run;
    otherwise the timeline depends on how many messages earlier deployments
    in the same process happened to create.

    Also fires every :func:`register_reset_hook` callback, which clears the
    message-id-keyed encoded-size memo in ``repro.wire``.
    """
    global _message_ids
    _message_ids = itertools.count(start)
    for hook in _reset_hooks:
        hook()


@dataclass(frozen=True, slots=True)
class Message:
    """One routable message.

    ``body`` is the application payload (canonically encodable, or raw
    ``bytes`` when encrypted).  ``signature`` holds a serialized
    :class:`~repro.crypto.signing.SignedEnvelope` dict covering the body;
    ``auth_token`` holds a serialized authorization token dict.  ``hops``
    counts broker-to-broker forwards for diagnostics.
    """

    topic: Topic
    body: Any
    source: str
    message_id: int = field(default_factory=lambda: next(_message_ids))
    created_ms: float = 0.0
    signature: dict | None = None
    auth_token: dict | None = None
    encrypted: bool = False
    hops: int = 0

    def wire_dict(self) -> dict:
        """Canonical rendering used for wire-size accounting.

        ``hops`` is deliberately absent: it is link-local diagnostics, not
        payload, so a forwarded copy (:meth:`with_hop`) encodes to exactly
        the same bytes — which is what makes the per-message encoded-size
        memo in ``repro.wire`` safe.
        """
        return {
            "topic": self.topic.canonical,
            "body": self.body,
            "source": self.source,
            "message_id": self.message_id,
            "created_ms": self.created_ms,
            "signature": self.signature,
            "auth_token": self.auth_token,
            "encrypted": self.encrypted,
        }

    def with_hop(self) -> "Message":
        """Copy with the hop counter incremented (broker forward)."""
        return replace(self, hops=self.hops + 1)

    def describe(self) -> str:
        """Compact id/topic/source/hops summary for logs."""
        return (
            f"Message(id={self.message_id}, topic={self.topic}, "
            f"source={self.source!r}, hops={self.hops})"
        )


@dataclass(frozen=True, slots=True)
class RoutedFrame:
    """Broker-to-broker envelope: a message plus remaining destinations."""

    message: Message
    destinations: tuple[str, ...]

    def wire_dict(self) -> dict:
        """The message's wire form plus the destination list."""
        frame = self.message.wire_dict()
        frame["destinations"] = list(self.destinations)
        return frame
