"""The broker node: subscription management, enforcement, and routing.

A broker performs the routing function: when it receives a message from a
producer it delivers to interested local consumers and forwards to other
brokers that have interested consumers (section 2).  This implementation
additionally enforces:

* constrained-topic action rules (section 3.1),
* pluggable publish guards — the authorization layer installs a guard that
  discards constrained trace messages lacking a valid authorization token
  (section 4.3),
* denial-of-service defenses: repeated violations terminate communications
  with the offending entity (section 5.2).

Broker-to-broker forwarding wraps the message in a :class:`RoutedFrame`
carrying the explicit destination set, split by next hop at every broker:
deterministic shortest-path multicast with no duplicates or loops.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Generator, Iterable, Protocol

from repro.errors import NotConnectedError, RoutingError, UnauthorizedError
from repro.messaging.constrained import (
    CONSTRAINED_KEYWORD,
    ConstrainedTopic,
    is_constrained,
)
from repro.messaging.matching import SubscriptionIndex
from repro.messaging.message import Message, RoutedFrame
from repro.messaging.topics import Topic, topic_matches
from repro.sim.engine import Event, Simulator
from repro.sim.machine import Machine
from repro.sim.monitor import Monitor
from repro.transport.link import Link

#: Violations tolerated before the broker terminates communications.
DEFAULT_VIOLATION_LIMIT = 3

#: Broker per-message processing overhead (queueing, matching, bookkeeping).
DEFAULT_PROCESSING_MS = 2.9

#: Broker CPU cost of handing one message to one local subscriber.
DEFAULT_PER_DELIVERY_MS = 0.09

#: Bucket bounds for the ``broker.fanout`` histogram (deliveries/message).
FANOUT_BUCKETS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

LocalHandler = Callable[[Message], None]


def topic_family(topic: str) -> str:
    """Coarse label for per-topic delivery counters.

    The first topic segment, except for constrained topics where the
    event-type segment is the informative one.
    """
    segments = topic.split("/")
    if segments[0] == CONSTRAINED_KEYWORD and len(segments) > 1:
        return segments[1].lower()
    return segments[0].lower()


class PublishGuard(Protocol):
    """Broker-side admission check run for every routed message.

    Implementations are generator functions so they can charge CPU time for
    verification work.  Returning False discards the message and records a
    violation against its origin.
    """

    def __call__(
        self, broker: "Broker", message: Message, origin: str, from_neighbor: bool
    ) -> Generator[Event, None, bool]: ...


__all__ = [
    "Broker",
    "PublishGuard",
    "RoutedFrame",  # moved to messaging/message.py; re-exported for compat
    "iter_matching_patterns",
    "topic_family",
]


class Broker:
    """One cooperating router node of the broker network."""

    def __init__(
        self,
        sim: Simulator,
        broker_id: str,
        machine: Machine,
        monitor: Monitor | None = None,
        processing_ms: float = DEFAULT_PROCESSING_MS,
        per_delivery_ms: float = DEFAULT_PER_DELIVERY_MS,
        violation_limit: int = DEFAULT_VIOLATION_LIMIT,
    ) -> None:
        self.sim = sim
        self.broker_id = broker_id
        self.machine = machine
        self.monitor = monitor or Monitor()
        self.metrics = self.monitor.metrics
        self.processing_ms = processing_ms
        self.per_delivery_ms = per_delivery_ms
        self.violation_limit = violation_limit

        # fabric wiring (populated by BrokerNetwork)
        self.neighbor_links: dict[str, Link] = {}
        self.routing_table: dict[str, str] = {}
        self._announce: Callable[[str, str], None] | None = None
        self._retract: Callable[[str, str], None] | None = None
        # summarized-interest plane; when set, remote routing queries go
        # through peer summaries instead of verbatim remote-interest rows
        self._fed_plane = None

        # subscription state: one segment-trie index holds client
        # subscriptions, broker-local handlers and remote interest, so
        # every "who matches this topic" query is O(topic depth)
        self._subs = SubscriptionIndex(metrics=self.metrics)

        # client connections: client_id -> outbound link to that client
        self._client_links: dict[str, Link] = {}

        # enforcement
        self.publish_guards: list[PublishGuard] = []
        self._violations: dict[str, int] = defaultdict(int)
        self._blacklist: set[str] = set()

        # failure model: a failed broker drops everything it receives
        self.failed = False

    # ------------------------------------------------------------------ wiring

    def attach_neighbor(self, broker_id: str, link: Link) -> None:
        """Wire the outbound link used to forward frames to a neighbor."""
        self.neighbor_links[broker_id] = link

    def set_routing_table(self, table: dict[str, str]) -> None:
        """Install the next-hop-per-destination table for this broker."""
        self.routing_table = dict(table)

    def set_interest_announcer(
        self,
        announce: Callable[[str, str], None],
        retract: Callable[[str, str], None] | None = None,
    ) -> None:
        """Callbacks the fabric provides to flood/retract subscription interest."""
        self._announce = announce
        self._retract = retract

    def set_federation(self, plane) -> None:
        """Route remote-interest queries through a summarized plane.

        Installed by a federated :class:`BrokerNetwork`
        (``federation=...``); ``plane`` is a
        :class:`~repro.messaging.federation.FederatedInterestPlane`.
        """
        self._fed_plane = plane

    @property
    def federated(self) -> bool:
        """Whether this broker routes on summarized interest."""
        return self._fed_plane is not None

    def attach_client(self, client_id: str, link_to_client: Link) -> None:
        """Wire the outbound link used to deliver to a local client."""
        self._client_links[client_id] = link_to_client

    def detach_client(self, client_id: str) -> None:
        """Drop a client link and retract all its interest fabric-wide."""
        self._client_links.pop(client_id, None)
        self.purge_client_subscriptions(client_id)

    def purge_client_subscriptions(self, client_id: str) -> None:
        """Drop every subscription of a client, retracting orphans.

        Patterns whose last local subscriber just vanished must be
        retracted, or peers keep forwarding matching traffic here
        forever.  ``BrokerNetwork.remove_client`` also sweeps this across
        every broker, so a client that detached while its broker was
        failed cannot leave stale fabric interest behind.
        """
        for pattern in self._subs.remove_client_everywhere(client_id):
            self._maybe_retract_interest(pattern)

    @property
    def client_ids(self) -> list[str]:
        """Ids of every client currently attached, sorted."""
        return sorted(self._client_links)

    def has_client(self, client_id: str) -> bool:
        """Whether a client link for ``client_id`` is currently attached."""
        return client_id in self._client_links

    # ----------------------------------------------------------- subscriptions

    def add_client_subscription(self, client_id: str, pattern: str) -> None:
        """Register a client subscription, enforcing constrained rules.

        Delivery happens over the client's link (attached at connect time);
        the subscription table only records who is interested.
        """
        if client_id in self._blacklist:
            raise UnauthorizedError(f"{client_id!r} is blacklisted")
        if client_id not in self._client_links:
            raise NotConnectedError(f"{client_id!r} is not connected to {self.broker_id!r}")
        pattern = Topic.parse(pattern, allow_wildcards=True).canonical
        if is_constrained(pattern):
            constrained = ConstrainedTopic.parse(pattern)
            if not constrained.may_subscribe(client_id, is_broker=False):
                self._record_violation(client_id, f"subscribe to {pattern}")
                raise UnauthorizedError(
                    f"{client_id!r} may not subscribe to constrained topic {pattern!r}"
                )
        self._subs.add_client(pattern, client_id)
        self.monitor.increment("subscriptions.client")
        self._propagate_interest(pattern, suppressed=False)

    def remove_client_subscription(self, client_id: str, pattern: str) -> None:
        """Drop one client subscription, retracting interest if last."""
        if self._subs.remove_client(pattern, client_id):
            self._maybe_retract_interest(SubscriptionIndex.canonical(pattern))

    def subscribe_local(self, pattern: str, handler: LocalHandler) -> None:
        """The broker's own subscription (e.g. to a session topic).

        Constrained ``Suppress``/``Limited`` distribution keeps the
        subscription from propagating to other brokers — the hosting broker
        alone consumes traffic on such topics (section 3.1).
        """
        pattern = Topic.parse(pattern, allow_wildcards=True).canonical
        suppressed = False
        if is_constrained(pattern):
            constrained = ConstrainedTopic.parse(pattern)
            if not constrained.may_subscribe(self.broker_id, is_broker=True):
                raise UnauthorizedError(
                    f"broker {self.broker_id!r} may not subscribe to {pattern!r}"
                )
            suppressed = constrained.suppressed()
        self._subs.add_handler(pattern, handler)
        self.monitor.increment("subscriptions.broker")
        self._propagate_interest(pattern, suppressed=suppressed)

    def unsubscribe_local(self, pattern: str, handler: LocalHandler) -> None:
        """Remove a broker-own subscription, retracting interest if last."""
        if self._subs.remove_handler(pattern, handler):
            self._maybe_retract_interest(SubscriptionIndex.canonical(pattern))

    def _maybe_retract_interest(self, pattern: str) -> None:
        """Tell the fabric nobody here wants ``pattern`` anymore.

        Called when the last local subscription (client or broker) for a
        pattern disappears; peers stop forwarding matching traffic to us.
        """
        if self._subs.has_local(pattern):
            return
        if self._retract is not None:
            self._retract(pattern, self.broker_id)
            self.monitor.increment("control.interest_retractions")
            self.metrics.counter("broker.interest.retracted").inc()

    def _propagate_interest(self, pattern: str, suppressed: bool) -> None:
        if suppressed or self._announce is None:
            return
        self._announce(pattern, self.broker_id)
        self.monitor.increment("control.interest_announcements")
        self.metrics.counter("broker.interest.announced").inc()

    def note_remote_interest(self, pattern: str, broker_id: str) -> None:
        """The fabric records that ``broker_id`` has subscribers for ``pattern``."""
        if broker_id != self.broker_id:
            self._subs.add_remote(pattern, broker_id)

    def drop_remote_interest(self, pattern: str, broker_id: str) -> None:
        """Forget a peer's interest; self-retractions are ignored.

        Mirrors the guard in :meth:`note_remote_interest` — a broker's
        own retraction flood must not touch its local index, where the
        pattern may legitimately live on for other subscribers.
        """
        if broker_id != self.broker_id:
            self._subs.remove_remote(pattern, broker_id)

    # ------------------------------------------------------------------ ingress

    def receive_from_client(self, client_id: str, message: Message) -> None:
        """Link-delivery callback for messages a connected client published."""
        if self.failed:
            self.monitor.increment("messages.dropped_broker_failed")
            self.metrics.counter("broker.msgs.dropped").inc()
            return
        if client_id in self._blacklist:
            self.monitor.increment("dos.dropped_blacklisted")
            self.metrics.counter("broker.msgs.dropped").inc()
            return
        self.sim.process(
            self._ingress(message, origin=client_id, from_neighbor=False),
            name=f"{self.broker_id}.ingress",
        )

    def receive_from_neighbor(self, neighbor_id: str, frame: RoutedFrame) -> None:
        """Link-delivery callback for broker-to-broker frames."""
        if self.failed:
            self.monitor.increment("messages.dropped_broker_failed")
            self.metrics.counter("broker.msgs.dropped").inc()
            return
        self.sim.process(
            self._neighbor_ingress(neighbor_id, frame),
            name=f"{self.broker_id}.fwd",
        )

    def publish_from_broker(self, message: Message) -> None:
        """The broker itself publishes (trace generation, section 3.3)."""
        if self.failed:
            # a crashed broker generates nothing — its trace processes may
            # still be scheduled, but no self-publication leaves the host
            self.monitor.increment("messages.dropped_broker_failed")
            self.metrics.counter("broker.msgs.dropped").inc()
            return
        self.sim.process(
            self._ingress(message, origin=self.broker_id, from_neighbor=False, self_origin=True),
            name=f"{self.broker_id}.selfpub",
        )

    # -------------------------------------------------------------- processing

    def _ingress(
        self,
        message: Message,
        origin: str,
        from_neighbor: bool,
        self_origin: bool = False,
    ) -> Generator[Event, None, None]:
        yield from self.machine.compute(self.processing_ms)
        self.monitor.increment("messages.received")
        self.metrics.counter("broker.msgs.ingress").inc()

        constrained: ConstrainedTopic | None = None
        if is_constrained(message.topic.canonical):
            constrained = ConstrainedTopic.parse(message.topic.canonical)
            publisher = self.broker_id if self_origin else origin
            if not constrained.may_publish(publisher, is_broker=self_origin):
                self._record_violation(origin, f"publish on {message.topic}")
                self.monitor.increment("messages.rejected_constrained")
                self.metrics.counter("broker.msgs.rejected").inc()
                return

        for guard in self.publish_guards:
            ok = yield from guard(self, message, origin, from_neighbor)
            if not ok:
                self._record_violation(origin, f"guard rejected {message.topic}")
                self.monitor.increment("messages.rejected_guard")
                self.metrics.counter("broker.msgs.rejected").inc()
                return

        yield from self._dispatch(message, constrained, origin, self_origin)

    def _neighbor_ingress(
        self, neighbor_id: str, frame: RoutedFrame
    ) -> Generator[Event, None, None]:
        message = frame.message
        yield from self.machine.compute(self.processing_ms)
        self.monitor.increment("messages.forwarded_in")
        self.metrics.counter("broker.msgs.forwarded_in").inc()

        for guard in self.publish_guards:
            ok = yield from guard(self, message, neighbor_id, True)
            if not ok:
                self.monitor.increment("messages.rejected_guard")
                self.metrics.counter("broker.msgs.rejected").inc()
                return

        if self.broker_id in frame.destinations:
            if not self._subs.has_local_match(message.topic.canonical):
                if (
                    self._fed_plane is not None
                    and not self._fed_plane.is_exact(self.broker_id)
                ):
                    # a digest summary matched a topic nobody here wants:
                    # the tolerated cost of summarized interest, distinct
                    # from the stale-interest bug class below
                    self.monitor.increment("messages.fed_false_positive")
                    self.metrics.counter("fed.forwards.false_positive").inc()
                else:
                    # a peer forwarded to us on stale interest: nobody here
                    # consumes this topic anymore (the bug class the interest
                    # lifecycle is meant to prevent) — count it loudly
                    self.monitor.increment("messages.forwarded_stale")
                    self.metrics.counter("broker.interest.stale_forwards").inc()
            yield from self._deliver_local(message)
        remaining = tuple(d for d in frame.destinations if d != self.broker_id)
        if remaining:
            self._forward(message.with_hop(), remaining, exclude_neighbor=neighbor_id)

    def _dispatch(
        self,
        message: Message,
        constrained: ConstrainedTopic | None,
        origin: str,
        self_origin: bool,
    ) -> Generator[Event, None, None]:
        yield from self._deliver_local(message, exclude_client=None if self_origin else origin)

        # Publish suppression: the constrainer's publications stay local.
        if constrained is not None and constrained.suppressed():
            publisher = self.broker_id if self_origin else origin
            if constrained._is_constrainer(publisher, is_broker=self_origin):
                self.monitor.increment("messages.suppressed")
                return

        destinations = self._interested_brokers(message.topic.canonical)
        if destinations:
            self._forward(message.with_hop(), tuple(sorted(destinations)), exclude_neighbor=None)

    def _interested_brokers(self, topic: str) -> set[str]:
        if self._fed_plane is not None:
            return self._fed_plane.interested(topic, exclude=self.broker_id)
        return self._subs.match_remote(topic, exclude=self.broker_id)

    def _forward(
        self,
        message: Message,
        destinations: tuple[str, ...],
        exclude_neighbor: str | None,
    ) -> None:
        by_next_hop: dict[str, list[str]] = defaultdict(list)
        for dest in destinations:
            next_hop = self.routing_table.get(dest)
            if next_hop is None:
                # destination currently unreachable (failed broker or
                # partition): drop that leg, deliver the rest
                self.monitor.increment("messages.unroutable")
                self.metrics.counter("broker.msgs.unroutable").inc()
                continue
            by_next_hop[next_hop].append(dest)
        for next_hop, dests in sorted(by_next_hop.items()):
            if next_hop == exclude_neighbor:
                # shortest-path split never routes back where it came from;
                # guard against pathological topology changes mid-flight
                continue
            link = self.neighbor_links.get(next_hop)
            if link is None:
                raise RoutingError(
                    f"{self.broker_id!r} has no link to next hop {next_hop!r}"
                )
            link.send(RoutedFrame(message, tuple(sorted(dests))))
            self.monitor.increment("messages.forwarded_out")
            self.metrics.counter("broker.msgs.forwarded_out").inc()

    def _deliver_local(
        self, message: Message, exclude_client: str | None = None
    ) -> Generator[Event, None, None]:
        topic = message.topic.canonical
        fanout = 0

        for _pattern, handlers in self._subs.match_handlers(topic):
            for handler in handlers:
                yield from self.machine.compute(self.per_delivery_ms)
                handler(message)
                self.monitor.increment("messages.delivered_broker_local")
                fanout += 1

        for _pattern, subscribers in self._subs.match_clients(topic):
            # delivery order is arbitrary in a real broker (hash order);
            # shuffling avoids privileging any subscriber in the fan-out
            ordered = subscribers
            self.machine.rng.shuffle(ordered)
            for client_id in ordered:
                if client_id == exclude_client:
                    continue
                link = self._client_links.get(client_id)
                if link is None:
                    continue
                yield from self.machine.compute(self.per_delivery_ms)
                link.send(message)
                self.monitor.increment("messages.delivered_client")
                fanout += 1

        if fanout:
            self.metrics.counter("broker.msgs.delivered").inc(fanout)
            self.metrics.counter(
                f"broker.delivered.{topic_family(topic)}"
            ).inc(fanout)
        self.metrics.histogram(
            "broker.fanout", bounds=FANOUT_BUCKETS
        ).observe(float(fanout))

    # ------------------------------------------------------------------- DoS

    def _record_violation(self, principal: str, what: str) -> None:
        self._violations[principal] += 1
        self.monitor.increment("dos.violations")
        self.metrics.counter("broker.violations").inc()
        self.monitor.log(self.sim.now, "violation", principal=principal, what=what)
        if (
            self._violations[principal] >= self.violation_limit
            and principal in self._client_links
        ):
            self.terminate_client(principal)

    def terminate_client(self, client_id: str) -> None:
        """Terminate communications with a malicious entity (section 5.2)."""
        self._blacklist.add(client_id)
        self.detach_client(client_id)
        self.monitor.increment("dos.terminated")
        self.monitor.log(self.sim.now, "terminated", principal=client_id)

    def is_blacklisted(self, client_id: str) -> bool:
        """Whether a principal was terminated for violations (§5.2)."""
        return client_id in self._blacklist

    def violation_count(self, principal: str) -> int:
        """Guard violations recorded against a principal so far."""
        return self._violations.get(principal, 0)

    # ------------------------------------------------------------------ misc

    def local_subscriber_count(self, topic: str) -> int:
        """How many local client subscriptions match ``topic``."""
        return self._subs.client_count(topic)

    def has_any_subscriber(self, topic: str) -> bool:
        """Anyone (local client, broker handler, or remote broker) interested?"""
        if self._fed_plane is not None:
            return self._subs.has_local_match(topic) or self._fed_plane.has_interest(
                topic, exclude=self.broker_id
            )
        return self._subs.has_any_match(topic, exclude_remote=self.broker_id)

    @property
    def subscription_index(self) -> SubscriptionIndex:
        """The broker's interest index (read-mostly; tests and tools)."""
        return self._subs

    def __repr__(self) -> str:
        return f"<Broker {self.broker_id}>"


def iter_matching_patterns(patterns: Iterable[str], topic: str) -> list[str]:
    """Utility for tests: which of ``patterns`` match ``topic``."""
    return [p for p in patterns if topic_matches(p, topic)]
