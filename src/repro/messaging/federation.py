"""Federated interest exchange: summary-based broker-to-broker control plane.

The verbatim control plane (:class:`~repro.messaging.broker_network.
BrokerNetwork` flooding every subscription pattern to every broker, and
replaying the full interest table to late joiners) costs
O(patterns × brokers) messages and memory — fine for the paper's
three-broker chain, prohibitive for the 64-broker / 100k-entity fabrics
the scalability claim (§4) is about.  This module replaces it with
*interest summaries*:

* Each broker's local interest is folded into one
  :class:`InterestSummary` — a small **exact hot set** while the broker
  holds few patterns, and a fixed-size **bloom-style digest** (tagged
  double-hashed bits over full literal patterns and over the literal
  prefixes of wildcard patterns) once it overflows.  A summary is a few
  KB regardless of whether it stands for 10 patterns or 100 000.
* Summaries propagate in **epoch batches** (anti-entropy style): a
  subscription change only marks its owner dirty; the changed summary is
  broadcast — one ``control.floods`` message, not one per pattern — the
  next time any broker needs routing state.  A burst of N subscriptions
  followed by traffic costs one summary exchange, not N floods.
* Late joiners receive the current summary of each peer (one message per
  peer, counted by ``fed.summary.replays``) instead of a replay of every
  pattern ever announced.

Digest summaries can yield **false positives** — a broker may forward a
frame to a peer with no matching subscriber.  Routing stays correct
because delivery always re-checks the receiving broker's exact
:class:`~repro.messaging.matching.SubscriptionIndex`; the wasted frames
are counted by ``fed.forwards.false_positive`` (see
docs/OBSERVABILITY.md).  False *negatives* cannot happen: every pattern
is either in the hot set (matched exactly), digested (its full text, or
its literal prefix for wildcard patterns, is probed by every candidate
topic), or covered by the ``match_all`` escape for wildcard patterns
with no literal prefix.

The plane is deliberately centralized in simulation: brokers query it
directly and the counters model the control traffic a distributed
implementation would pay, the same convention the verbatim control plane
already used ("brokers exchange subscription state continuously, off the
critical path of trace routing").
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import blake2b
from typing import Iterator

from repro.errors import ConfigurationError
from repro.messaging.topics import (
    WILDCARD_MANY,
    WILDCARD_ONE,
    split_topic,
    topic_matches,
)
from repro.sim.monitor import Monitor

#: Patterns a broker may hold before its summary switches from the exact
#: hot set to the digest form.  Small deployments (every committed seed
#: scenario) stay exact, so federated routing is bit-identical to
#: verbatim flooding there; the digest only engages at scale.
DEFAULT_HOT_SET_LIMIT = 64

#: Digest width in bits.  8 KiB per summary keeps the false-positive rate
#: for ~1.5k patterns/broker (the 64-broker / 100k-entity point) around
#: 0.2% while remaining ~10x smaller than the verbatim pattern list.
DEFAULT_DIGEST_BITS = 1 << 16

#: Bound on the per-topic match memo before it is reset wholesale.
_MATCH_MEMO_LIMIT = 1 << 16


@dataclass(frozen=True, slots=True)
class FederationConfig:
    """Tuning knobs for the federated interest plane."""

    hot_set_limit: int = DEFAULT_HOT_SET_LIMIT
    digest_bits: int = DEFAULT_DIGEST_BITS

    def validated(self) -> "FederationConfig":
        """Self-check; raises :class:`ConfigurationError` on bad values."""
        if self.hot_set_limit < 1:
            raise ConfigurationError(
                f"hot_set_limit must be >= 1, got {self.hot_set_limit}"
            )
        if self.digest_bits < 1024 or self.digest_bits & (self.digest_bits - 1):
            raise ConfigurationError(
                f"digest_bits must be a power of two >= 1024, got {self.digest_bits}"
            )
        return self


def _digest_bits(key: str, modulus: int) -> tuple[int, int]:
    """Two digest bit positions for ``key`` (classic double hashing)."""
    raw = blake2b(key.encode("utf-8"), digest_size=8).digest()
    value = int.from_bytes(raw, "big")
    return (value >> 32) % modulus, value % modulus


def _literal_prefix(segments: list[str]) -> str:
    """The '/'-joined literal run before the first wildcard segment."""
    literal: list[str] = []
    for segment in segments:
        if segment in (WILDCARD_ONE, WILDCARD_MANY):
            break
        literal.append(segment)
    return "/".join(literal)


def pattern_digest_keys(pattern: str) -> tuple[str, ...]:
    """The tagged digest keys summarizing one canonical pattern.

    Literal patterns digest their full text (an exact-match probe);
    wildcard patterns digest their literal prefix (a prefix probe —
    every topic they match starts with it).  Wildcard patterns with no
    literal prefix produce no keys; they force ``match_all`` instead.
    """
    segments = split_topic(pattern)
    if not any(s in (WILDCARD_ONE, WILDCARD_MANY) for s in segments):
        return (f"e:{pattern}",)
    prefix = _literal_prefix(segments)
    if not prefix:
        return ()
    return (f"p:{prefix}",)


class TopicProbe:
    """Pre-hashed digest probes for one concrete topic.

    Computing the blake2 positions once per topic lets a router test the
    same topic against every peer summary with pure integer operations.
    """

    __slots__ = ("topic", "exact_bits", "prefix_bits")

    def __init__(self, topic: str, modulus: int) -> None:
        segments = split_topic(topic)
        self.topic = "/".join(segments)
        self.exact_bits = _digest_bits(f"e:{self.topic}", modulus)
        # a wildcard pattern's literal prefix is always a *proper* prefix
        # of any topic it matches, so only proper prefixes are probed
        self.prefix_bits = tuple(
            _digest_bits("p:" + "/".join(segments[:depth]), modulus)
            for depth in range(1, len(segments))
        )


class InterestSummary:
    """One broker's aggregated interest, as exchanged with its peers."""

    __slots__ = ("broker_id", "version", "hot", "digest", "match_all", "pattern_count")

    def __init__(
        self,
        broker_id: str,
        version: int,
        hot: tuple[str, ...],
        digest: int,
        match_all: bool,
        pattern_count: int,
    ) -> None:
        self.broker_id = broker_id
        self.version = version
        self.hot = hot
        self.digest = digest
        self.match_all = match_all
        self.pattern_count = pattern_count

    @property
    def exact(self) -> bool:
        """True while every pattern is carried verbatim in the hot set."""
        return not self.digest and not self.match_all

    def same_content(self, other: "InterestSummary | None") -> bool:
        """Equality modulo version — the test for 'worth re-broadcasting'."""
        return (
            other is not None
            and self.hot == other.hot
            and self.digest == other.digest
            and self.match_all == other.match_all
        )

    def matches(self, probe: TopicProbe) -> bool:
        """Could this broker have a subscriber for the probed topic?

        Exact for hot-set patterns; digest probes may return false
        positives, never false negatives.
        """
        for pattern in self.hot:
            if topic_matches(pattern, probe.topic):
                return True
        if self.match_all:
            return True
        digest = self.digest
        if digest:
            b1, b2 = probe.exact_bits
            if (digest >> b1) & 1 and (digest >> b2) & 1:
                return True
            for b1, b2 in probe.prefix_bits:
                if (digest >> b1) & 1 and (digest >> b2) & 1:
                    return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "exact" if self.exact else "digest"
        return (
            f"<InterestSummary {self.broker_id} v{self.version} {mode} "
            f"patterns={self.pattern_count}>"
        )


class _InterestAccumulator:
    """Mutable per-broker interest state behind the published summaries.

    Keeps a counting form of the digest (bit -> reference count) so
    retractions can clear bits exactly, and rebuilds the broadcast-form
    :class:`InterestSummary` on demand.
    """

    __slots__ = ("broker_id", "config", "patterns", "bit_counts", "match_all_count")

    def __init__(self, broker_id: str, config: FederationConfig) -> None:
        self.broker_id = broker_id
        self.config = config
        #: pattern -> its digest bit positions (cached for exact removal)
        self.patterns: dict[str, tuple[int, ...]] = {}
        self.bit_counts: dict[int, int] = {}
        self.match_all_count = 0

    def add(self, pattern: str) -> bool:
        """Record local interest; True if this changed the state."""
        if pattern in self.patterns:
            return False
        bits: list[int] = []
        keys = pattern_digest_keys(pattern)
        if not keys:
            self.match_all_count += 1
        for key in keys:
            for bit in _digest_bits(key, self.config.digest_bits):
                bits.append(bit)
                self.bit_counts[bit] = self.bit_counts.get(bit, 0) + 1
        self.patterns[pattern] = tuple(bits)
        return True

    def remove(self, pattern: str) -> bool:
        """Retract local interest; True if this changed the state."""
        bits = self.patterns.pop(pattern, None)
        if bits is None:
            return False
        if not bits:
            # only match-all wildcard patterns digest to zero bits
            self.match_all_count -= 1
        for bit in bits:
            remaining = self.bit_counts[bit] - 1
            if remaining:
                self.bit_counts[bit] = remaining
            else:
                del self.bit_counts[bit]
        return True

    @property
    def overflowed(self) -> bool:
        return len(self.patterns) > self.config.hot_set_limit

    def build_summary(self, version: int) -> InterestSummary:
        if not self.overflowed:
            return InterestSummary(
                broker_id=self.broker_id,
                version=version,
                hot=tuple(sorted(self.patterns)),
                digest=0,
                match_all=False,
                pattern_count=len(self.patterns),
            )
        digest = 0
        for bit in self.bit_counts:
            digest |= 1 << bit
        return InterestSummary(
            broker_id=self.broker_id,
            version=version,
            hot=(),
            digest=digest,
            match_all=self.match_all_count > 0,
            pattern_count=len(self.patterns),
        )


class FederatedInterestPlane:
    """The summarized control plane a federated :class:`BrokerNetwork` runs.

    Owns one :class:`_InterestAccumulator` per broker plus the flushed
    (broadcast) summaries, and answers the router's "which peers want
    this topic?" query.  Announcements and retractions only dirty their
    owner; :meth:`flush` batches the re-broadcasts into the next routing
    epoch, which is what keeps control traffic sub-linear in the pattern
    count (see module docstring).
    """

    def __init__(
        self,
        monitor: Monitor | None = None,
        config: FederationConfig | None = None,
    ) -> None:
        self.monitor = monitor or Monitor()
        self.metrics = self.monitor.metrics
        self.config = (config or FederationConfig()).validated()
        self._accumulators: dict[str, _InterestAccumulator] = {}
        self._summaries: dict[str, InterestSummary] = {}
        self._dirty: set[str] = set()
        #: topic -> frozenset of interested brokers; reset on any summary
        #: change, so hits are only served between control-plane changes
        self._match_memo: dict[str, frozenset[str]] = {}
        self._probe_cache: dict[str, TopicProbe] = {}

    # ------------------------------------------------------------- membership

    def register_broker(self, broker_id: str) -> None:
        """Add a broker to the plane, replaying peer summaries to it.

        The late-joiner cost is one summary per established peer —
        counted by ``fed.summary.replays`` — instead of the verbatim
        plane's one message per (pattern, owner) pair.
        """
        if broker_id in self._accumulators:
            return
        self.flush()
        replayed = sum(
            1
            for summary in self._summaries.values()
            if summary.pattern_count > 0
        )
        if replayed:
            self.metrics.counter("fed.summary.replays").inc(replayed)
        self._accumulators[broker_id] = _InterestAccumulator(
            broker_id, self.config
        )

    def brokers(self) -> list[str]:
        """Every broker with an interest accumulator, sorted."""
        return sorted(self._accumulators)

    # ----------------------------------------------------------- announcements

    def announce(self, pattern: str, broker_id: str) -> None:
        """Record that ``broker_id`` gained local interest in ``pattern``."""
        accumulator = self._accumulator(broker_id)
        if accumulator.add(pattern):
            self.metrics.gauge("fed.interest.patterns").inc()
            self._dirty.add(broker_id)

    def retract(self, pattern: str, broker_id: str) -> None:
        """Record that ``broker_id`` lost its last local subscriber."""
        accumulator = self._accumulator(broker_id)
        if accumulator.remove(pattern):
            self.metrics.gauge("fed.interest.patterns").dec()
            self._dirty.add(broker_id)

    def _accumulator(self, broker_id: str) -> _InterestAccumulator:
        accumulator = self._accumulators.get(broker_id)
        if accumulator is None:
            raise ConfigurationError(
                f"broker {broker_id!r} is not registered with the federation plane"
            )
        return accumulator

    # ----------------------------------------------------------------- queries

    def flush(self) -> int:
        """Broadcast every dirty summary whose content actually changed.

        Returns the number of summaries broadcast.  Each broadcast counts
        one ``control.floods`` message — the epoch-batched exchange that
        replaces per-pattern flooding.
        """
        if not self._dirty:
            return 0
        flushed = 0
        for broker_id in sorted(self._dirty):
            accumulator = self._accumulators[broker_id]
            previous = self._summaries.get(broker_id)
            version = (previous.version + 1) if previous is not None else 1
            summary = accumulator.build_summary(version)
            if summary.same_content(previous):
                continue
            was_exact = previous is None or previous.exact
            if was_exact and not summary.exact:
                self.metrics.gauge("fed.summary.overflowed").inc()
            elif not was_exact and summary.exact:
                self.metrics.gauge("fed.summary.overflowed").dec()
            self._summaries[broker_id] = summary
            flushed += 1
            self.monitor.increment("control.floods")
            self.metrics.counter("fed.summary.updates").inc()
        self._dirty.clear()
        if flushed:
            self._match_memo.clear()
        return flushed

    def probe(self, topic: str) -> TopicProbe:
        """The (cached) digest probe for a concrete topic."""
        probe = self._probe_cache.get(topic)
        if probe is None:
            if len(self._probe_cache) >= _MATCH_MEMO_LIMIT:
                self._probe_cache.clear()
            probe = TopicProbe(topic, self.config.digest_bits)
            self._probe_cache[topic] = probe
        return probe

    def interested(self, topic: str, exclude: str | None = None) -> set[str]:
        """Brokers whose summary matches ``topic`` (maybe false positives)."""
        self.flush()
        cached = self._match_memo.get(topic)
        if cached is None:
            self.metrics.counter("fed.match.memo.miss").inc()
            probe = self.probe(topic)
            cached = frozenset(
                broker_id
                for broker_id in sorted(self._summaries)
                if self._summaries[broker_id].matches(probe)
            )
            if len(self._match_memo) >= _MATCH_MEMO_LIMIT:
                self._match_memo.clear()
            self._match_memo[topic] = cached
        else:
            self.metrics.counter("fed.match.memo.hit").inc()
        interested = set(cached)
        if exclude is not None:
            interested.discard(exclude)
        return interested

    def has_interest(self, topic: str, exclude: str | None = None) -> bool:
        """Any (non-excluded) broker that might want ``topic``?"""
        return bool(self.interested(topic, exclude=exclude))

    def is_exact(self, broker_id: str) -> bool:
        """Is this broker's *flushed* summary currently free of digests?

        The receiving broker uses this to classify a frame that matched
        no local subscription: under an exact summary that can only be
        stale interest (the legacy bug class); under a digest summary it
        is an expected false positive.
        """
        self.flush()
        summary = self._summaries.get(broker_id)
        return summary is None or summary.exact

    def summary_of(self, broker_id: str) -> InterestSummary | None:
        """The currently flushed summary (tests / introspection)."""
        self.flush()
        return self._summaries.get(broker_id)

    def patterns_of(self, broker_id: str) -> list[str]:
        """The verbatim local patterns behind a broker's summary."""
        return sorted(self._accumulator(broker_id).patterns)

    def iter_summaries(self) -> Iterator[InterestSummary]:
        """Flush pending changes, then yield every broker summary."""
        self.flush()
        for broker_id in sorted(self._summaries):
            yield self._summaries[broker_id]
