"""Constrained topics (section 3.1).

Structure::

    /Constrained/{Event Type}/{Constrainer}/{Allowed Actions}/{Distribution}/{suffixes...}

with defaults ``RealTime`` / ``Broker`` / ``PublishSubscribe`` /
``Disseminate``.  Elements may be omitted; parsing resolves a token to the
earliest position it can legally fill, applying defaults for skipped
positions.  That rule makes the paper's two example spellings equivalent::

    /Constrained/Traces/Broker/PublishSubscribe/Limited
    /Constrained/Traces/Limited

Semantics enforced by brokers (see :mod:`repro.messaging.broker`):

* **Allowed actions** restrict who may perform them — only the constrainer
  may perform the listed action(s).  ``Publish-Only``: only the constrainer
  publishes, anyone may subscribe.  ``Subscribe-Only``: only the constrainer
  subscribes, anyone may publish (this is how entities funnel registrations
  and ping responses to their broker).  ``PublishSubscribe``: both actions
  reserved to the constrainer (administrative topics).
* **Distribution** restricts propagation: ``Suppress`` (and the paper's
  ``Limited`` alias used throughout its examples) keeps the constrainer's
  traffic from propagating past the local broker; ``Disseminate`` (default)
  imposes no restriction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TopicError
from repro.messaging.topics import Topic, split_topic

CONSTRAINED_KEYWORD = "Constrained"
DEFAULT_EVENT_TYPE = "RealTime"
BROKER_CONSTRAINER = "Broker"


class AllowedActions(enum.Enum):
    """Actions reserved to the constrainer on a constrained topic."""

    PUBLISH_ONLY = "Publish-Only"
    SUBSCRIBE_ONLY = "Subscribe-Only"
    PUBLISH_SUBSCRIBE = "PublishSubscribe"

    @classmethod
    def parse(cls, token: str) -> "AllowedActions | None":
        """Recognize an action token (several spellings appear in the paper)."""
        normalized = token.replace("_", "-").lower()
        if normalized in ("publish-only", "publishonly", "publish"):
            return cls.PUBLISH_ONLY
        if normalized in ("subscribe-only", "subscribeonly", "subscribe"):
            return cls.SUBSCRIBE_ONLY
        if normalized in ("publishsubscribe", "publish-subscribe"):
            return cls.PUBLISH_SUBSCRIBE
        return None


class Distribution(enum.Enum):
    """Propagation restriction of constrainer actions."""

    DISSEMINATE = "Disseminate"
    SUPPRESS = "Suppress"

    @classmethod
    def parse(cls, token: str) -> "Distribution | None":
        """Parse a distribution slot token, or None if unrecognized."""
        normalized = token.lower()
        if normalized == "disseminate":
            return cls.DISSEMINATE
        # The paper's prose names Suppress/Disseminate but its example topics
        # use "Limited" in the distribution slot; we accept it as an alias.
        if normalized in ("suppress", "limited"):
            return cls.SUPPRESS
        return None


def is_constrained(topic: str | Topic) -> bool:
    """True if the topic's first segment is the Constrained keyword."""
    text = topic.canonical if isinstance(topic, Topic) else topic
    try:
        return split_topic(text)[0] == CONSTRAINED_KEYWORD
    except TopicError:
        return False


@dataclass(frozen=True, slots=True)
class ConstrainedTopic:
    """A parsed constrained topic."""

    event_type: str
    constrainer: str
    allowed_actions: AllowedActions
    distribution: Distribution
    suffixes: tuple[str, ...]

    # -- construction ----------------------------------------------------------

    @classmethod
    def parse(cls, topic: str | Topic) -> "ConstrainedTopic":
        """Parse a constrained topic string, resolving omitted elements.

        Resolution: after the ``Constrained`` keyword, each token fills the
        earliest unfilled position it can legally occupy.  Free-form
        positions (event type, constrainer) refuse tokens that are keywords
        of later positions, so that omitted elements take their defaults.
        """
        text = topic.canonical if isinstance(topic, Topic) else topic
        segments = split_topic(text)
        if segments[0] != CONSTRAINED_KEYWORD:
            raise TopicError(f"not a constrained topic: {text!r}")
        rest = segments[1:]
        index = 0

        def current() -> str | None:
            return rest[index] if index < len(rest) else None

        def is_later_keyword(token: str) -> bool:
            return (
                AllowedActions.parse(token) is not None
                or Distribution.parse(token) is not None
            )

        # {Event Type}
        token = current()
        if token is not None and not is_later_keyword(token):
            event_type = token
            index += 1
        else:
            event_type = DEFAULT_EVENT_TYPE

        # {Constrainer}
        token = current()
        if token is not None and not is_later_keyword(token):
            constrainer = token
            index += 1
        else:
            constrainer = BROKER_CONSTRAINER

        # {Allowed Actions}
        token = current()
        parsed_action = AllowedActions.parse(token) if token is not None else None
        if parsed_action is not None:
            allowed = parsed_action
            index += 1
        else:
            allowed = AllowedActions.PUBLISH_SUBSCRIBE

        # {Distribution}
        token = current()
        parsed_dist = Distribution.parse(token) if token is not None else None
        if parsed_dist is not None:
            distribution = parsed_dist
            index += 1
        else:
            distribution = Distribution.DISSEMINATE

        return cls(
            event_type=event_type,
            constrainer=constrainer,
            allowed_actions=allowed,
            distribution=distribution,
            suffixes=tuple(rest[index:]),
        )

    @classmethod
    def build(
        cls,
        event_type: str = DEFAULT_EVENT_TYPE,
        constrainer: str = BROKER_CONSTRAINER,
        allowed_actions: AllowedActions = AllowedActions.PUBLISH_SUBSCRIBE,
        distribution: Distribution = Distribution.DISSEMINATE,
        *suffixes: str,
    ) -> "ConstrainedTopic":
        """Construct directly from elements."""
        return cls(event_type, constrainer, allowed_actions, distribution, tuple(suffixes))

    # -- rendering ---------------------------------------------------------------

    def topic(self) -> Topic:
        """The fully-elaborated canonical topic (all elements present)."""
        return Topic.of(
            CONSTRAINED_KEYWORD,
            self.event_type,
            self.constrainer,
            self.allowed_actions.value,
            self.distribution.value,
            *self.suffixes,
        )

    @property
    def canonical(self) -> str:
        """The full canonical topic string for this constrained topic."""
        return self.topic().canonical

    # -- semantics ---------------------------------------------------------------

    def broker_constrained(self) -> bool:
        """True if the constrainer is the broker (vs. a named entity)."""
        return self.constrainer == BROKER_CONSTRAINER

    def may_publish(self, principal: str, *, is_broker: bool) -> bool:
        """May ``principal`` publish on this topic?

        For Publish-Only and PublishSubscribe, publishing is reserved to
        the constrainer.  For Subscribe-Only, anyone may publish (the topic
        funnels messages *to* the constrainer).
        """
        if self.allowed_actions is AllowedActions.SUBSCRIBE_ONLY:
            return True
        return self._is_constrainer(principal, is_broker=is_broker)

    def may_subscribe(self, principal: str, *, is_broker: bool) -> bool:
        """May ``principal`` subscribe to this topic?

        For Subscribe-Only and PublishSubscribe, subscribing is reserved to
        the constrainer.  For Publish-Only, anyone may subscribe (trackers
        consume the constrainer's publications).
        """
        if self.allowed_actions is AllowedActions.PUBLISH_ONLY:
            return True
        return self._is_constrainer(principal, is_broker=is_broker)

    def _is_constrainer(self, principal: str, *, is_broker: bool) -> bool:
        if self.broker_constrained():
            return is_broker
        return principal == self.constrainer

    def suppressed(self) -> bool:
        """True if constrainer traffic must not leave the local broker."""
        return self.distribution is Distribution.SUPPRESS

    def __str__(self) -> str:
        return self.canonical
