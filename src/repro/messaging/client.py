"""Client-side connection of an entity to its broker.

An entity is connected to one broker and uses it to funnel messages to the
broker network (section 2).  The client object holds the entity's half of
the duplex link, tracks its subscriptions, and dispatches delivered
messages to local handlers.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable

from repro.errors import NotConnectedError
from repro.messaging.broker import Broker
from repro.messaging.message import Message
from repro.messaging.topics import Topic, topic_matches
from repro.sim.engine import Simulator
from repro.sim.machine import Machine
from repro.sim.monitor import Monitor
from repro.transport.link import Link

Handler = Callable[[Message], None]


class BrokerClient:
    """One entity's connection endpoint.

    Wiring (links in both directions) is performed by
    :meth:`repro.messaging.broker_network.BrokerNetwork.connect_client`.
    """

    def __init__(
        self,
        sim: Simulator,
        client_id: str,
        machine: Machine,
        monitor: Monitor | None = None,
    ) -> None:
        self.sim = sim
        self.client_id = client_id
        self.machine = machine
        self.monitor = monitor or Monitor()
        self._broker: Broker | None = None
        self._link_to_broker: Link | None = None
        self._handlers: dict[str, list[Handler]] = defaultdict(list)

    # ----------------------------------------------------------------- wiring

    def attach(self, broker: Broker, link_to_broker: Link) -> None:
        """Bind this client to its broker and outbound link."""
        self._broker = broker
        self._link_to_broker = link_to_broker

    @property
    def connected(self) -> bool:
        """Whether the client currently has a broker attached."""
        return self._broker is not None

    @property
    def broker(self) -> Broker:
        """The attached broker; NotConnectedError when detached."""
        if self._broker is None:
            raise NotConnectedError(f"{self.client_id!r} is not connected")
        return self._broker

    def disconnect(self) -> None:
        """Detach from the broker, dropping server-side subscriptions."""
        if self._broker is not None:
            self._broker.detach_client(self.client_id)
        self._broker = None
        self._link_to_broker = None

    # ------------------------------------------------------------- pub/sub API

    def publish(
        self,
        topic: str | Topic,
        body: Any,
        signature: dict | None = None,
        auth_token: dict | None = None,
        encrypted: bool = False,
    ) -> Message:
        """Publish a message; it travels the client link to the broker."""
        if self._link_to_broker is None:
            raise NotConnectedError(f"{self.client_id!r} is not connected")
        parsed = topic if isinstance(topic, Topic) else Topic.parse(topic)
        message = Message(
            topic=parsed,
            body=body,
            source=self.client_id,
            created_ms=self.machine.now(),
            signature=signature,
            auth_token=auth_token,
            encrypted=encrypted,
        )
        self._link_to_broker.send(message)
        self.monitor.increment("published")
        return message

    def subscribe(self, pattern: str | Topic, handler: Handler) -> None:
        """Subscribe; broker-side validation may raise UnauthorizedError."""
        text = pattern.canonical if isinstance(pattern, Topic) else pattern
        self.broker.add_client_subscription(self.client_id, text)
        self._handlers[text].append(handler)

    def unsubscribe(self, pattern: str | Topic, handler: Handler | None = None) -> None:
        """Remove one handler (or all) for a pattern; retracts the
        server-side subscription when the last local handler goes."""
        text = pattern.canonical if isinstance(pattern, Topic) else pattern
        if handler is None:
            self._handlers.pop(text, None)
        else:
            handlers = self._handlers.get(text)
            if handlers and handler in handlers:
                handlers.remove(handler)
            if not handlers:
                self._handlers.pop(text, None)
        if text not in self._handlers:
            self.broker.remove_client_subscription(self.client_id, text)

    def subscriptions(self) -> list[str]:
        """Patterns this client currently subscribes to, sorted."""
        return sorted(self._handlers)

    # -------------------------------------------------------------- delivery

    def _receive(self, message: Message) -> None:
        """Delivery callback for the broker-to-client link."""
        self.monitor.increment("received")
        topic = message.topic.canonical
        for pattern, handlers in list(self._handlers.items()):
            if topic_matches(pattern, topic):
                for handler in list(handlers):
                    handler(message)

    def __repr__(self) -> str:
        broker = self._broker.broker_id if self._broker else None
        return f"<BrokerClient {self.client_id} @ {broker}>"
