"""Secure distribution of the secret trace key (section 5.1).

"To create this secure payload, the broker first creates a message
containing the secret trace key, the encryption algorithm and the padding
scheme that will be used.  The broker uses a combination of the tracker's
credential and a randomly generated secret key to secure the payload.
Only the tracker in possession of the private key associated with its
credentials can decipher the contents of the message and retrieve the
secret trace key."

That is exactly the hybrid :func:`~repro.crypto.signing.seal_for` scheme.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.keys import SymmetricKey
from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey
from repro.crypto.signing import SealedPayload, open_sealed, seal_for
from repro.errors import DecryptionError


@dataclass(frozen=True, slots=True)
class KeyDistributionPayload:
    """The sealed trace-key message published to one tracker."""

    trace_topic_hex: str
    sealed: SealedPayload

    def to_dict(self) -> dict:
        return {
            "kind": "key_distribution",
            "trace_topic": self.trace_topic_hex,
            "sealed": self.sealed.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "KeyDistributionPayload":
        return cls(
            trace_topic_hex=str(data["trace_topic"]),
            sealed=SealedPayload.from_dict(data["sealed"]),
        )


def build_key_payload(
    trace_key: SymmetricKey,
    trace_topic_hex: str,
    tracker_public_key: RSAPublicKey,
    rng: random.Random,
) -> KeyDistributionPayload:
    """Seal the trace key (+ algorithm + padding) to one tracker."""
    sealed = seal_for(trace_key.to_dict(), tracker_public_key, rng)
    return KeyDistributionPayload(trace_topic_hex=trace_topic_hex, sealed=sealed)


def open_key_payload(
    payload: KeyDistributionPayload, tracker_private_key: RSAPrivateKey
) -> SymmetricKey:
    """Tracker side: recover the secret trace key."""
    data = open_sealed(payload.sealed, tracker_private_key)
    if not isinstance(data, dict):
        raise DecryptionError("key payload decrypted to a non-dict")
    return SymmetricKey.from_dict(data)
