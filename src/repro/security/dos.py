"""Denial-of-service attacker models (section 5.2).

Two attacks the paper's design defeats:

* **Spurious trace injection** — an attacker publishes fabricated trace
  messages.  Routing brokers discard them because they lack a valid
  authorization token; repeated attempts get the attacker's connection
  terminated.  :class:`SpuriousTracePublisher` mounts exactly this attack
  so tests and examples can observe the defense.

* **Direct attack on the traced entity** — impossible without knowing the
  entity's location; all communication goes through topics embedding the
  unguessable 128-bit trace topic.  :func:`attack_surface` reports which
  principals know a given entity's location, demonstrating the claim.
"""

from __future__ import annotations

from typing import Generator

from repro.auth.tokens import AuthorizationToken, TokenRights
from repro.crypto.costmodel import CryptoOp
from repro.messaging.broker_network import BrokerNetwork
from repro.messaging.client import BrokerClient
from repro.sim.engine import Event, Simulator
from repro.sim.machine import Machine
from repro.tracing.topics import TraceTopicSet
from repro.tracing.traces import TraceType
from repro.util.identifiers import EntityId, UUID128


class SpuriousTracePublisher:
    """An attacker injecting fabricated traces about a victim entity.

    The attacker is assumed to have *somehow* learned the victim's trace
    topic (worst case) but holds no delegation from the victim, so it
    cannot produce a valid authorization token: any token it forges fails
    the owner-signature check at the first broker.
    """

    def __init__(
        self,
        sim: Simulator,
        attacker_id: str,
        network: BrokerNetwork,
        machine: Machine,
    ) -> None:
        self.sim = sim
        self.attacker_id = attacker_id
        self.network = network
        self.machine = machine
        self.client: BrokerClient | None = None
        self.attempts = 0

    def connect(self, broker_id: str) -> None:
        self.client = self.network.add_client(
            self.attacker_id, machine_name=self.machine.name
        )
        self.network.connect_client(self.client, broker_id)

    def inject_without_token(
        self, trace_topic: UUID128, victim: EntityId | str
    ) -> Generator[Event, None, None]:
        """Publish a fabricated FAILED trace with no token at all."""
        topics = TraceTopicSet(trace_topic, _as_entity(victim))
        body = self._fake_body(trace_topic, victim)
        self.attempts += 1
        self.client.publish(topics.change_notifications, body)
        yield self.sim.timeout(0.0)

    def inject_with_forged_token(
        self,
        trace_topic: UUID128,
        victim: EntityId | str,
        forged_advertisement,
    ) -> Generator[Event, None, None]:
        """Publish with a token signed by the attacker's *own* key.

        ``forged_advertisement`` is whatever advertisement the attacker can
        produce — it will not verify against a trusted TDN key, or its
        owner key will not match the token signature.
        """
        yield from self.machine.charge(CryptoOp.TOKEN_GENERATE_AND_SIGN)
        from repro.crypto.keys import KeyPair

        attacker_keys = KeyPair.generate(self.machine.rng)
        token, token_private = AuthorizationToken.create(
            advertisement=forged_advertisement,
            owner_private_key=attacker_keys.private,
            rights=TokenRights.PUBLISH,
            now_ms=self.machine.now(),
            duration_ms=600_000.0,
            rng=self.machine.rng,
        )
        topics = TraceTopicSet(trace_topic, _as_entity(victim))
        body = self._fake_body(trace_topic, victim)
        yield from self.machine.charge(CryptoOp.TRACE_SIGN)
        from repro.crypto.signing import sign_payload

        envelope = sign_payload(body, token_private)
        self.attempts += 1
        self.client.publish(
            topics.change_notifications,
            body,
            signature=envelope.to_dict(),
            auth_token=token.to_dict(),
        )
        yield self.sim.timeout(0.0)

    def flood(
        self, trace_topic: UUID128, victim: EntityId | str, count: int,
        spacing_ms: float = 1.0,
    ) -> Generator[Event, None, None]:
        """Repeated bogus attempts — enough to trigger termination."""
        for _ in range(count):
            if self.client is None or not self.client.connected:
                break
            yield from self.inject_without_token(trace_topic, victim)
            yield self.sim.timeout(spacing_ms)

    def _fake_body(self, trace_topic: UUID128, victim: EntityId | str) -> dict:
        return {
            "trace_type": TraceType.FAILED.value,
            "entity_id": str(victim),
            "trace_topic": trace_topic.hex,
            "session": "0" * 32,
            "payload": {"forged_by": self.attacker_id},
            "origin_stamp_ms": None,
            "broker_stamp_ms": self.machine.now(),
        }


def _as_entity(victim: EntityId | str) -> EntityId:
    return victim if isinstance(victim, EntityId) else EntityId(str(victim))


def attack_surface(
    network: BrokerNetwork, hosting_broker_id: str, entity_id: str
) -> dict:
    """Which principals can locate the traced entity (section 5.2).

    "Except the broker that a given traced entity is connected to, no other
    entity within the system is aware of the actual physical location of a
    given traced entity."
    """
    knows_location = []
    for broker in network.brokers():
        if entity_id in broker.client_ids:
            knows_location.append(broker.broker_id)
    return {
        "entity": entity_id,
        "brokers_knowing_location": knows_location,
        "expected": [hosting_broker_id],
        "location_confined_to_hosting_broker": knows_location == [hosting_broker_id],
    }
