"""Trace confidentiality (section 5.1).

"All trace messages, published by the broker, are encrypted using the
secret trace key.  Only the trackers in possession of the trace key can
decipher the contents of the trace messages."

The wrap keeps the trace *type* and routing-relevant fields outside the
ciphertext (topics already reveal the stream), and encrypts the payload
and timing fields.
"""

from __future__ import annotations

import random
from typing import Any

from repro.crypto.keys import SymmetricKey
from repro.errors import DecryptionError
from repro.util.serialization import canonical_decode, canonical_encode


def wrap_trace_body(
    body: dict, trace_key: SymmetricKey, rng: random.Random
) -> dict:
    """Encrypt a trace body under the session's secret trace key."""
    ciphertext = trace_key.encrypt(canonical_encode(body), rng)
    return {
        "secured": True,
        "trace_topic": body.get("trace_topic"),
        "ciphertext": ciphertext,
    }


def unwrap_trace_body(wrapped: dict, trace_key: SymmetricKey) -> dict:
    """Decrypt a wrapped trace body; raises :class:`DecryptionError`."""
    if not isinstance(wrapped, dict) or not wrapped.get("secured"):
        raise DecryptionError("body is not a secured trace")
    ciphertext = wrapped.get("ciphertext")
    if not isinstance(ciphertext, (bytes, bytearray)):
        raise DecryptionError("secured trace has no ciphertext")
    plaintext = trace_key.decrypt(bytes(ciphertext))
    try:
        body: Any = canonical_decode(plaintext)
    except ValueError as exc:
        # corruption in a non-final block survives the padding check but
        # yields garbage plaintext
        raise DecryptionError("secured trace decrypted to garbage") from exc
    if not isinstance(body, dict):
        raise DecryptionError("secured trace decrypted to a non-dict")
    return body
