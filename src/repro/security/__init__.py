"""Security (section 5): confidentiality, key distribution, DoS defenses.

* :mod:`repro.security.confidentiality` — wrapping/unwrapping of trace
  bodies under the session's secret trace key.
* :mod:`repro.security.keydist` — the secure trace-key distribution
  payload built for each authorized tracker.
* :mod:`repro.security.dos` — attacker models used by tests and the DoS
  example: spurious trace injection and direct-attack surface analysis.
* :mod:`repro.security.symmetric_opt` — helpers for the section 6.3
  signing-cost optimization (symmetric entity-broker channel).
"""

from repro.security.confidentiality import wrap_trace_body, unwrap_trace_body
from repro.security.keydist import KeyDistributionPayload, build_key_payload, open_key_payload

__all__ = [
    "wrap_trace_body",
    "unwrap_trace_body",
    "KeyDistributionPayload",
    "build_key_payload",
    "open_key_payload",
]
