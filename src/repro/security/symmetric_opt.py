"""The signing-cost optimization (section 6.3).

"Instead of signing every trace message that it generates, the entity
simply encrypts it with its symmetric key.  Since only the entity and the
broker are in possession of this secret key the broker accepts messages
encrypted with this key as having originated by the entity in question.
... the encryption/decryption costs are cheaper than the corresponding
signing/verification cost."

The mechanism itself lives in :class:`~repro.tracing.entity.TracedEntity`
(``use_symmetric_channel=True``) and the broker's
:meth:`~repro.tracing.broker_ops.TraceManager._authenticate_entity_message`.
This module provides the analytic cost comparison the Figure 5 benchmark
reports alongside measured values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.costmodel import CryptoCostModel, CryptoOp


@dataclass(frozen=True, slots=True)
class ChannelCostComparison:
    """Mean per-message entity-to-broker authentication costs (ms)."""

    signing_entity_ms: float
    signing_broker_ms: float
    symmetric_entity_ms: float
    symmetric_broker_ms: float

    @property
    def signing_total_ms(self) -> float:
        return self.signing_entity_ms + self.signing_broker_ms

    @property
    def symmetric_total_ms(self) -> float:
        return self.symmetric_entity_ms + self.symmetric_broker_ms

    @property
    def savings_ms(self) -> float:
        """Expected end-to-end saving per traced-entity message."""
        return self.signing_total_ms - self.symmetric_total_ms


def predicted_savings(cost_model: CryptoCostModel) -> ChannelCostComparison:
    """Analytic prediction of the section-6.3 optimization's effect."""
    return ChannelCostComparison(
        signing_entity_ms=cost_model.mean_ms(CryptoOp.TRACE_SIGN),
        signing_broker_ms=cost_model.mean_ms(CryptoOp.TRACE_VERIFY),
        symmetric_entity_ms=cost_model.mean_ms(CryptoOp.TRACE_ENCRYPT),
        symmetric_broker_ms=cost_model.mean_ms(CryptoOp.TRACE_DECRYPT),
    )
