"""Clock abstractions: virtual simulation time, wall time, and NTP skew.

All times in this library are float **milliseconds**, matching the units the
paper reports.  The authorization-token validity check (section 4.3) tolerates
clock skew because "use of NTP timestamps ensures that timestamps are within
30-100 milliseconds of each other"; :class:`NTPSkewModel` reproduces exactly
that band so token-expiry edge cases can be exercised in tests.
"""

from __future__ import annotations

import random
import time
from abc import ABC, abstractmethod

from repro.errors import ConfigurationError, ValidationError

#: The paper's stated NTP synchronization band, in milliseconds.
NTP_SKEW_MIN_MS = 30.0
NTP_SKEW_MAX_MS = 100.0


class Clock(ABC):
    """Read-only source of the current time in milliseconds."""

    @abstractmethod
    def now(self) -> float:
        """Current time in milliseconds."""


class VirtualClock(Clock):
    """Simulation clock advanced explicitly by the event loop."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to absolute time ``t`` (never backward)."""
        if t < self._now:
            raise ValidationError(f"clock cannot move backward: {t} < {self._now}")
        self._now = t

    def advance_by(self, dt: float) -> None:
        """Move the clock forward by ``dt`` milliseconds."""
        if dt < 0:
            raise ValidationError(f"negative advance: {dt}")
        self._now += dt


class WallClock(Clock):
    """Real time, for the asyncio live runtime."""

    def __init__(self) -> None:
        self._epoch = time.monotonic()  # repro: noqa[DET01] the wall-clock bridge itself

    def now(self) -> float:
        return (time.monotonic() - self._epoch) * 1000.0  # repro: noqa[DET01]


class SkewedClock(Clock):
    """A node-local view of a reference clock, offset by a fixed skew.

    Models imperfect NTP synchronization: each node reads the shared
    simulation clock plus its own constant offset.
    """

    def __init__(self, reference: Clock, offset_ms: float) -> None:
        self._reference = reference
        self.offset_ms = float(offset_ms)

    def now(self) -> float:
        return self._reference.now() + self.offset_ms


class NTPSkewModel:
    """Draws per-node clock offsets within the paper's 30-100 ms NTP band.

    Offsets are symmetric around zero: a node may run ahead or behind the
    reference by 30-100 ms in magnitude, or be perfectly synchronized with
    probability ``p_synced``.
    """

    def __init__(
        self,
        seed: int | None = None,
        min_skew_ms: float = NTP_SKEW_MIN_MS,
        max_skew_ms: float = NTP_SKEW_MAX_MS,
        p_synced: float = 0.0,
    ) -> None:
        if min_skew_ms < 0 or max_skew_ms < min_skew_ms:
            raise ConfigurationError("require 0 <= min_skew_ms <= max_skew_ms")
        if not 0.0 <= p_synced <= 1.0:
            raise ConfigurationError("p_synced must be in [0, 1]")
        self._rng = random.Random(seed)
        self.min_skew_ms = min_skew_ms
        self.max_skew_ms = max_skew_ms
        self.p_synced = p_synced

    def sample_offset(self) -> float:
        """One signed clock offset in milliseconds."""
        if self._rng.random() < self.p_synced:
            return 0.0
        magnitude = self._rng.uniform(self.min_skew_ms, self.max_skew_ms)
        sign = 1.0 if self._rng.random() < 0.5 else -1.0
        return sign * magnitude

    def clock_for_node(self, reference: Clock) -> SkewedClock:
        """A new skewed view of ``reference`` for one node."""
        return SkewedClock(reference, self.sample_offset())

    @property
    def tolerance_ms(self) -> float:
        """Skew bound a validity check must tolerate (the paper's 100 ms)."""
        return self.max_skew_ms
