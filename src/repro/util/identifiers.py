"""Identifiers used throughout the tracing framework.

The paper's trace topics are built around 128-bit UUIDs "guaranteed to be
unique in space and time" and generated *at the TDN* so that no entity can
claim another entity's topic (section 3.1).  For deterministic simulation we
generate UUIDs from a seeded random stream rather than from the host's
entropy pool; the uniqueness guarantee is enforced structurally (a generator
never repeats within a simulation run).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ValidationError


@dataclass(frozen=True, slots=True)
class UUID128:
    """A 128-bit identifier, printable as 32 hex digits.

    Instances are value objects: equality and hashing are by the integer
    value, so they can key dictionaries (e.g. the TDN advertisement store).
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << 128):
            raise ValidationError(f"UUID128 value out of range: {self.value!r}")

    @property
    def hex(self) -> str:
        """The canonical 32-hex-digit rendering (no dashes)."""
        return f"{self.value:032x}"

    @property
    def bytes(self) -> bytes:
        """Big-endian 16-byte rendering."""
        return self.value.to_bytes(16, "big")

    @classmethod
    def from_hex(cls, text: str) -> "UUID128":
        """Parse a 32-hex-digit string (dashes tolerated)."""
        cleaned = text.replace("-", "")
        if len(cleaned) != 32:
            raise ValidationError(f"expected 32 hex digits, got {text!r}")
        return cls(int(cleaned, 16))

    @classmethod
    def from_bytes(cls, data: bytes) -> "UUID128":
        if len(data) != 16:
            raise ValidationError(f"expected 16 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    def __str__(self) -> str:
        return self.hex

    def __repr__(self) -> str:
        return f"UUID128({self.hex!r})"


class UUIDGenerator:
    """Deterministic UUID source backed by a seeded RNG.

    Guarantees no repeats within a single generator instance, which is the
    property the TDN relies on when minting trace topics.
    """

    def __init__(self, seed: int | None = None) -> None:
        self._rng = random.Random(seed)
        self._issued: set[int] = set()

    def next(self) -> UUID128:
        while True:
            value = self._rng.getrandbits(128)
            if value not in self._issued:
                self._issued.add(value)
                return UUID128(value)

    def __iter__(self) -> Iterator[UUID128]:
        while True:
            yield self.next()


@dataclass(frozen=True, slots=True)
class EntityId:
    """Identifier for an entity (resource, service, application or user).

    The paper keys discovery on the Entity-ID (descriptor
    ``Availability/Traces/<Entity-ID>``), so the id must be stable and
    embeddable in a topic segment: we forbid '/' characters.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("EntityId must be non-empty")
        if "/" in self.name:
            raise ValidationError(f"EntityId may not contain '/': {self.name!r}")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class RequestId:
    """Correlates a request message with its response (section 3.2)."""

    value: int

    def __str__(self) -> str:
        return f"req-{self.value}"


@dataclass(frozen=True, slots=True)
class SessionId:
    """Broker-minted identifier for one traced-entity registration session."""

    value: UUID128

    def __str__(self) -> str:
        return f"sess-{self.value.hex[:12]}"

    @property
    def topic_segment(self) -> str:
        """The rendering used when a session id is embedded in a topic."""
        return self.value.hex


@dataclass(slots=True)
class SequenceCounter:
    """Monotonically increasing counter (ping message numbers, request ids)."""

    _next: int = field(default=0)

    def next(self) -> int:
        value = self._next
        self._next += 1
        return value

    def peek(self) -> int:
        return self._next

    def next_request_id(self) -> RequestId:
        return RequestId(self.next())
