"""Streaming statistics matching the paper's reporting format.

Table 3 and Table 4 report mean, standard deviation and standard error for
each operation; :class:`RunningStats` accumulates those with Welford's
numerically stable online algorithm so benchmark harnesses never need to
retain raw samples (though they may, for percentile reporting).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import StatsError


@dataclass(frozen=True, slots=True)
class StatSummary:
    """Immutable summary in the paper's table format."""

    count: int
    mean: float
    std_dev: float
    std_error: float
    minimum: float
    maximum: float

    def row(self, label: str, precision: int = 2) -> str:
        """One formatted table row: label, mean, std dev, std error."""
        return (
            f"{label:<40s} {self.mean:>10.{precision}f} "
            f"{self.std_dev:>10.{precision}f} {self.std_error:>10.{precision}f}"
        )

    @staticmethod
    def header() -> str:
        return (
            f"{'Operation':<40s} {'Mean':>10s} {'Std.Dev':>10s} {'Std.Err':>10s}"
        )


class RunningStats:
    """Welford online mean/variance accumulator.

    >>> rs = RunningStats()
    >>> for x in (1.0, 2.0, 3.0): rs.add(x)
    >>> rs.mean
    2.0
    """

    __slots__ = ("_n", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, x: float) -> None:
        """Incorporate one sample."""
        self._n += 1
        delta = x - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (x - self._mean)
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def count(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        if self._n == 0:
            raise StatsError("no samples")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample (Bessel-corrected) variance."""
        if self._n < 2:
            return 0.0
        return self._m2 / (self._n - 1)

    @property
    def std_dev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def std_error(self) -> float:
        """Standard error of the mean (σ / √n)."""
        if self._n == 0:
            return 0.0
        return self.std_dev / math.sqrt(self._n)

    @property
    def minimum(self) -> float:
        if self._n == 0:
            raise StatsError("no samples")
        return self._min

    @property
    def maximum(self) -> float:
        if self._n == 0:
            raise StatsError("no samples")
        return self._max

    def summary(self) -> StatSummary:
        if self._n == 0:
            raise StatsError("no samples to summarize")
        return StatSummary(
            count=self._n,
            mean=self.mean,
            std_dev=self.std_dev,
            std_error=self.std_error,
            minimum=self._min,
            maximum=self._max,
        )

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two accumulators (parallel-friendly Chan et al. merge)."""
        merged = RunningStats()
        if self._n == 0:
            merged._n, merged._mean, merged._m2 = other._n, other._mean, other._m2
            merged._min, merged._max = other._min, other._max
            return merged
        if other._n == 0:
            merged._n, merged._mean, merged._m2 = self._n, self._mean, self._m2
            merged._min, merged._max = self._min, self._max
            return merged
        n = self._n + other._n
        delta = other._mean - self._mean
        merged._n = n
        merged._mean = self._mean + delta * other._n / n
        merged._m2 = self._m2 + other._m2 + delta * delta * self._n * other._n / n
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged


def summarize(samples: Sequence[float]) -> StatSummary:
    """Summary of a finished sample set."""
    rs = RunningStats()
    rs.extend(samples)
    return rs.summary()


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not samples:
        raise StatsError("no samples")
    if not 0.0 <= q <= 100.0:
        raise StatsError(f"percentile out of range: {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    value = ordered[low] * (1.0 - frac) + ordered[high] * frac
    # guard against floating-point rounding (e.g. denormals) drifting the
    # interpolant outside the bracketing samples
    return min(max(value, ordered[low]), ordered[high])
