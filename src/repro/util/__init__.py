"""Foundational utilities: identifiers, clocks, statistics, serialization."""

from repro.util.identifiers import UUID128, EntityId, RequestId, SessionId, SequenceCounter
from repro.util.clock import Clock, VirtualClock, WallClock, SkewedClock, NTPSkewModel
from repro.util.stats import RunningStats, StatSummary, summarize
from repro.util.serialization import canonical_encode, canonical_decode

__all__ = [
    "UUID128",
    "EntityId",
    "RequestId",
    "SessionId",
    "SequenceCounter",
    "Clock",
    "VirtualClock",
    "WallClock",
    "SkewedClock",
    "NTPSkewModel",
    "RunningStats",
    "StatSummary",
    "summarize",
    "canonical_encode",
    "canonical_decode",
]
