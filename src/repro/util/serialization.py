"""Canonical byte serialization for signing and encryption.

Digital signatures and message digests must be computed over a *stable* byte
rendering of a message: two structurally equal messages must serialize to
identical bytes regardless of dict insertion order.  JSON with sorted keys
would almost suffice, but we also need raw ``bytes`` payloads (ciphertexts,
key material) and tuple/int round-tripping, so we use a small self-describing
binary format (a deterministic subset of a bencoding-like scheme).

Supported types: ``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes``,
``list``/``tuple`` (decoded as list), and ``dict`` with ``str`` keys (encoded
in sorted key order).
"""

from __future__ import annotations

import struct
from typing import Any

from repro.errors import SerializationDecodeError, SerializationTypeError

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_LIST = b"l"
_TAG_DICT = b"d"
_TAG_END = b"e"


def canonical_encode(value: Any) -> bytes:
    """Encode ``value`` to its unique canonical byte string."""
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def canonical_encode_into(value: Any, out: bytearray) -> int:
    """Append the canonical encoding of ``value`` to ``out``.

    The streaming variant of :func:`canonical_encode`: callers that size
    many payloads (``repro.wire``) reuse one pooled scratch buffer instead
    of allocating a fresh ``bytes`` per encode.  Returns the number of
    bytes appended.
    """
    before = len(out)
    _encode_into(value, out)
    return len(out) - before


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        rendered = str(value).encode("ascii")
        out += _TAG_INT
        out += str(len(rendered)).encode("ascii")
        out += b":"
        out += rendered
    elif isinstance(value, float):
        # Fixed 8-byte IEEE-754 big-endian: bit-exact round trip.
        out += _TAG_FLOAT
        out += struct.pack(">d", value)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out += _TAG_STR
        out += str(len(data)).encode("ascii")
        out += b":"
        out += data
    elif isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        out += _TAG_BYTES
        out += str(len(data)).encode("ascii")
        out += b":"
        out += data
    elif isinstance(value, (list, tuple)):
        out += _TAG_LIST
        for item in value:
            _encode_into(item, out)
        out += _TAG_END
    elif isinstance(value, dict):
        out += _TAG_DICT
        keys = list(value.keys())
        for key in keys:
            if not isinstance(key, str):
                raise SerializationTypeError(f"dict keys must be str, got {type(key).__name__}")
        for key in sorted(keys):
            _encode_into(key, out)
            _encode_into(value[key], out)
        out += _TAG_END
    else:
        raise SerializationTypeError(f"cannot canonically encode {type(value).__name__}")


def canonical_decode(data: bytes) -> Any:
    """Decode bytes produced by :func:`canonical_encode`.

    Raises ``ValueError`` on malformed or trailing data.
    """
    value, offset = _decode_from(data, 0)
    if offset != len(data):
        raise SerializationDecodeError(f"trailing bytes after canonical value at offset {offset}")
    return value


def _read_length(data: bytes, offset: int) -> tuple[int, int]:
    end = data.find(b":", offset)
    if end < 0:
        raise SerializationDecodeError("missing length delimiter")
    text = data[offset:end]
    if not text or not text.lstrip(b"-").isdigit():
        raise SerializationDecodeError(f"bad length field {text!r}")
    return int(text), end + 1


def _decode_from(data: bytes, offset: int) -> tuple[Any, int]:
    if offset >= len(data):
        raise SerializationDecodeError("unexpected end of canonical data")
    tag = data[offset : offset + 1]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        length, offset = _read_length(data, offset)
        chunk = data[offset : offset + length]
        if len(chunk) != length:
            raise SerializationDecodeError("truncated int")
        return int(chunk), offset + length
    if tag == _TAG_FLOAT:
        chunk = data[offset : offset + 8]
        if len(chunk) != 8:
            raise SerializationDecodeError("truncated float")
        return struct.unpack(">d", chunk)[0], offset + 8
    if tag == _TAG_STR:
        length, offset = _read_length(data, offset)
        chunk = data[offset : offset + length]
        if len(chunk) != length:
            raise SerializationDecodeError("truncated str")
        return chunk.decode("utf-8"), offset + length
    if tag == _TAG_BYTES:
        length, offset = _read_length(data, offset)
        chunk = data[offset : offset + length]
        if len(chunk) != length:
            raise SerializationDecodeError("truncated bytes")
        return chunk, offset + length
    if tag == _TAG_LIST:
        items: list[Any] = []
        while True:
            if offset >= len(data):
                raise SerializationDecodeError("unterminated list")
            if data[offset : offset + 1] == _TAG_END:
                return items, offset + 1
            item, offset = _decode_from(data, offset)
            items.append(item)
    if tag == _TAG_DICT:
        result: dict[str, Any] = {}
        previous_key: str | None = None
        while True:
            if offset >= len(data):
                raise SerializationDecodeError("unterminated dict")
            if data[offset : offset + 1] == _TAG_END:
                return result, offset + 1
            key, offset = _decode_from(data, offset)
            if not isinstance(key, str):
                raise SerializationDecodeError("dict key must decode to str")
            if previous_key is not None and key <= previous_key:
                raise SerializationDecodeError("dict keys not in canonical order")
            previous_key = key
            value, offset = _decode_from(data, offset)
            result[key] = value
    raise SerializationDecodeError(f"unknown tag {tag!r} at offset {offset - 1}")
