#!/usr/bin/env python3
"""Grid-service monitoring: the workload the paper's introduction motivates.

A small computational grid runs services on different sites (brokers).  An
operations tracker follows all of them; a scheduler tracker only wants
load information to place jobs.  During the run one service crashes (and
is detected via FAILURE_SUSPICION -> FAILED), another degrades and
recovers (RECOVERING -> READY), and services report their host load.

Run:  python examples/grid_service_monitor.py
"""

from repro import build_deployment, EntityState, TraceType
from repro.tracing.failure import AdaptivePingPolicy
from repro.tracing.interest import InterestCategory
from repro.tracing.traces import LoadInformation

SERVICES = ["compute-01", "compute-02", "storage-01", "gateway-01"]


def main() -> None:
    dep = build_deployment(
        broker_ids=["site-a", "site-b", "site-c"],
        seed=7,
        ping_policy=AdaptivePingPolicy(
            base_interval_ms=1_000.0, min_interval_ms=200.0,
            max_interval_ms=4_000.0, response_deadline_ms=300.0,
        ),
    )

    # services spread over the grid sites
    entities = {}
    for index, name in enumerate(SERVICES):
        entity = dep.add_traced_entity(name)
        entity.start(["site-a", "site-b", "site-c"][index % 3])
        entities[name] = entity
    dep.sim.run(until=4_000)

    # operations wants everything; the scheduler only load information
    ops = dep.add_tracker("ops-console")
    ops.connect("site-c")
    scheduler = dep.add_tracker(
        "job-scheduler", interests=frozenset({InterestCategory.LOAD})
    )
    scheduler.connect("site-a")
    for name in SERVICES:
        ops.track(name)
        scheduler.track(name)

    # live event log at the operations console
    ops.on_trace = lambda t: print(
        f"  [{t.received_ms/1000:7.2f}s] {t.entity_id:<12s} {t.trace_type.value}"
    )

    print("== grid running ==")
    dep.sim.run(until=12_000)

    # compute-02's host heats up, degrades, then recovers
    print("== compute-02 reports load, degrades, recovers ==")
    e = entities["compute-02"]
    dep.sim.process(e.report_load(LoadInformation(0.93, 3_600.0, 4_096.0, 48)))
    dep.sim.run(until=13_000)
    dep.sim.process(e.report_state(EntityState.RECOVERING))
    dep.sim.run(until=18_000)
    dep.sim.process(e.report_state(EntityState.READY))
    dep.sim.run(until=22_000)

    # storage-01 crashes hard: watch suspicion escalate to failure
    print("== storage-01 crashes ==")
    entities["storage-01"].crash()
    dep.sim.run(until=60_000)

    # gateway-01 shuts down gracefully
    print("== gateway-01 shuts down ==")
    dep.sim.process(entities["gateway-01"].shutdown())
    dep.sim.run(until=70_000)

    print("\n== summary ==")
    for name in SERVICES:
        kinds = [t.trace_type for t in ops.received if t.entity_id == name]
        failed = TraceType.FAILED in kinds
        shutdown = TraceType.SHUTDOWN in kinds
        status = "FAILED" if failed else ("SHUTDOWN" if shutdown else "READY")
        print(f"  {name:<12s} traces={len(kinds):3d}  final={status}")

    load_traces = scheduler.traces_of_type(TraceType.LOAD_INFORMATION)
    print(f"\nscheduler saw {len(load_traces)} load reports and "
          f"{len(scheduler.received) - len(load_traces)} other traces "
          "(selective interest keeps its stream lean)")
    detection = dep.monitor.events("failure_declared")
    if detection:
        print(f"storage-01 failure declared at t={detection[0][0]/1000:.2f}s "
              "by its hosting broker")


if __name__ == "__main__":
    main()
