#!/usr/bin/env python3
"""Live playback: watch the protocol run in (compressed) real time.

Uses the RealTimeDriver to pace the deterministic simulation against the
wall clock at 20x speed — a 60-virtual-second scenario plays back in about
three seconds, printing traces the moment they arrive.

Run:  python examples/live_dashboard.py
"""

import sys
import time

from repro import build_deployment, TraceType
from repro.runtime import RealTimeDriver

SPEED = 20.0


def main() -> None:
    dep = build_deployment(broker_ids=["b-west", "b-east"], seed=11)
    entity = dep.add_traced_entity("api-server")
    tracker = dep.add_tracker("noc-screen")
    tracker.connect("b-east")

    wall_start = time.monotonic()

    def show(trace) -> None:
        wall = time.monotonic() - wall_start
        latency = f"{trace.latency_ms:6.1f} ms" if trace.latency_ms else "      --"
        print(f"[wall {wall:5.2f}s | sim {trace.received_ms/1000:6.2f}s] "
              f"{trace.trace_type.value:<18s} {latency}")
        sys.stdout.flush()

    tracker.on_trace = show

    entity.start("b-west")
    driver = RealTimeDriver(dep.sim, speed=SPEED)

    print(f"== live playback at {SPEED:.0f}x: startup + tracking ==")
    driver.run(until=3_000)
    tracker.track("api-server")
    driver.run(until=20_000)

    print("== api-server crashes; watch the detector escalate ==")
    entity.crash()
    driver.run(until=60_000)

    failed = tracker.traces_of_type(TraceType.FAILED)
    suspicion = tracker.traces_of_type(TraceType.FAILURE_SUSPICION)
    print(f"\nsuspicion raised: {bool(suspicion)}; failure declared: {bool(failed)}")
    print(f"playback lag at end: {driver.lag_ms:.1f} virtual ms")


if __name__ == "__main__":
    main()
