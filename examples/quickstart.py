#!/usr/bin/env python3
"""Quickstart: trace one entity, watch its heartbeats.

Builds a three-broker deployment, registers a traced entity on the first
broker, points a tracker at it from the last broker, and prints the
heartbeat stream the tracker receives — every trace signed with the
entity-delegated authorization token and verified end to end.

Run:  python examples/quickstart.py
"""

from repro import build_deployment, TraceType


def main() -> None:
    # 1. a deployment: brokers in a chain, TDN cluster, CA, guards installed
    dep = build_deployment(broker_ids=["broker-a", "broker-b", "broker-c"], seed=42)

    # 2. an entity that wants to be traced, and a tracker that cares
    entity = dep.add_traced_entity("payment-service")
    tracker = dep.add_tracker("ops-dashboard")
    tracker.connect("broker-c")

    # 3. the entity runs its full startup protocol: trace-topic creation at
    #    the TDN, registration with its broker, token delegation
    entity.start("broker-a")
    dep.sim.run(until=3_000)  # 3 virtual seconds
    print(f"entity registered: session={entity.session_id}, state={entity.state.value}")

    # 4. the tracker discovers the trace topic (authorized via the TDN) and
    #    subscribes to all trace streams
    tracker.track("payment-service")
    dep.sim.run(until=30_000)  # 30 virtual seconds

    # 5. what arrived?
    heartbeats = tracker.traces_of_type(TraceType.ALLS_WELL)
    latencies = tracker.latencies(TraceType.ALLS_WELL)
    print(f"\nreceived {len(tracker.received)} traces, "
          f"{len(heartbeats)} of them ALLS_WELL heartbeats")
    if latencies:
        mean = sum(latencies) / len(latencies)
        print(f"mean end-to-end trace latency: {mean:.2f} ms "
              f"(crypto-dominated, as the paper reports)")

    metrics = tracker.traces_of_type(TraceType.NETWORK_METRICS)
    if metrics:
        last = metrics[-1].payload
        print(f"latest network metrics: rtt={last['mean_rtt_ms']:.2f} ms, "
              f"loss={last['loss_rate']:.1%}")


if __name__ == "__main__":
    main()
