#!/usr/bin/env python3
"""Chaos recovery: crash a broker, watch the system get the entity back.

Builds the three-broker ring the chaos scenarios use, starts one traced
entity and one tracker, then hands a `FaultPlan` to the `FaultController`:
broker `b1` dies at t=20 s for 30 s, with failover to `b2` once the
outage is noticed.  The run prints the full recovery story — crash,
detection, migration, re-registration — and the measured detection →
re-registration latency (`trace.recovery_ms`), bit-identical on every
rerun at the same seed.

Run:  python examples/chaos_recovery.py
"""

from repro import TraceType
from repro.faults import FaultController, FaultEvent, FaultKind, FaultPlan
from repro.faults.scenarios import build_chaos_deployment

SEED = 42


def main() -> None:
    # 1. the shared chaos deployment: brokers b1-b2-b3 in a ring, with a
    #    fast ping policy so the paper's miss thresholds resolve quickly
    dep = build_chaos_deployment(seed=SEED)
    entity = dep.add_traced_entity("svc")
    tracker = dep.add_tracker("watchdog")
    tracker.connect("b3")
    entity.start("b1")

    # 2. the fault schedule: one broker crash with failover, as data
    plan = FaultPlan(
        name="crash-and-recover",
        events=(
            FaultEvent(
                kind=FaultKind.BROKER_CRASH,
                at_ms=20_000.0,
                target="b1",
                duration_ms=30_000.0,
                failover_to="b2",
                detect_after_ms=2_000.0,
            ),
        ),
    )
    controller = FaultController(dep, plan)
    controller.start()  # before sim.run; installs the RecoveryProbe

    # 3. run: bootstrap, track, then let the crash and the recovery play out
    dep.sim.run(until=3_000)
    tracker.track("svc")
    dep.sim.run(until=90_000)

    # 4. the story, straight from the journal
    print("chaos timeline (virtual ms):")
    for kind in ("fault.injected", "fault.failover",
                 "recovery.detected", "recovery.completed", "fault.reverted"):
        for rec in dep.journal.records(kind):
            detail = ", ".join(
                f"{k}={v}" for k, v in sorted(rec.fields.items())
            )
            print(f"  t={rec.time_ms:>9.2f}  {rec.kind:<19} {detail}")

    # 5. the recovery summary the chaos seed gate pins
    registry = dep.metrics
    detected = registry.counter_value("trace.recovery.detected")
    completed = registry.counter_value("trace.recovery.completed")
    recovery = registry.snapshot()["histograms"].get("trace.recovery_ms", {})
    heartbeats = tracker.traces_of_type(TraceType.ALLS_WELL)
    post_crash = [t for t in heartbeats if t.received_ms > 20_000.0]

    print(f"\nfailures detected: {detected}, recoveries completed: {completed}")
    print(f"recovery windows still open: {controller.probe.pending() or 'none'}")
    if recovery.get("count"):
        print(f"detection -> re-registration latency: {recovery['mean']:.2f} ms")
    print(f"heartbeats received: {len(heartbeats)} total, "
          f"{len(post_crash)} after the crash — the stream survived the outage")
    print(f"(seed={SEED}; rerun reproduces every number above exactly)")


if __name__ == "__main__":
    main()
