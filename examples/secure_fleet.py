#!/usr/bin/env python3
"""Secured tracing with restricted discovery and a live attacker.

A fleet service encrypts its traces (section 5.1) and restricts discovery
of its trace topic to a named partner (section 3.1).  The demo shows:

* the authorized tracker discovering the topic, receiving the secret
  trace key via the sealed key-distribution payload, and decrypting
  heartbeats;
* an unauthorized tracker getting silence from the TDN;
* a snooping tracker that somehow knows the topics but holds no key,
  unable to read a single trace;
* an attacker injecting forged FAILED traces, discarded by the brokers,
  and terminated after repeated attempts (section 5.2).

Run:  python examples/secure_fleet.py
"""

from repro import build_deployment, TraceType
from repro.errors import DiscoveryError
from repro.security.dos import SpuriousTracePublisher, attack_surface
from repro.tdn.query import DiscoveryRestrictions


def main() -> None:
    dep = build_deployment(broker_ids=["edge", "core"], seed=99)

    fleet = dep.add_traced_entity(
        "fleet-coordinator",
        secured=True,
        restrictions=DiscoveryRestrictions.allow_only("partner-dashboard"),
    )
    fleet.start("edge")
    dep.sim.run(until=3_000)

    # -- authorized partner ---------------------------------------------------
    partner = dep.add_tracker("partner-dashboard")
    partner.connect("core")
    partner.track("fleet-coordinator")
    dep.sim.run(until=20_000)
    key = partner.trace_key_for("fleet-coordinator")
    heartbeats = partner.traces_of_type(TraceType.ALLS_WELL)
    print(f"partner-dashboard: trace key received = {key is not None}, "
          f"decrypted heartbeats = {len(heartbeats)}")

    # -- unauthorized discovery -------------------------------------------------
    outsider = dep.add_tracker("outsider")
    outsider.connect("core")
    proc = outsider.track("fleet-coordinator")
    dep.sim.run(until=22_000)
    try:
        _ = proc.value
        print("outsider: UNEXPECTEDLY discovered the topic!")
    except DiscoveryError:
        print("outsider: TDN ignored the discovery request "
              "(unauthorized and nonexistent are indistinguishable)")

    # -- snoop with topics but no key -------------------------------------------
    # grant the snoop discovery (it is 'partner-dashboard'? no — simulate a
    # leak by tracking via the TDN after loosening nothing: instead the
    # snoop subscribes with stolen topic knowledge but never answers
    # gauges, so it is never keyed
    snoop = dep.add_tracker("partner-dashboard-clone", proactive_interest=False)
    snoop.connect("core")
    topics = dep.manager_of("edge").session_of("fleet-coordinator").topics
    snoop.client = dep.network.add_client("snoop-conn", machine_name="machine-snoop")
    dep.network.connect_client(snoop.client, "core")
    got_ciphertext = []
    snoop.client.subscribe(
        topics.all_updates, lambda m: got_ciphertext.append(m)
    )
    dep.sim.run(until=40_000)
    readable = [m for m in got_ciphertext if not m.encrypted]
    print(f"snoop: captured {len(got_ciphertext)} trace messages on the wire, "
          f"{len(readable)} readable without the trace key")

    # -- active attacker ----------------------------------------------------------
    attacker = SpuriousTracePublisher(
        dep.sim, "mallory", dep.network, dep.network.machine("machine-mallory")
    )
    attacker.connect("core")
    dep.sim.process(
        attacker.flood(fleet.advertisement.trace_topic, "fleet-coordinator", count=8)
    )
    dep.sim.run(until=60_000)
    broker = dep.network.broker("core")
    fake_failed = partner.traces_of_type(TraceType.FAILED)
    print(f"mallory: injected {attacker.attempts} forged traces; "
          f"partner saw {len(fake_failed)} FAILED traces; "
          f"terminated = {broker.is_blacklisted('mallory')}")

    surface = attack_surface(dep.network, "edge", "fleet-coordinator")
    print(f"location hiding: brokers knowing the entity's location = "
          f"{surface['brokers_knowing_location']} (expected {surface['expected']})")


if __name__ == "__main__":
    main()
