#!/usr/bin/env python3
"""Perf diffing: measure an optimization with before/after snapshots.

The docs/PERFORMANCE.md evidence loop, end to end: run the co-located
ping-heavy scenario twice from the same seed — once with the hot-path
optimizations disabled (`legacy_hot_paths=True`: no token-verification
cache, no ping coalescing) and once with the defaults — then diff the
two registry snapshots with `repro.obs.diff` and print the table a perf
PR would paste.  The same table is available from the CLI:

    repro metrics --diff before.json after.json

Run:  python examples/perf_diff.py
"""

from repro.bench.hotpath import run_ping_heavy
from repro.obs import diff_snapshots, render_diff

SEED = 42
DURATION_MS = 30_000.0


def main() -> None:
    # 1. both sides of the experiment, same seed, same virtual duration
    print("running ping-heavy scenario (12 co-located entities) twice...")
    before = run_ping_heavy(
        seed=SEED, duration_ms=DURATION_MS, legacy_hot_paths=True
    )
    after = run_ping_heavy(seed=SEED, duration_ms=DURATION_MS)

    # 2. the headline numbers a perf PR leads with
    def verify_sum(snapshot):
        hist = snapshot["histograms"].get("crypto.ms.token_verify", {"count": 0})
        return hist.get("count", 0) * hist.get("mean", 0.0)

    v_before, v_after = verify_sum(before), verify_sum(after)
    b_before = before["counters"]["transport.bytes.sent"]
    b_after = after["counters"]["transport.bytes.sent"]
    print()
    print(
        f"token verification cost: {v_before:.1f} -> {v_after:.1f} ms "
        f"({100.0 * (1.0 - v_after / v_before):.1f}% less)"
    )
    print(
        f"wire bytes sent:         {b_before} -> {b_after} "
        f"({100.0 * (1.0 - b_after / b_before):.1f}% less)"
    )
    print(
        "cache hits: "
        f"{after['counters'].get('auth.token.cache.hit', 0)}, "
        "coalesced pings: "
        f"{after['counters'].get('tracker.pings.coalesced', 0)}"
    )

    # 3. the full per-instrument delta table (changed rows only)
    print()
    print("before/after diff table:")
    print(render_diff(diff_snapshots(before, after)))


if __name__ == "__main__":
    main()
