#!/usr/bin/env python3
"""Downstream analytics on a trace stream: uptime records and forecasts.

The tracing scheme delivers verified traces; this example shows what a
consumer builds on top of them:

* an AvailabilityArchive turning change notifications into per-entity
  uptime records (availability %, outage count, MTTR),
* a NetworkForecaster running NWS-style predictors (the paper's Ref [4])
  over NETWORK_METRICS traces to answer "what RTT should I expect?".

Run:  python examples/availability_analytics.py
"""

from repro import build_deployment
from repro.tracing.archive import AvailabilityArchive
from repro.tracing.failure import AdaptivePingPolicy
from repro.tracing.forecast import NetworkForecaster


def main() -> None:
    dep = build_deployment(
        broker_ids=["b1", "b2"],
        seed=31,
        ping_policy=AdaptivePingPolicy(
            base_interval_ms=1_000.0, min_interval_ms=200.0,
            max_interval_ms=2_000.0, response_deadline_ms=300.0,
        ),
    )
    flaky = dep.add_traced_entity("flaky-worker")
    steady = dep.add_traced_entity("steady-worker")
    tracker = dep.add_tracker("analytics")
    tracker.connect("b2")

    archive = AvailabilityArchive(tracker)
    forecaster = NetworkForecaster(tracker)

    flaky.start("b1")
    steady.start("b1")
    dep.sim.run(until=4_000)
    tracker.track("flaky-worker")
    tracker.track("steady-worker")

    # the flaky worker crashes twice and re-registers each time
    for round_start in (30_000, 120_000):
        dep.sim.run(until=round_start)
        flaky.crash()
        dep.sim.run(until=round_start + 60_000)
        dep.sim.process(flaky.reregister())

    dep.sim.run(until=300_000)

    print("== availability after 5 virtual minutes ==")
    print(archive.report(dep.sim.now))

    flaky_record = archive.record_of("flaky-worker")
    mttr = flaky_record.mean_time_to_recover_ms()
    print(f"\nflaky-worker: {flaky_record.down_count} outages, "
          f"MTTR {mttr/1000:.1f}s, was it up at t=100s? "
          f"{flaky_record.was_up_at(100_000, dep.sim.now)}")

    print("\n== network forecasts (NWS-style predictor selection) ==")
    for name in ("flaky-worker", "steady-worker"):
        rtt = forecaster.forecast_rtt_ms(name)
        if rtt is None:
            print(f"  {name:<14s} no metrics yet")
            continue
        best = forecaster.rtt[name].best_predictor()
        print(f"  {name:<14s} expected RTT {rtt:6.2f} ms "
              f"(best predictor: {best})")


if __name__ == "__main__":
    main()
