#!/usr/bin/env python3
"""Downstream analytics on a trace stream: the persistent store end to end.

The tracing scheme delivers verified traces; this example shows what a
consumer builds on top of them:

* an AnalyticsStore persisting every trace (plus the run's journal
  evidence) into a queryable, snapshot-able event log,
* an AvailabilityArchive — per-entity uptime records (availability %,
  outage count, MTTR) materialized from that store,
* a NetworkForecaster running NWS-style predictors (the paper's Ref [4])
  over NETWORK_METRICS traces to answer "what RTT should I expect?",
* the SLO report (`repro.analytics.reports`) answering the same
  questions offline, straight from the persisted events.

Run:  python examples/availability_analytics.py
"""

from repro import build_deployment
from repro.analytics import (
    AnalyticsStore,
    build_report,
    ingest_journal,
    render_report_text,
)
from repro.tracing.archive import AvailabilityArchive
from repro.tracing.failure import AdaptivePingPolicy
from repro.tracing.forecast import NetworkForecaster


def main() -> None:
    dep = build_deployment(
        broker_ids=["b1", "b2"],
        seed=31,
        ping_policy=AdaptivePingPolicy(
            base_interval_ms=1_000.0, min_interval_ms=200.0,
            max_interval_ms=2_000.0, response_deadline_ms=300.0,
        ),
    )
    flaky = dep.add_traced_entity("flaky-worker")
    steady = dep.add_traced_entity("steady-worker")
    tracker = dep.add_tracker("analytics")
    tracker.connect("b2")

    store = AnalyticsStore()          # or AnalyticsStore("sqlite", path=...)
    archive = AvailabilityArchive(tracker, store=store)
    forecaster = NetworkForecaster(tracker, store=store)

    flaky.start("b1")
    steady.start("b1")
    dep.sim.run(until=4_000)
    tracker.track("flaky-worker")
    tracker.track("steady-worker")

    # the flaky worker crashes twice and re-registers each time
    for round_start in (30_000, 120_000):
        dep.sim.run(until=round_start)
        flaky.crash()
        dep.sim.run(until=round_start + 60_000)
        dep.sim.process(flaky.reregister())

    dep.sim.run(until=300_000)

    print("== availability after 5 virtual minutes ==")
    print(archive.report(dep.sim.now))

    flaky_record = archive.record_of("flaky-worker")
    mttr = flaky_record.mean_time_to_recover_ms()
    print(f"\nflaky-worker: {flaky_record.down_count} outages, "
          f"MTTR {mttr/1000:.1f}s, was it up at t=100s? "
          f"{flaky_record.was_up_at(100_000, dep.sim.now)}")

    print("\n== network forecasts (NWS-style predictor selection) ==")
    for name in ("flaky-worker", "steady-worker"):
        rtt = forecaster.forecast_rtt_ms(name)
        if rtt is None:
            print(f"  {name:<14s} no metrics yet")
            continue
        best = forecaster.rtt[name].best_predictor()
        print(f"  {name:<14s} expected RTT {rtt:6.2f} ms "
              f"(best predictor: {best})")

    # fold the journal in so the persisted log also holds audit evidence
    # (sessions created, keys distributed, recoveries), then query offline
    ingest_journal(store, dep.journal)
    store.set_meta(example="availability_analytics", now_ms=dep.sim.now)

    summary = store.summary()
    print(f"\n== persistent store: {summary['events']} events "
          f"({summary['backend']} backend) ==")
    print(render_report_text(build_report(store)))


if __name__ == "__main__":
    main()
