#!/usr/bin/env python3
"""Why not just heartbeat everyone?  The paper's opening argument, measured.

Compares three availability-tracking designs on the same simulation
kernel:

* all-pairs heartbeats — N x (N-1) messages per period (section 1),
* gossip failure detection (van Renesse et al., Ref [7]),
* the paper's interest-gated broker tracing.

Run:  python examples/baseline_comparison.py
"""

from repro.bench.experiments.ablations import (
    run_gossip_comparison,
    run_message_count_sweep,
)
from repro.bench.tables import render_series


def main() -> None:
    print("measuring message loads (a few seconds of simulation)...\n")
    results = run_message_count_sweep(populations=(10, 20, 40))
    series = {
        "all-pairs msgs/s": [(r.population, r.allpairs_msgs_per_s) for r in results],
        "tracing msgs/s": [(r.population, r.tracing_msgs_per_s) for r in results],
        "reduction": [(r.population, r.reduction_factor) for r in results],
    }
    print(render_series("Message load vs population", "N", series))

    print("\nmeasuring failure-detection quality vs gossip...\n")
    g = run_gossip_comparison(population=16)
    print(f"gossip:  first node suspects the crash after "
          f"{g.gossip_detect_first_ms/1000:.1f}s, the last after "
          f"{g.gossip_detect_last_ms/1000:.1f}s "
          f"({g.gossip_msgs_per_s:.0f} msgs/s steady state)")
    print(f"tracing: the broker declares FAILED after "
          f"{g.tracing_detect_ms/1000:.1f}s and every tracker learns it at "
          f"once ({g.tracing_msgs_per_s:.1f} msgs/s for this entity)")
    print("\ngossip's detection spread (uneven propagation) is the paper's")
    print("related-work critique; the broker scheme trades a coordinator")
    print("role for a single, authorized, authenticated verdict.")


if __name__ == "__main__":
    main()
