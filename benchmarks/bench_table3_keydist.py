"""EXP-T3-keydist: Table 3 key distribution overhead (section 5.1)."""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.bench import paper_data
from repro.bench.experiments.keydist import run_keydist_sweep
from repro.bench.tables import ComparisonRow, render_comparison


def test_table3_keydist(benchmark, report):
    results = run_once(benchmark, run_keydist_sweep)

    rows = []
    for result in results:
        paper_mean, paper_std = paper_data.TABLE3_KEYDIST[result.hops]
        rows.append(
            ComparisonRow(
                label=f"key distribution, {result.hops} hops",
                paper_mean=paper_mean,
                paper_std=paper_std,
                measured=result.summary,
            )
        )
    report(
        "table3_keydist",
        render_comparison("Table 3: Key Distribution Overhead (ms)", rows)
        + "\n\nNote: measured from the GUAGE_INTEREST publication that"
        "\nelicited the tracker's response to the tracker holding the trace"
        "\nkey.  The paper's much larger deviations (~37-40 ms) include"
        "\ngauge-arrival waiting time, which our measurement excludes.",
    )

    # shape: monotone growth with hops, and key distribution costs more
    # than a single secured trace (it includes an RSA unsealing)
    means = [r.summary.mean for r in sorted(results, key=lambda r: r.hops)]
    assert means == sorted(means)
    assert all(m > 60.0 for m in means)
    # each cell within 25% of the paper's mean
    for result in results:
        paper_mean, _ = paper_data.TABLE3_KEYDIST[result.hops]
        assert result.summary.mean == pytest.approx(paper_mean, rel=0.25), (
            f"{result.hops} hops"
        )
