"""EXP-A3: adaptive vs fixed ping interval (section 3.3 design choice).

"If consecutive pings do not have responses associated with them, the
ping interval is reduced to hasten the failure detection of the entity."
"""

from __future__ import annotations

from conftest import run_once
from repro.bench.experiments.ablations import run_adaptive_ping_ablation


def test_ablation_adaptive_ping(benchmark, report):
    results = run_once(benchmark, run_adaptive_ping_ablation)

    lines = [
        "EXP-A3: failure-detection latency, adaptive vs fixed ping interval",
        "=" * 67,
        f"{'policy':<26s} {'detection (ms)':>15s} {'pings to detect':>16s}",
        "-" * 60,
    ]
    for result in results:
        lines.append(
            f"{result.label:<26s} {result.detection_ms:>15.0f} "
            f"{result.pings_sent:>16d}"
        )
    report("ablation_adaptive_ping", "\n".join(lines))

    by_label = {r.label: r for r in results}
    adaptive = by_label["adaptive (section 3.3)"]
    fixed = by_label["fixed interval"]
    # the adaptive scheme detects at least 2x faster with the same number
    # of pings (it compresses them into a shorter window)
    assert adaptive.detection_ms * 2 < fixed.detection_ms
    assert adaptive.pings_sent <= fixed.pings_sent + 1
