"""EXP-A2: gossip failure detection (Ref [7]) vs broker-based tracing."""

from __future__ import annotations

from conftest import run_once
from repro.bench.experiments.ablations import run_gossip_comparison


def test_baseline_gossip(benchmark, report):
    result = run_once(benchmark, run_gossip_comparison, population=16)

    text = "\n".join(
        [
            "EXP-A2: gossip failure detector vs broker-based tracing",
            "=" * 56,
            f"population: {result.population} nodes",
            "",
            f"{'metric':<38s} {'gossip':>12s} {'tracing':>12s}",
            "-" * 64,
            f"{'first detection after crash (ms)':<38s} "
            f"{result.gossip_detect_first_ms:>12.0f} "
            f"{result.tracing_detect_ms:>12.0f}",
            f"{'last detection after crash (ms)':<38s} "
            f"{result.gossip_detect_last_ms:>12.0f} "
            f"{result.tracing_detect_ms:>12.0f}",
            f"{'messages per second':<38s} "
            f"{result.gossip_msgs_per_s:>12.1f} "
            f"{result.tracing_msgs_per_s:>12.1f}",
            "",
            "Gossip's detection spread (first vs last) is the consistency",
            "issue the paper's related-work section points out; the broker",
            "scheme publishes one authoritative FAILED trace to all trackers.",
        ]
    )
    report("baseline_gossip", text)

    # tracing detects faster than gossip's first detector here, and the
    # gossip group shows a nonzero detection spread
    assert result.tracing_detect_ms < result.gossip_detect_first_ms
    assert result.gossip_detect_last_ms >= result.gossip_detect_first_ms
    # per-watched-entity message load is far lower for tracing
    assert result.tracing_msgs_per_s < result.gossip_msgs_per_s
