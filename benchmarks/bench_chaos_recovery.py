"""Chaos recovery benchmark: bounded, reproducible failure recovery.

Runs the ``broker-crash`` scenario of the ``repro.faults`` catalog twice
at the same seed and reports the detection → re-registration latency
(``trace.recovery_ms``).  Two claims are enforced:

* **bounded** — recovery completes, and its worst case stays under the
  scenario's budget (crash is noticed after 2 s; the migration plus the
  section 3.2 registration exchange must finish well inside 15 s);
* **reproducible** — the two runs are bit-identical, so the recovery
  number CI gates against ``benchmarks/results/chaos_seed.json`` is a
  property of the code, not of the run.
"""

from __future__ import annotations

from conftest import run_once
from repro.faults import render_snapshot, run_scenario

SEED = 42
#: Worst acceptable detection -> re-registration latency (virtual ms).
RECOVERY_BUDGET_MS = 15_000.0


def _run():
    return run_scenario("broker-crash", seed=SEED)


def test_chaos_recovery_bounded_and_reproducible(benchmark, report):
    snapshot = run_once(benchmark, _run)
    rerun = _run()

    recovery = snapshot["recovery"]
    counters = snapshot["counters"]
    lines = [
        "Chaos recovery: broker-crash scenario (repro.faults)",
        "=" * 52,
        f"seed:                 {SEED}",
        f"faults injected:      {counters['faults.injected.broker_crash']} broker crash",
        f"recoveries measured:  {recovery['count']}",
        f"recovery latency:     mean {recovery.get('mean_ms', 0.0):.1f} ms, "
        f"max {recovery.get('max_ms', 0.0):.1f} ms",
        f"recovery budget:      {RECOVERY_BUDGET_MS:.0f} ms",
        f"traces delivered:     {counters['broker.msgs.delivered']}",
        f"run-to-run identical: {render_snapshot(snapshot) == render_snapshot(rerun)}",
    ]
    report("chaos_recovery", "\n".join(lines))

    # every detected failure recovered, inside the budget
    assert recovery["count"] >= 1
    assert counters["trace.recovery.completed"] == counters["trace.recovery.detected"]
    assert recovery["max_ms"] <= RECOVERY_BUDGET_MS
    # the fault window closed (crash reverted, nothing left active)
    assert snapshot["faults_active_end"] == 0.0
    # bit-identical across two runs at the same seed
    assert render_snapshot(snapshot) == render_snapshot(rerun)
