"""EXP-A1: the introduction's N x (N-1) message-count ablation.

The strawman (every entity heart-beating every other) grows quadratically;
interest-gated broker tracing grows linearly in the population, so the
reduction factor itself grows with N.
"""

from __future__ import annotations

from conftest import run_once
from repro.bench.experiments.ablations import run_message_count_sweep
from repro.bench.tables import render_series

POPULATIONS = (10, 20, 40, 80)


def test_ablation_message_count(benchmark, report):
    results = run_once(benchmark, run_message_count_sweep, populations=POPULATIONS)

    series = {
        "all-pairs msgs/s": [
            (r.population, r.allpairs_msgs_per_s) for r in results
        ],
        "tracing msgs/s": [
            (r.population, r.tracing_msgs_per_s) for r in results
        ],
        "reduction factor": [
            (r.population, r.reduction_factor) for r in results
        ],
    }
    report(
        "ablation_msgcount",
        render_series(
            "EXP-A1: message load, all-pairs heartbeats vs tracing", "N", series
        ),
    )

    ordered = sorted(results, key=lambda r: r.population)
    # quadratic vs linear: the reduction factor grows with N ...
    factors = [r.reduction_factor for r in ordered]
    assert factors == sorted(factors)
    # ... and the largest population shows a substantial win
    assert factors[-1] > 5.0
    # sanity: the analytic all-pairs rate is exactly N(N-1)
    for result in ordered:
        assert result.allpairs_msgs_per_s == result.population * (
            result.population - 1
        )
