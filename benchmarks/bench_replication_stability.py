"""Seed-replication stability of the headline result.

Reruns the Table 3 TCP/auth 2-hop cell across independent seeds and
reports the 95% confidence interval of the per-seed means — evidence that
the reproduction's agreement with the paper is not a single-seed accident.
"""

from __future__ import annotations

from conftest import run_once
from repro.bench.experiments.hops import run_hops_case
from repro.bench.replication import replicate

SEEDS = (1, 2, 3, 4, 5)
PAPER_MEAN = 72.68


def _case(seed: int):
    return run_hops_case(2, duration_ms=60_000.0, seed=seed).summary


def _run():
    return replicate("TCP auth 2 hops", _case, SEEDS)


def test_replication_stability(benchmark, report):
    result = run_once(benchmark, _run)

    low, high = result.ci95
    lines = [
        "Seed-replication stability: Table 3, TCP auth, 2 hops",
        "=" * 54,
        f"seeds:          {result.seeds}",
        f"per-seed means: "
        + ", ".join(f"{m:.2f}" for m in result.per_seed_means),
        f"mean of means:  {result.mean_of_means:.2f} ms",
        f"95% CI:         [{low:.2f}, {high:.2f}] ms",
        f"paper mean:     {PAPER_MEAN:.2f} ms",
    ]
    report("replication_stability", "\n".join(lines))

    # the estimate is tight across seeds ...
    assert result.ci95_half_width < 5.0
    # ... and the paper's value sits within a few ms of the interval
    assert abs(result.mean_of_means - PAPER_MEAN) < 6.0
