"""Fabric-scale curve: entities vs RSS and per-event routing cost.

Drives ``repro.bench.scale`` over a sweep of fabric sizes — up to the
64-broker / 100 000-entity point the scalability claim (§4) is about —
and commits the measured curve under ``benchmarks/results/``:

* ``scale_curve.json`` — one record per point: the deterministic
  snapshot plus peak RSS (``ru_maxrss``) and per-event wall time
* ``scale_curve.txt`` — the rendered table EXPERIMENTS.md cites

Each point runs in its **own subprocess** so ``ru_maxrss`` is the true
peak of that point alone, not whatever larger point ran earlier in the
process.  Per-event time is isolated by running every point twice in
the child — once with zero events (setup only: subscriptions, summary
exchange) and once with the full event count — and dividing the delta.

The verbatim control plane rides along at the small points for
comparison; past ~20k entities its O(entities × brokers) interest table
stops being worth materializing, which is itself the result.

Usage::

    PYTHONPATH=src python benchmarks/bench_scale.py          # full sweep
    PYTHONPATH=src python benchmarks/bench_scale.py --quick  # small points only
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SRC_DIR = pathlib.Path(__file__).resolve().parents[1] / "src"

SEED = 42

#: (brokers, entities, events, federation) sweep; verbatim comparison
#: points stay small — the O(entities x brokers) interest table is the
#: scaling wall this curve exists to show.
POINTS = [
    (8, 5_000, 500, True),
    (8, 5_000, 500, False),
    (16, 20_000, 1_000, True),
    (16, 20_000, 1_000, False),
    (32, 50_000, 1_500, True),
    (64, 100_000, 2_000, True),
]

QUICK_POINTS = [point for point in POINTS if point[1] <= 20_000]


def run_child(brokers: int, entities: int, events: int, federation: bool) -> dict:
    """One sweep point, isolated in a subprocess for clean ru_maxrss."""
    cmd = [
        sys.executable,
        __file__,
        "--child",
        "--brokers",
        str(brokers),
        "--entities",
        str(entities),
        "--events",
        str(events),
        "--seed",
        str(SEED),
    ]
    if not federation:
        cmd.append("--verbatim")
    proc = subprocess.run(
        cmd,
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": str(SRC_DIR)},
    )
    return json.loads(proc.stdout)


def child_main(args: argparse.Namespace) -> None:
    """Measure one point in-process and print the JSON record."""
    import resource
    import time

    from repro.bench.scale import run_scale_point

    started = time.perf_counter()
    run_scale_point(
        brokers=args.brokers,
        entities=args.entities,
        events=0,
        seed=args.seed,
        federation=not args.verbatim,
    )
    setup_s = time.perf_counter() - started

    started = time.perf_counter()
    snapshot = run_scale_point(
        brokers=args.brokers,
        entities=args.entities,
        events=args.events,
        seed=args.seed,
        federation=not args.verbatim,
    )
    total_s = time.perf_counter() - started

    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    snapshot["rss_mb"] = round(rss_kb / 1024.0, 1)
    snapshot["setup_s"] = round(setup_s, 3)
    snapshot["total_s"] = round(total_s, 3)
    snapshot["per_event_us"] = (
        round((total_s - setup_s) / args.events * 1e6, 1) if args.events else None
    )
    json.dump(snapshot, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


def render_table(records: list[dict]) -> str:
    lines = [
        "fabric-scale curve (seed %d): control floods, RSS and per-event cost"
        % SEED,
        "",
        f"{'plane':<9} {'brokers':>7} {'entities':>9} {'floods':>7} "
        f"{'fp.fwd':>7} {'RSS MiB':>8} {'us/event':>9}",
    ]
    for record in records:
        plane = "federated" if record["federation"] else "verbatim"
        lines.append(
            f"{plane:<9} {record['brokers']:>7} {record['entities']:>9} "
            f"{record['control_floods']:>7} "
            f"{record['counters']['fed.forwards.false_positive']:>7} "
            f"{record['rss_mb']:>8.1f} {record['per_event_us']:>9.1f}"
        )
    lines += [
        "",
        "floods: control-plane broadcasts issued for the whole run.  The",
        "federated plane pays ~one per broker per anti-entropy round",
        "regardless of the pattern count; the verbatim plane pays one per",
        "pattern (plus an O(entities x brokers) interest table, which is",
        "why it has no large points).  fp.fwd: digest false-positive",
        "forwards — the budgeted cost of summarization, re-checked and",
        "dropped at the destination's exact index.",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small points only")
    parser.add_argument("--child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--brokers", type=int, default=8)
    parser.add_argument("--entities", type=int, default=5_000)
    parser.add_argument("--events", type=int, default=500)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--verbatim", action="store_true")
    args = parser.parse_args(argv)

    if args.child:
        child_main(args)
        return 0

    records = []
    for brokers, entities, events, federation in (
        QUICK_POINTS if args.quick else POINTS
    ):
        plane = "federated" if federation else "verbatim"
        print(
            f"running {plane} point: {brokers} brokers, {entities} entities ...",
            file=sys.stderr,
        )
        record = run_child(brokers, entities, events, federation)
        records.append(record)

        # the curve's load-bearing claims, checked on every regeneration
        assert record["received"] == events, record
        assert record["counters"]["broker.interest.stale_forwards"] == 0, record
        if federation:
            assert record["control_floods"] <= 2 * brokers, record

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "scale_curve.json").write_text(
        json.dumps(records, indent=2, sort_keys=True) + "\n"
    )
    table = render_table(records)
    (RESULTS_DIR / "scale_curve.txt").write_text(table + "\n")
    print(table)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
