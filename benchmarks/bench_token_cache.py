"""Hot-path before/after benchmark: token cache + ping coalescing.

Runs the ping-heavy co-located scenario (``repro.bench.hotpath``) twice
from the same seed — once with ``legacy_hot_paths=True`` (no token
verification cache, no ping coalescing) and once with the optimized
defaults — and commits both registry snapshots plus their rendered diff
under ``benchmarks/results/``:

* ``token_cache_before.json`` / ``token_cache_after.json`` — full
  snapshots, diffable any time with
  ``repro metrics --diff token_cache_before.json token_cache_after.json``
* ``token_cache_diff.txt`` — the rendered per-instrument delta table

The assertions encode the acceptance bar from docs/PERFORMANCE.md: the
summed ``crypto.ms.token_verify`` cost must drop by at least 30 % and
``transport.bytes.sent`` must drop measurably, while detection behaviour
stays clean (no false failure verdicts in either run).
"""

from __future__ import annotations

import json
import pathlib

from conftest import run_once

from repro.bench.hotpath import run_ping_heavy
from repro.obs import diff_snapshots, render_diff

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SEED = 42
DURATION_MS = 60_000.0


def _verify_sum_ms(snapshot: dict) -> float:
    hist = snapshot["histograms"].get("crypto.ms.token_verify", {"count": 0})
    return hist.get("count", 0) * hist.get("mean", 0.0)


def _write_snapshot(name: str, snapshot: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")


def test_token_cache_and_coalescing_pay_off(benchmark, report):
    before = run_ping_heavy(seed=SEED, duration_ms=DURATION_MS, legacy_hot_paths=True)
    after = run_once(
        benchmark, run_ping_heavy, seed=SEED, duration_ms=DURATION_MS
    )
    _write_snapshot("token_cache_before", before)
    _write_snapshot("token_cache_after", after)

    diff = diff_snapshots(before, after)
    table = render_diff(diff)
    (RESULTS_DIR / "token_cache_diff.txt").write_text(table + "\n")

    verify_before = _verify_sum_ms(before)
    verify_after = _verify_sum_ms(after)
    bytes_before = before["counters"]["transport.bytes.sent"]
    bytes_after = after["counters"]["transport.bytes.sent"]
    hits = after["counters"].get("auth.token.cache.hit", 0)
    coalesced = after["counters"].get("tracker.pings.coalesced", 0)

    report(
        "bench_token_cache",
        "\n".join(
            [
                "hot-path caching & batching (ping-heavy co-located scenario)",
                f"  seed={SEED} duration={DURATION_MS:.0f}ms",
                f"  crypto.ms.token_verify sum: {verify_before:.1f} -> "
                f"{verify_after:.1f} ms "
                f"({100.0 * (1.0 - verify_after / verify_before):.1f}% less)",
                f"  transport.bytes.sent: {bytes_before} -> {bytes_after} "
                f"({100.0 * (1.0 - bytes_after / bytes_before):.1f}% less)",
                f"  auth.token.cache.hit={hits} "
                f"tracker.pings.coalesced={coalesced}",
                "",
                table,
            ]
        ),
    )

    # acceptance bar (ISSUE 5 / docs/PERFORMANCE.md)
    assert verify_after <= 0.70 * verify_before
    assert bytes_after < bytes_before
    assert hits > 0 and coalesced > 0
    # detection semantics: neither run declares a false failure
    for side in (before, after):
        latency = side["histograms"].get(
            "tracker.detection.latency_ms", {"count": 0}
        )
        assert latency.get("count", 0) == 0
