"""EXP-T3-micro: Table 3 per-operation security costs.

Regenerates the middle block of Table 3 from the calibrated cost model
(the values the macro benchmarks actually charge) and, separately, times
our real pure-Python primitives for transparency.
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.bench import paper_data
from repro.bench.experiments.microcosts import (
    measure_real_primitives,
    run_calibrated_micro,
)
from repro.bench.tables import ComparisonRow, render_comparison


def test_table3_microcosts(benchmark, report):
    results = run_once(benchmark, run_calibrated_micro, samples=2_000)

    rows = []
    for result in results:
        paper_mean, paper_std = paper_data.TABLE3_MICRO[result.label]
        rows.append(
            ComparisonRow(
                label=result.label,
                paper_mean=paper_mean,
                paper_std=paper_std,
                measured=result.calibrated,
            )
        )
    real = measure_real_primitives(iterations=10)
    real_lines = ["", "Actual pure-Python primitive timings (wall-clock ms):"]
    for name, summary in sorted(real.items()):
        real_lines.append(
            f"  {name:<14s} mean={summary.mean:8.3f}  sd={summary.std_dev:7.3f}"
        )
    report(
        "table3_microcosts",
        render_comparison(
            "Table 3: Security and Authorization related costs (ms)", rows
        )
        + "\n".join(real_lines),
    )

    # calibration must match the paper's micro rows closely
    for result in results:
        paper_mean, _ = paper_data.TABLE3_MICRO[result.label]
        assert result.calibrated.mean == pytest.approx(paper_mean, rel=0.08), (
            result.label
        )

    # orderings the paper's section 6.3 argument relies on
    by_label = {r.label: r.calibrated.mean for r in results}
    assert by_label["Sign Trace Message"] > by_label["Verify Signature in Trace Message"]
    assert by_label["Encrypting Trace Message"] < by_label["Decrypting Trace Message"]
    assert (
        by_label["Sign Trace Message"] + by_label["Verify Signature in Trace Message"]
        > 5 * (
            by_label["Encrypting Trace Message"]
            + by_label["Decrypting Trace Message"]
        )
    )
