"""Shared infrastructure for the benchmark suite.

Each benchmark runs its experiment exactly once (``benchmark.pedantic``
with one round — the experiments are deterministic simulations, so
repeated timing rounds would only re-measure the host's Python speed),
prints a paper-vs-measured table, and appends it to
``benchmarks/results/`` so EXPERIMENTS.md can cite the output.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Print a report block and persist it under benchmarks/results/."""

    def _report(name: str, text: str) -> None:
        print()
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _report


@pytest.fixture
def save_figure():
    """Persist a rendered SVG figure under benchmarks/results/."""

    def _save(name: str, svg: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.svg").write_text(svg)
        print(f"figure written: benchmarks/results/{name}.svg")

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
