"""EXP-T3-hops: Table 3 trace routing overhead + Figure 2.

Regenerates all four macro blocks of Table 3 (TCP/UDP x auth/auth+security
at 2-6 hops) and checks the shape claims: ~7 ms per hop, a ~17.6 ms
security premium, and UDP a few ms under TCP throughout.
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.bench import paper_data
from repro.bench.experiments.hops import run_hops_sweep, slope_per_hop
from repro.bench.tables import ComparisonRow, render_comparison, render_series
from repro.transport.tcp import TCP_CLUSTER
from repro.transport.udp import UDP_CLUSTER

DURATION_MS = 120_000.0

PAPER_BLOCKS = {
    ("TCP", False): paper_data.TABLE3_TCP_AUTH,
    ("TCP", True): paper_data.TABLE3_TCP_AUTH_SEC,
    ("UDP", False): paper_data.TABLE3_UDP_AUTH,
    ("UDP", True): paper_data.TABLE3_UDP_AUTH_SEC,
}


def test_table3_hops(benchmark, report, save_figure):
    results = run_once(benchmark, run_hops_sweep, duration_ms=DURATION_MS)

    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for result in results:
        mode = "auth+sec" if result.secured else "auth"
        paper_mean, paper_std = PAPER_BLOCKS[(result.transport, result.secured)][
            result.hops
        ]
        rows.append(
            ComparisonRow(
                label=f"{result.transport} {mode} {result.hops} hops",
                paper_mean=paper_mean,
                paper_std=paper_std,
                measured=result.summary,
            )
        )
        series.setdefault(f"{result.transport}/{mode}", []).append(
            (result.hops, result.summary.mean)
        )

    report(
        "table3_hops",
        render_comparison("Table 3: Trace routing overhead (ms)", rows)
        + "\n\n"
        + render_series("Figure 2: trace overhead vs hops", "hops", series),
    )
    from repro.bench.svgplot import series_dict_to_svg

    save_figure(
        "figure2_hops",
        series_dict_to_svg(
            "Figure 2: trace routing overhead vs hops",
            "hops", "trace overhead (ms)", series,
        ),
    )

    # --- shape assertions ------------------------------------------------------
    lo, hi = paper_data.EXPECTED_HOP_SLOPE_MS
    for transport in ("TCP", "UDP"):
        for secured in (False, True):
            block = [
                r for r in results
                if r.transport == transport and r.secured == secured
            ]
            slope = slope_per_hop(block)
            assert lo <= slope <= hi, (
                f"{transport} secured={secured}: slope {slope:.2f} outside "
                f"[{lo}, {hi}]"
            )

    gap_lo, gap_hi = paper_data.EXPECTED_SECURITY_GAP_MS
    for transport in ("TCP", "UDP"):
        for hops in (2, 4, 6):
            auth = next(
                r for r in results
                if r.transport == transport and not r.secured and r.hops == hops
            )
            sec = next(
                r for r in results
                if r.transport == transport and r.secured and r.hops == hops
            )
            gap = sec.summary.mean - auth.summary.mean
            assert gap_lo <= gap <= gap_hi, (
                f"{transport} {hops} hops: security gap {gap:.2f} outside band"
            )

    udp_lo, udp_hi = paper_data.EXPECTED_UDP_SAVING_MS
    for secured in (False, True):
        for hops in (2, 4, 6):
            tcp = next(
                r for r in results
                if r.transport == "TCP" and r.secured == secured and r.hops == hops
            )
            udp = next(
                r for r in results
                if r.transport == "UDP" and r.secured == secured and r.hops == hops
            )
            saving = tcp.summary.mean - udp.summary.mean
            assert udp_lo <= saving <= udp_hi, (
                f"secured={secured} {hops} hops: UDP saving {saving:.2f} "
                "outside band"
            )

    # absolute calibration: every cell within 10% of the paper's mean
    for result in results:
        paper_mean, _ = PAPER_BLOCKS[(result.transport, result.secured)][result.hops]
        assert result.summary.mean == pytest.approx(paper_mean, rel=0.10), (
            f"{result.transport} secured={result.secured} {result.hops} hops"
        )
